"""Setup shim for environments without the ``wheel`` package.

The project metadata lives in ``pyproject.toml``; this file only enables the
legacy ``pip install -e .`` code path (setuptools ``develop``) on machines
where PEP 660 editable installs are unavailable because ``wheel`` is missing.
"""

from setuptools import setup

setup()
