"""Tests for integrity scrubbing and tamper detection (repro.storage.scrub)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.blocks import Block, DataId, ParityId
from repro.core.parameters import AEParameters, StrandClass
from repro.exceptions import RepairFailedError, UnknownBlockError
from repro.storage.scrub import (
    CHECKSUM_MISMATCH,
    EQUATION_VIOLATED,
    MISSING,
    TAMPER_SUSPECT,
    ChecksumManifest,
    ScrubFinding,
    ScrubReport,
    Scrubber,
)
from repro.system.entangled_store import EntangledStorageSystem

BLOCK_SIZE = 64


def build_system(spec: str = "AE(3,2,5)", blocks: int = 30, seed: int = 0):
    """An entangled storage system with a manifest recorded at write time."""
    params = AEParameters.parse(spec)
    system = EntangledStorageSystem(
        params, location_count=20, block_size=BLOCK_SIZE, seed=seed
    )
    manifest = ChecksumManifest()
    rng = np.random.default_rng(seed)
    for _ in range(blocks):
        payload = rng.integers(0, 256, size=BLOCK_SIZE, dtype=np.uint8)
        encoded = system.append_block(payload)
        for block in encoded.all_blocks():
            manifest.record(block)
    scrubber = Scrubber(system.lattice, system.cluster, BLOCK_SIZE, manifest)
    return system, manifest, scrubber


def corrupt(system: EntangledStorageSystem, block_id) -> None:
    """Silently flip bytes of a stored block (tampering)."""
    location = system.cluster.location_of(block_id)
    store = system.cluster.location(location)
    payload = np.asarray(store.get(block_id), dtype=np.uint8).copy()
    payload[0] ^= 0xFF
    payload[-1] ^= 0xA5
    store.put(block_id, payload)


class TestChecksumManifest:
    def test_record_and_match(self):
        manifest = ChecksumManifest()
        block = Block(DataId(1), np.arange(16, dtype=np.uint8))
        manifest.record(block)
        assert DataId(1) in manifest
        assert len(manifest) == 1
        assert manifest.matches(DataId(1), block.payload)
        assert not manifest.matches(DataId(1), np.zeros(16, dtype=np.uint8))

    def test_expected_values_and_forget(self):
        manifest = ChecksumManifest()
        block = Block(DataId(2), b"hello world!")
        manifest.record(block)
        assert manifest.expected_checksum(DataId(2)) == block.checksum()
        assert manifest.expected_digest(DataId(2)) == block.digest()
        manifest.forget(DataId(2))
        assert DataId(2) not in manifest
        with pytest.raises(UnknownBlockError):
            manifest.expected_checksum(DataId(2))
        with pytest.raises(UnknownBlockError):
            manifest.matches(DataId(2), b"x")

    def test_block_ids_listing(self):
        manifest = ChecksumManifest()
        manifest.record_payload(DataId(1), b"a" * 8)
        manifest.record_payload(ParityId(1, StrandClass.HORIZONTAL), b"b" * 8)
        assert len(manifest.block_ids()) == 2


class TestCleanScrub:
    def test_clean_system_has_no_findings(self):
        _, _, scrubber = build_system()
        report = scrubber.scrub()
        assert report.clean
        assert report.blocks_checked > 0
        assert report.equations_checked > 0
        assert "no anomalies" in report.summary()

    def test_check_equation_holds_everywhere(self):
        system, _, scrubber = build_system("AE(2,2,2)", blocks=12)
        for creator in range(1, 13):
            for strand_class in system.params.strand_classes:
                assert scrubber.check_equation(ParityId(creator, strand_class)) is True

    def test_check_equation_none_when_block_missing(self):
        system, _, scrubber = build_system(blocks=10)
        system.fail_locations(system.cluster.available_locations()[:5])
        verdicts = {
            scrubber.check_equation(ParityId(creator, StrandClass.HORIZONTAL))
            for creator in range(1, 11)
        }
        assert None in verdicts  # at least one equation cannot be evaluated


class TestTamperDetection:
    def test_tampered_data_block_is_detected_and_attributed(self):
        system, _, scrubber = build_system(blocks=30)
        target = DataId(15)  # middle of the lattice: unambiguous attribution
        corrupt(system, target)
        report = scrubber.scrub()
        assert not report.clean
        assert target in report.suspects
        assert any(f.kind == CHECKSUM_MISMATCH and f.block_id == target for f in report.findings)
        violated = report.of_kind(EQUATION_VIOLATED)
        # All alpha equations of the tampered node are inconsistent.
        assert len(violated) == system.params.alpha

    def test_tampered_parity_block_is_detected(self):
        system, _, scrubber = build_system(blocks=30)
        target = ParityId(10, StrandClass.HORIZONTAL)
        corrupt(system, target)
        report = scrubber.scrub()
        assert target in report.suspects

    def test_detection_without_manifest_uses_equations_only(self):
        system, _, _ = build_system(blocks=30)
        scrubber = Scrubber(system.lattice, system.cluster, BLOCK_SIZE, manifest=None)
        target = DataId(12)
        corrupt(system, target)
        report = scrubber.scrub()
        assert target in report.suspects
        assert not report.of_kind(CHECKSUM_MISMATCH)  # no manifest to compare against

    def test_missing_block_reported(self):
        system, manifest, scrubber = build_system(blocks=20)
        # Fail the location holding d5 so the manifest check cannot read it.
        location = system.cluster.location_of(DataId(5))
        system.fail_locations([location])
        findings = scrubber.verify_checksums([DataId(5)])
        assert findings and findings[0].kind == MISSING

    def test_verify_checksums_without_manifest_is_empty(self):
        system, _, _ = build_system(blocks=5)
        scrubber = Scrubber(system.lattice, system.cluster, BLOCK_SIZE, manifest=None)
        assert scrubber.verify_checksums() == []


class TestScrubRepair:
    def test_repair_restores_tampered_data_block(self):
        system, manifest, scrubber = build_system(blocks=30)
        target = DataId(15)
        original = np.asarray(system.get_block(target), dtype=np.uint8).copy()
        corrupt(system, target)
        repaired = scrubber.repair_block(target)
        assert np.array_equal(repaired, original)
        assert scrubber.scrub().clean

    def test_repair_restores_tampered_parity(self):
        system, manifest, scrubber = build_system(blocks=30)
        target = ParityId(10, StrandClass.RIGHT_HANDED)
        original = np.asarray(system.cluster.get_block(target), dtype=np.uint8).copy()
        corrupt(system, target)
        repaired = scrubber.repair_block(target)
        assert np.array_equal(repaired, original)

    def test_repair_suspects_round_trip(self):
        system, _, scrubber = build_system(blocks=30)
        targets = [DataId(8), ParityId(20, StrandClass.HORIZONTAL)]
        for target in targets:
            corrupt(system, target)
        repaired = scrubber.repair_suspects()
        assert set(targets) <= set(repaired)
        assert scrubber.scrub().clean

    def test_repair_fails_without_consistent_neighbours(self):
        system, _, scrubber = build_system("AE(1,-,-)", blocks=10)
        # Pick a node whose two incident parities live on locations different
        # from its own, so we can take the parities away while keeping the
        # (corrupted) data block writable.
        target = None
        parity_locations = []
        for index in range(3, 9):
            candidate = DataId(index)
            own = system.cluster.location_of(candidate)
            parities = [ParityId(index - 1, StrandClass.HORIZONTAL), ParityId(index, StrandClass.HORIZONTAL)]
            locations = [system.cluster.location_of(parity) for parity in parities]
            if own not in locations:
                target = candidate
                parity_locations = locations
                break
        assert target is not None, "no suitable node found for this seed"
        corrupt(system, target)
        system.fail_locations(parity_locations)
        with pytest.raises(RepairFailedError):
            scrubber.repair_block(target)


class TestReportShape:
    def test_of_kind_and_suspect_order(self):
        report = ScrubReport(
            blocks_checked=3,
            equations_checked=3,
            findings=[
                ScrubFinding(TAMPER_SUSPECT, DataId(2)),
                ScrubFinding(CHECKSUM_MISMATCH, DataId(2)),
                ScrubFinding(TAMPER_SUSPECT, DataId(1)),
            ],
        )
        assert len(report.of_kind(TAMPER_SUSPECT)) == 2
        assert report.suspects == [DataId(2), DataId(1)]
        assert not report.clean
