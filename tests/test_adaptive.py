"""Adaptive maintenance: the scheme-transition controller and its scenarios."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidParametersError
from repro.simulation.adaptive import (
    ACTION_HOLD,
    ACTION_STRENGTHEN,
    ACTION_WEAKEN,
    AdaptiveMaintenancePolicy,
    AdaptiveSample,
    cold_archive_demotion,
    hot_data_promotion,
    run_adaptive,
)
from repro.simulation.engine import SimulationEvent, build_simulation


def sample(time, availability=1.0, vulnerable=0.0, read_rate=0.5):
    return AdaptiveSample(
        time=time,
        availability=availability,
        vulnerable_fraction=vulnerable,
        read_rate=read_rate,
    )


class TestPolicyLadder:
    def test_punctured_strengthens_to_plain(self):
        policy = AdaptiveMaintenancePolicy("ae-3-2-5-p75")
        assert policy.strengthen_target() == "ae-3-2-5"

    def test_plain_lattice_strengthens_by_raising_alpha(self):
        policy = AdaptiveMaintenancePolicy("ae-2-2-5")
        assert policy.strengthen_target() == "ae-3-2-5"

    def test_alpha_three_is_the_ceiling(self):
        policy = AdaptiveMaintenancePolicy("ae-3-2-5")
        assert policy.strengthen_target() is None

    def test_non_ae_promotes_into_the_default_lattice(self):
        policy = AdaptiveMaintenancePolicy("rep-3")
        assert policy.strengthen_target() == "ae-3-2-5"

    def test_plain_lattice_weakens_to_punctured(self):
        policy = AdaptiveMaintenancePolicy("ae-3-2-5", demote_keep_percent=75)
        assert policy.weaken_target() == "ae-3-2-5-p75"

    def test_punctured_and_non_ae_have_nothing_to_shed(self):
        assert AdaptiveMaintenancePolicy("ae-3-2-5-p75").weaken_target() is None
        assert AdaptiveMaintenancePolicy("rs-10-4").weaken_target() is None

    def test_invalid_settings_are_rejected(self):
        with pytest.raises(InvalidParametersError):
            AdaptiveMaintenancePolicy("ae-3-2-5", window=0)
        with pytest.raises(InvalidParametersError):
            AdaptiveMaintenancePolicy("ae-3-2-5", demote_keep_percent=100)
        with pytest.raises(InvalidParametersError):
            AdaptiveMaintenancePolicy(
                "ae-3-2-5", hot_read_rate=0.5, cold_read_rate=0.5
            )
        with pytest.raises(InvalidParametersError):
            AdaptiveMaintenancePolicy("no-such-scheme")


class TestPolicyControlLoop:
    def test_warms_up_before_deciding(self):
        policy = AdaptiveMaintenancePolicy("ae-3-2-5", window=3)
        assert policy.observe(sample(0, read_rate=0.01)).action == ACTION_HOLD
        assert policy.observe(sample(1, read_rate=0.01)).action == ACTION_HOLD
        decision = policy.observe(sample(2, read_rate=0.01))
        assert decision.action == ACTION_WEAKEN
        assert decision.target_id == "ae-3-2-5-p75"
        assert policy.scheme_id == "ae-3-2-5-p75"

    def test_cooldown_prevents_flapping(self):
        policy = AdaptiveMaintenancePolicy("ae-3-2-5", window=2, cooldown=2)
        policy.observe(sample(0, read_rate=0.01))
        assert policy.observe(sample(1, read_rate=0.01)).action == ACTION_WEAKEN
        # Hot samples land during the cooldown: held, not acted on.
        assert policy.observe(sample(2, read_rate=5.0)).action == ACTION_HOLD
        assert policy.observe(sample(3, read_rate=5.0)).action == ACTION_HOLD
        # Once the cooldown expires the (refilled) window acts immediately.
        decision = policy.observe(sample(4, read_rate=5.0))
        assert decision.action == ACTION_STRENGTHEN
        assert decision.target_id == "ae-3-2-5"

    def test_availability_dip_triggers_promotion(self):
        policy = AdaptiveMaintenancePolicy("ae-3-2-5-p75", window=2)
        policy.observe(sample(0, availability=0.99, read_rate=0.5))
        decision = policy.observe(sample(1, availability=0.99, read_rate=0.5))
        assert decision.action == ACTION_STRENGTHEN
        assert "availability" in decision.reason

    def test_vulnerable_data_triggers_promotion(self):
        policy = AdaptiveMaintenancePolicy("ae-2-2-5", window=2)
        policy.observe(sample(0, vulnerable=0.05, read_rate=0.5))
        decision = policy.observe(sample(1, vulnerable=0.05, read_rate=0.5))
        assert decision.action == ACTION_STRENGTHEN
        assert decision.target_id == "ae-3-2-5"

    def test_hold_band_between_hot_and_cold(self):
        policy = AdaptiveMaintenancePolicy("ae-3-2-5", window=2)
        policy.observe(sample(0, read_rate=0.5))
        assert policy.observe(sample(1, read_rate=0.5)).action == ACTION_HOLD

    def test_at_the_ceiling_hot_data_holds(self):
        policy = AdaptiveMaintenancePolicy("ae-3-2-5", window=1)
        decision = policy.observe(sample(0, read_rate=9.0))
        assert decision.action == ACTION_HOLD
        assert "strongest" in decision.reason


class TestRunAdaptive:
    def test_read_rates_must_align_with_the_timeline(self):
        policy = AdaptiveMaintenancePolicy("ae-3-2-5")
        events = [SimulationEvent(time=0.0), SimulationEvent(time=1.0)]
        with pytest.raises(InvalidParametersError, match="read_rates"):
            run_adaptive(policy, events, [0.5], data_blocks=50, location_count=10)

    def test_deterministic_replay(self):
        first = cold_archive_demotion(data_blocks=300, location_count=20)
        second = cold_archive_demotion(data_blocks=300, location_count=20)
        assert first.as_row() == second.as_row()
        assert [d.time for d in first.decisions] == [d.time for d in second.decisions]


class TestScenarios:
    def test_cold_archive_demotion_punctures_the_lattice(self):
        run = cold_archive_demotion(data_blocks=600, location_count=30)
        assert run.initial_scheme == "ae-3-2-5"
        assert run.final_scheme == "ae-3-2-5-p75"
        assert [d.action for d in run.decisions] == [ACTION_WEAKEN]
        assert run.stored_blocks_saved > 0
        assert run.min_availability == 1.0  # demotion never cost a read

    def test_hot_data_promotion_restores_the_plain_lattice(self):
        run = hot_data_promotion(data_blocks=600, location_count=30)
        assert run.initial_scheme == "ae-3-2-5-p75"
        assert run.final_scheme == "ae-3-2-5"
        assert [d.action for d in run.decisions] == [ACTION_STRENGTHEN]
        assert run.stored_blocks_saved < 0  # promotion buys parities back


class TestPuncturedSimulation:
    def test_punctured_placement_stores_fewer_blocks(self):
        plain = build_simulation("ae-3-2-5", 400, 20, seed=2)
        punctured = build_simulation("ae-3-2-5-p75", 400, 20, seed=2)
        assert punctured.data_blocks == plain.data_blocks
        assert punctured.redundancy_blocks < plain.redundancy_blocks
        # p75 keeps roughly three quarters of the parities.
        keep = punctured.redundancy_blocks / plain.redundancy_blocks
        assert 0.6 < keep < 0.9

    def test_punctured_placement_balance_excludes_dropped_parities(self):
        punctured = build_simulation("ae-3-2-5-p75", 400, 20, seed=2)
        assert int(punctured.blocks_per_location().sum()) == punctured.total_blocks

    def test_healthy_punctured_lattice_serves_everything(self):
        punctured = build_simulation("ae-3-2-5-p75", 400, 20, seed=2)
        import numpy as np

        outcome = punctured.run_repair(np.asarray([], dtype=np.int64).reshape(0))
        assert outcome.data_loss == 0
