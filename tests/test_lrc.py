"""Tests for the Local Reconstruction Code baseline (repro.codes.lrc)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codes.lrc import LocalReconstructionCode, azure_lrc, xorbas_lrc
from repro.codes.reed_solomon import ReedSolomonCode
from repro.exceptions import DecodingError, InvalidParametersError


def make_stripe(code: LocalReconstructionCode, size: int = 64, seed: int = 0):
    rng = np.random.default_rng(seed)
    data = [rng.integers(0, 256, size=size, dtype=np.uint8) for _ in range(code.k)]
    parities = code.encode(data)
    available = {index: payload for index, payload in enumerate(data)}
    available.update({code.k + index: payload for index, payload in enumerate(parities)})
    return data, available


class TestConstruction:
    def test_shape(self):
        code = LocalReconstructionCode(6, 2, 2)
        assert code.k == 6
        assert code.m == 4
        assert code.n == 10
        assert code.local_groups == 2
        assert code.global_parities == 2
        assert code.group_size == 3
        assert code.name == "LRC(6,2,2)"

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParametersError):
            LocalReconstructionCode(1, 1, 1)
        with pytest.raises(InvalidParametersError):
            LocalReconstructionCode(6, 4, 1)  # 4 does not divide 6
        with pytest.raises(InvalidParametersError):
            LocalReconstructionCode(6, 2, 0)
        with pytest.raises(InvalidParametersError):
            LocalReconstructionCode(200, 50, 40)  # > 255 symbols

    def test_group_helpers(self):
        code = LocalReconstructionCode(6, 2, 2)
        assert code.group_of(0) == 0
        assert code.group_of(5) == 1
        assert list(code.group_members(1)) == [3, 4, 5]
        assert code.local_parity_position(0) == 6
        with pytest.raises(InvalidParametersError):
            code.group_of(6)
        with pytest.raises(InvalidParametersError):
            code.group_members(2)
        with pytest.raises(InvalidParametersError):
            code.local_parity_position(-1)

    def test_named_configurations(self):
        assert azure_lrc().name == "LRC(12,2,2)"
        assert xorbas_lrc().name == "LRC(10,2,4)"

    def test_single_failure_cost_is_group_size(self):
        assert LocalReconstructionCode(12, 2, 2).single_failure_cost == 6
        assert LocalReconstructionCode(12, 4, 2).single_failure_cost == 3
        # RS with the same (k, m) always costs k reads.
        assert ReedSolomonCode(12, 4).single_failure_cost == 12


class TestEncodeDecode:
    def test_roundtrip_with_all_blocks(self):
        code = LocalReconstructionCode(6, 2, 2)
        data, available = make_stripe(code)
        decoded = code.decode(available)
        for expected, actual in zip(data, decoded):
            assert np.array_equal(expected, actual)

    def test_local_parity_is_group_xor(self):
        code = LocalReconstructionCode(4, 2, 1)
        data, _ = make_stripe(code)
        parities = code.encode(data)
        assert np.array_equal(parities[0], np.bitwise_xor(data[0], data[1]))
        assert np.array_equal(parities[1], np.bitwise_xor(data[2], data[3]))

    def test_single_data_failure(self):
        code = LocalReconstructionCode(6, 2, 2)
        data, available = make_stripe(code)
        del available[2]
        decoded = code.decode(available)
        assert np.array_equal(decoded[2], data[2])

    def test_two_failures_same_group(self):
        code = LocalReconstructionCode(6, 2, 2)
        data, available = make_stripe(code)
        del available[0]
        del available[1]
        decoded = code.decode(available)
        assert np.array_equal(decoded[0], data[0])
        assert np.array_equal(decoded[1], data[1])

    def test_three_failures_across_groups(self):
        code = LocalReconstructionCode(6, 2, 2)
        data, available = make_stripe(code)
        for position in (0, 1, 4):
            del available[position]
        decoded = code.decode(available)
        for position in (0, 1, 4):
            assert np.array_equal(decoded[position], data[position])

    def test_too_many_failures_raises(self):
        code = LocalReconstructionCode(6, 2, 2)
        _, available = make_stripe(code)
        # Wipe out group 0 entirely (3 data + local parity) plus one global
        # parity: 4 unknowns in the group, only 1 global parity left.
        for position in (0, 1, 2, 6, 8):
            del available[position]
        with pytest.raises(DecodingError):
            code.decode(available)

    def test_empty_available_raises(self):
        code = LocalReconstructionCode(4, 2, 1)
        with pytest.raises(DecodingError):
            code.decode({})

    def test_mismatched_sizes_raise(self):
        code = LocalReconstructionCode(4, 2, 1)
        _, available = make_stripe(code)
        available[0] = np.zeros(17, dtype=np.uint8)
        with pytest.raises(DecodingError):
            code.decode(available)

    def test_repair_single_position(self):
        code = LocalReconstructionCode(6, 2, 2)
        data, available = make_stripe(code)
        parity = available[code.k]  # local parity of group 0
        del available[code.k]
        rebuilt = code.repair(code.k, available)
        assert np.array_equal(rebuilt, parity)

    @given(st.integers(min_value=0, max_value=9))
    @settings(max_examples=10, deadline=None)
    def test_any_single_erasure_is_decodable(self, position):
        code = LocalReconstructionCode(6, 2, 2)
        data, available = make_stripe(code, seed=position)
        available.pop(position, None)
        decoded = code.decode(available)
        for expected, actual in zip(data, decoded):
            assert np.array_equal(expected, actual)


class TestDecodabilityAndLocality:
    def test_can_decode_full_and_degraded(self):
        code = LocalReconstructionCode(6, 2, 2)
        assert code.can_decode(range(code.n))
        assert code.can_decode([pos for pos in range(code.n) if pos != 0])
        assert not code.can_decode(range(3))

    def test_can_decode_detects_dead_group(self):
        code = LocalReconstructionCode(6, 2, 2)
        # All of group 0 (data + local parity) is gone: the two global
        # parities cannot determine three unknowns even though six blocks
        # survive.
        available = [3, 4, 5, 7, 8, 9]
        assert not code.can_decode(available)

    def test_local_repair_positions(self):
        code = LocalReconstructionCode(6, 2, 2)
        assert code.local_repair_positions(0) == [1, 2, 6]
        assert code.local_repair_positions(6) == [0, 1, 2]
        assert code.local_repair_positions(code.k + code.local_groups) == list(range(6))

    def test_repair_cost_locality(self):
        code = LocalReconstructionCode(12, 4, 2)
        assert code.repair_cost(0) == 3  # 2 group members + local parity
        assert code.repair_cost(code.k) == 3  # local parity from its group
        assert code.repair_cost(code.n - 1) == 12  # global parity needs all data

    def test_lrc_sits_between_rs_and_ae_on_locality(self):
        """The locality ordering the benchmarks rely on: AE (2) < LRC (k/l + 1) < RS (k)."""
        lrc = LocalReconstructionCode(10, 2, 4)
        rs = ReedSolomonCode(10, 4)
        assert 2 < lrc.repair_cost(0) + 1 <= rs.single_failure_cost + 1
        assert lrc.single_failure_cost < rs.single_failure_cost

    def test_storage_overhead(self):
        code = LocalReconstructionCode(10, 2, 4)
        assert code.storage_overhead == pytest.approx(0.6)
        assert code.costs().as_row()["additional storage (%)"] == 60.0
