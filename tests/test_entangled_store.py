"""Integration tests for the high-level entangled storage system."""

from __future__ import annotations

import pytest

from repro.core.blocks import DataId
from repro.core.parameters import AEParameters
from repro.exceptions import UnknownBlockError
from repro.storage.maintenance import MaintenancePolicy
from repro.system.entangled_store import EntangledStorageSystem

from tests.conftest import make_payload


def make_system(params=None, locations=30, block_size=128, seed=3):
    return EntangledStorageSystem(
        params or AEParameters.triple(2, 5),
        location_count=locations,
        block_size=block_size,
        seed=seed,
    )


class TestPutGet:
    def test_document_roundtrip(self):
        system = make_system()
        payload = b"archival payload " * 500
        document = system.put("doc", payload)
        assert document.length == len(payload)
        assert system.read("doc") == payload
        assert system.status().data_blocks == document.block_count

    def test_unknown_document(self):
        system = make_system()
        with pytest.raises(UnknownBlockError):
            system.read("nope")

    def test_streaming_append(self):
        system = make_system()
        encoded = system.append_block(b"streamed block")
        assert encoded.data_id == DataId(1)
        assert len(encoded.parities) == 3

    def test_status_counts(self):
        system = make_system()
        system.put("doc", make_payload(1, 4000))
        status = system.status()
        assert status.parity_blocks == status.data_blocks * 3
        assert status.unavailable_blocks == 0
        assert "data" in status.summary()


class TestDegradedOperation:
    def test_reads_survive_disasters(self):
        system = make_system(locations=40)
        payload = make_payload(7, 20_000)
        system.put("doc", payload)
        system.fail_locations(range(0, 12))  # 30% of the locations
        assert system.read("doc") == payload

    def test_repair_restores_redundancy(self):
        system = make_system(locations=40)
        payload = make_payload(9, 20_000)
        system.put("doc", payload)
        system.fail_locations(range(0, 12))
        report = system.repair(MaintenancePolicy.FULL)
        assert report.data_loss == 0
        assert not report.unrecovered
        # After repair, everything is reachable even though the locations stay down.
        assert system.status().unavailable_blocks == 0
        assert system.read("doc") == payload

    def test_minimal_maintenance_leaves_parities_missing(self):
        system = make_system(locations=40)
        system.put("doc", make_payload(5, 20_000))
        system.fail_locations(range(0, 12))
        before = system.status().unavailable_data_blocks
        report = system.repair(MaintenancePolicy.MINIMAL)
        assert report.skipped  # parities were not repaired
        status = system.status()
        # Data repairs are prioritised; without parity repairs a few data
        # blocks may stay unreachable, but most are restored.
        assert status.unavailable_data_blocks < before
        assert status.unavailable_data_blocks <= before // 2
        # Skipped parities remain unavailable.
        assert status.unavailable_blocks >= len(report.skipped)

    def test_restore_locations_brings_blocks_back(self):
        system = make_system(locations=20)
        system.put("doc", make_payload(2, 5_000))
        system.fail_locations([0, 1, 2])
        system.restore_locations()
        assert system.status().unavailable_blocks == 0

    def test_verify_document_helper(self):
        system = make_system()
        payload = make_payload(11, 3_000)
        system.put("doc", payload)
        assert system.verify_document("doc", payload)
        assert not system.verify_document("doc", payload + b"tampered")
