"""Tests for the repair bandwidth / I/O accounting model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.repair_cost import (
    RepairCost,
    SchemeRepairModel,
    ae_repair_model,
    disaster_traffic_table,
    repair_model_for,
    replication_repair_model,
    rs_repair_model,
    single_failure_table,
)
from repro.core.parameters import AEParameters
from repro.exceptions import InvalidParametersError
from repro.simulation.metrics import PAPER_SCHEMES


class TestModels:
    def test_ae_single_failure_always_two_reads(self):
        """The paper's headline: single failures cost exactly two block reads
        for every AE setting."""
        for spec in ("AE(1,-,-)", "AE(2,2,5)", "AE(3,2,5)", "AE(3,5,5)"):
            model = ae_repair_model(AEParameters.parse(spec))
            cost = model.single_failure_cost(4096)
            assert cost.blocks_read == 2
            assert cost.bytes_transferred == 2 * 4096
            assert cost.xor_operations == 1

    def test_rs_single_failure_costs_k_reads(self):
        model = rs_repair_model(10, 4)
        cost = model.single_failure_cost(4096)
        assert cost.blocks_read == 10
        assert cost.bytes_transferred == 10 * 4096
        assert cost.xor_operations == 9

    def test_replication_repair_is_a_copy(self):
        cost = replication_repair_model(3).single_failure_cost(1024)
        assert cost.blocks_read == 1
        assert cost.xor_operations == 0

    def test_degraded_read_equals_single_failure(self):
        model = rs_repair_model(6, 3)
        assert model.degraded_read_cost(512) == model.single_failure_cost(512)

    def test_invalid_constructions(self):
        with pytest.raises(InvalidParametersError):
            rs_repair_model(0, 2)
        with pytest.raises(InvalidParametersError):
            replication_repair_model(1)
        with pytest.raises(InvalidParametersError):
            SchemeRepairModel(name="x", kind="rs", single_failure_reads=0, storage_overhead=1.0)
        with pytest.raises(InvalidParametersError):
            SchemeRepairModel(name="x", kind="rs", single_failure_reads=2, storage_overhead=-1.0)
        with pytest.raises(InvalidParametersError):
            SchemeRepairModel(
                name="x", kind="ae", single_failure_reads=2, storage_overhead=1.0, rounds_factor=0.5
            )

    def test_invalid_block_size(self):
        with pytest.raises(InvalidParametersError):
            rs_repair_model(4, 2).single_failure_cost(0)

    def test_repair_model_for_dispatch(self):
        assert repair_model_for((10, 4)).kind == "rs"
        assert repair_model_for(3).kind == "replication"
        assert repair_model_for(AEParameters.triple(2, 5)).kind == "ae"


class TestDisasterTraffic:
    def test_traffic_scales_with_missing_blocks(self):
        model = ae_repair_model(AEParameters.triple(2, 5))
        small = model.disaster_traffic(1_000, 4096)
        large = model.disaster_traffic(10_000, 4096)
        assert large["bytes transferred"] == 10 * small["bytes transferred"]

    def test_zero_missing_blocks(self):
        report = rs_repair_model(8, 2).disaster_traffic(0, 4096)
        assert report["bytes transferred"] == 0
        assert report["bytes per repaired block"] == 0.0

    def test_rounds_factor_inflates_multi_failure_repairs(self):
        base = ae_repair_model(AEParameters.triple(2, 5), expected_rounds=1.0)
        inflated = ae_repair_model(AEParameters.triple(2, 5), expected_rounds=3.0)
        without = base.disaster_traffic(1_000, 4096, single_failure_fraction=0.5)
        with_rounds = inflated.disaster_traffic(1_000, 4096, single_failure_fraction=0.5)
        assert with_rounds["bytes transferred"] > without["bytes transferred"]

    def test_fraction_must_be_probability(self):
        with pytest.raises(InvalidParametersError):
            rs_repair_model(4, 2).disaster_traffic(10, 4096, single_failure_fraction=1.5)

    def test_negative_missing_blocks_rejected(self):
        with pytest.raises(InvalidParametersError):
            rs_repair_model(4, 2).disaster_traffic(-1, 4096)

    def test_ae_beats_rs_for_single_failure_dominated_disasters(self):
        """Fig. 13's consequence: when most repairs are single failures, AE
        moves far fewer bytes than RS at the same storage overhead."""
        ae = ae_repair_model(AEParameters.triple(2, 5))  # 300% overhead
        rs = rs_repair_model(4, 12)  # 300% overhead
        ae_traffic = ae.disaster_traffic(50_000, 4096, single_failure_fraction=0.9)
        rs_traffic = rs.disaster_traffic(50_000, 4096, single_failure_fraction=0.2)
        assert ae_traffic["bytes transferred"] < rs_traffic["bytes transferred"]


class TestTables:
    def test_single_failure_table_covers_all_schemes(self):
        rows = single_failure_table(PAPER_SCHEMES)
        assert len(rows) == len(PAPER_SCHEMES)
        by_scheme = {row["scheme"]: row for row in rows}
        assert by_scheme["AE(3,2,5)"]["blocks read"] == 2
        assert by_scheme["RS(10,4)"]["blocks read"] == 10
        assert by_scheme["3-way replication"]["blocks read"] == 1

    def test_disaster_traffic_table_uses_measured_inputs(self):
        fractions = {"AE(3,2,5)": 0.95, "RS(4,12)": 0.3}
        rounds = {"AE(3,2,5)": 2.0}
        rows = disaster_traffic_table(
            [(4, 12), AEParameters.triple(2, 5)],
            missing_blocks=10_000,
            block_size=4096,
            single_failure_fractions=fractions,
            expected_rounds=rounds,
        )
        by_scheme = {row["scheme"]: row for row in rows}
        assert by_scheme["AE(3,2,5)"]["single-failure repairs"] == 9_500
        assert by_scheme["RS(4,12)"]["single-failure repairs"] == 3_000
        assert (
            by_scheme["AE(3,2,5)"]["bytes transferred"]
            < by_scheme["RS(4,12)"]["bytes transferred"]
        )

    @given(
        st.integers(min_value=1, max_value=100_000),
        st.integers(min_value=1, max_value=1 << 20),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_traffic_accounting_is_consistent(self, missing, block_size, fraction):
        """Property: single + multi repairs always partition the missing blocks
        and traffic is at least reads * block_size per block."""
        model = rs_repair_model(6, 3)
        report = model.disaster_traffic(missing, block_size, fraction)
        assert report["single-failure repairs"] + report["multi-failure repairs"] == missing
        assert report["bytes transferred"] >= missing * block_size

    def test_repair_cost_row_shape(self):
        cost = RepairCost(
            scheme="x", blocks_read=2, bytes_transferred=8192, xor_operations=1, io_locations=2
        )
        row = cost.as_row()
        assert row["scheme"] == "x"
        assert row["blocks read"] == 2
