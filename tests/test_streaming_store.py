"""Tests for the streaming ingest pipeline and the bulk storage paths.

Covers the satellite guarantees of the batch-ingest work: byte-exact round
trips through ``put_stream``/``get_stream`` (including empty documents and
payloads that are not a multiple of the block size), the property-style
encode -> corrupt -> repair -> decode cycle over several AE(alpha, s, p)
settings, and the ``put_many``/``get_many`` bulk paths of the storage layer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.blocks import DataId, ParityId
from repro.core.parameters import AEParameters, StrandClass
from repro.exceptions import (
    BlockUnavailableError,
    StorageFullError,
    UnknownBlockError,
)
from repro.storage.block_store import BlockStore
from repro.storage.cluster import StorageCluster
from repro.storage.maintenance import MaintenancePolicy
from repro.system.entangled_store import EntangledStorageSystem

BLOCK = 128


def make_system(params=None, locations=40, block_size=BLOCK, batch_blocks=4, seed=3):
    return EntangledStorageSystem(
        params or AEParameters.triple(2, 5),
        location_count=locations,
        block_size=block_size,
        batch_blocks=batch_blocks,
        seed=seed,
    )


def document_bytes(size: int, seed: int = 5) -> bytes:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()


def chunked(payload: bytes, chunk: int):
    return [payload[offset : offset + chunk] for offset in range(0, len(payload), chunk)]


class TestPutStreamRoundTrip:
    @pytest.mark.parametrize(
        "size",
        [
            0,  # empty document
            1,  # sub-block payload
            BLOCK - 1,  # padding in the only block
            BLOCK,  # exact single block
            5 * BLOCK,  # exact multiple, spans batches (batch_blocks=4)
            5 * BLOCK + 17,  # padding in the last block of the second batch
        ],
    )
    def test_byte_exact_round_trip(self, size):
        system = make_system()
        payload = document_bytes(size)
        document = system.put_stream("doc", chunked(payload, 300))
        assert document.length == size
        assert b"".join(system.get_stream("doc")) == payload
        # The non-streaming read path sees the same document.
        assert system.read("doc") == payload

    def test_chunk_sizes_do_not_matter(self):
        payload = document_bytes(3 * BLOCK + 5)
        reference = None
        for chunk in [1, 7, BLOCK, BLOCK * 2 + 3, len(payload)]:
            system = make_system()
            system.put_stream("doc", chunked(payload, chunk))
            recovered = b"".join(system.get_stream("doc"))
            assert recovered == payload
            reference = reference or recovered
            assert recovered == reference

    def test_empty_iterable(self):
        system = make_system()
        document = system.put_stream("empty", [])
        assert document.length == 0
        assert document.block_count == 0
        assert list(system.get_stream("empty")) == []
        assert system.read("empty") == b""

    def test_equivalent_to_put(self):
        """put and put_stream produce documents with identical lattice content."""
        payload = document_bytes(7 * BLOCK + 9)
        via_put = make_system()
        via_stream = make_system()
        doc_put = via_put.put("doc", payload)
        doc_stream = via_stream.put_stream("doc", chunked(payload, 333))
        assert doc_put.data_ids == doc_stream.data_ids
        assert doc_put.length == doc_stream.length
        for data_id in doc_put.data_ids:
            assert np.array_equal(via_put.get_block(data_id), via_stream.get_block(data_id))
        for index in range(1, len(doc_put.data_ids) + 1):
            for cls in via_put.params.strand_classes:
                parity = ParityId(index, cls)
                assert np.array_equal(via_put.get_block(parity), via_stream.get_block(parity))

    def test_get_stream_unknown_document(self):
        with pytest.raises(UnknownBlockError):
            make_system().get_stream("nope")

    def test_multiple_documents_share_the_lattice(self):
        system = make_system()
        first = document_bytes(2 * BLOCK + 3, seed=1)
        second = document_bytes(3 * BLOCK + 1, seed=2)
        system.put_stream("first", [first])
        system.put_stream("second", [second])
        assert b"".join(system.get_stream("first")) == first
        assert b"".join(system.get_stream("second")) == second


class TestStreamingUnderFailures:
    """Property-style: encode -> corrupt -> repair -> decode, several settings."""

    @pytest.mark.parametrize(
        "spec", ["AE(1,-,-)", "AE(2,2,5)", "AE(3,2,5)", "AE(3,5,5)"]
    )
    def test_degraded_stream_reads(self, spec):
        params = AEParameters.parse(spec)
        system = make_system(params=params, locations=40)
        payload = document_bytes(40 * BLOCK + 11)
        system.put_stream("doc", chunked(payload, 1000))
        # Single-location losses are always recoverable for every setting.
        system.fail_locations([0, 1] if params.alpha == 1 else list(range(8)))
        assert b"".join(system.get_stream("doc")) == payload

    @pytest.mark.parametrize("spec", ["AE(2,2,5)", "AE(3,2,5)", "AE(3,5,5)"])
    def test_repair_then_stream(self, spec):
        params = AEParameters.parse(spec)
        system = make_system(params=params, locations=40)
        payload = document_bytes(30 * BLOCK)
        system.put_stream("doc", chunked(payload, 512))
        system.fail_locations(range(12))  # 30% disaster
        report = system.repair(MaintenancePolicy.FULL)
        assert report.data_loss == 0
        assert system.status().unavailable_blocks == 0
        assert b"".join(system.get_stream("doc")) == payload


class TestBlockStoreBulk:
    def make_items(self, count, size=16):
        rng = np.random.default_rng(0)
        return [
            (DataId(index + 1), rng.integers(0, 256, size=size, dtype=np.uint8))
            for index in range(count)
        ]

    def test_put_many_and_get_many(self):
        store = BlockStore(0)
        items = self.make_items(5)
        assert store.put_many(items) == 5
        assert store.block_count == 5
        assert store.write_count == 5
        payloads = store.get_many([block_id for block_id, _ in items])
        for (_, want), got in zip(items, payloads):
            assert np.array_equal(want, got)
        assert store.read_count == 5

    def test_put_many_respects_capacity_atomically(self):
        store = BlockStore(0, capacity_blocks=3)
        with pytest.raises(StorageFullError):
            store.put_many(self.make_items(5))
        # All-or-nothing: the failed batch stored nothing.
        assert store.block_count == 0

    def test_put_many_counts_overwrites_within_capacity(self):
        store = BlockStore(0, capacity_blocks=3)
        items = self.make_items(3)
        store.put_many(items)
        store.put_many(items)  # overwrites fit: no new blocks
        assert store.block_count == 3

    def test_bulk_ops_unavailable_location(self):
        store = BlockStore(0)
        store.put_many(self.make_items(2))
        store.fail()
        with pytest.raises(BlockUnavailableError):
            store.put_many(self.make_items(1))
        with pytest.raises(BlockUnavailableError):
            store.get_many([DataId(1)])

    def test_get_many_unknown_block(self):
        store = BlockStore(0)
        with pytest.raises(UnknownBlockError):
            store.get_many([DataId(99)])


class TestClusterBulk:
    def make_items(self, count, size=16):
        rng = np.random.default_rng(1)
        return [
            (DataId(index + 1), rng.integers(0, 256, size=size, dtype=np.uint8))
            for index in range(count)
        ]

    def test_put_many_matches_per_block_placement(self):
        items = self.make_items(40)
        bulk = StorageCluster(10)
        single = StorageCluster(10)
        bulk.put_many(items)
        for block_id, payload in items:
            from repro.core.blocks import Block

            single.put_block(Block(block_id, payload))
        for block_id, _ in items:
            assert bulk.location_of(block_id) == single.location_of(block_id)

    def test_get_many_round_trip_in_request_order(self):
        cluster = StorageCluster(7)
        items = self.make_items(20)
        assert cluster.put_many(items) == 20
        wanted = [items[13][0], items[2][0], items[19][0]]
        payloads = cluster.get_many(wanted)
        assert np.array_equal(payloads[0], items[13][1])
        assert np.array_equal(payloads[1], items[2][1])
        assert np.array_equal(payloads[2], items[19][1])

    def test_get_many_unknown_block(self):
        cluster = StorageCluster(3)
        with pytest.raises(UnknownBlockError):
            cluster.get_many([DataId(1)])

    def test_locations_for_matches_location_for(self):
        cluster = StorageCluster(13)
        ids = [DataId(i) for i in range(1, 30)] + [
            ParityId(i, StrandClass.HORIZONTAL) for i in range(1, 30)
        ]
        bulk = cluster.placement.locations_for(ids)
        assert bulk == [cluster.placement.location_for(block_id) for block_id in ids]
