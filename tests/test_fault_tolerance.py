"""Tests for the cross-setting fault-tolerance study (Figs. 8 and 9)."""

from __future__ import annotations

import pytest

from repro.analysis.fault_tolerance import (
    FIGURE8_P_RANGE,
    FIGURE8_SETTINGS,
    complex_form_catalogue,
    cube_pattern,
    fault_tolerance_report,
    me2_family_size,
    me4_family_size,
    me_curves,
    me_size,
)
from repro.analysis.erasure_patterns import is_irrecoverable
from repro.core.parameters import AEParameters
from repro.exceptions import InvalidParametersError


class TestFamilyFormulas:
    @pytest.mark.parametrize(
        "spec, expected",
        [((1, 1, 0), 3), ((2, 1, 1), 4), ((3, 1, 1), 5), ((3, 1, 4), 8), ((3, 4, 4), 14), ((3, 2, 5), 11)],
    )
    def test_me2_family_matches_paper(self, spec, expected):
        assert me2_family_size(AEParameters(*spec)) == expected

    def test_me2_family_agrees_with_search_on_small_settings(self):
        for spec in [(2, 2, 2), (2, 2, 3), (3, 2, 2), (3, 2, 3), (3, 3, 3)]:
            params = AEParameters(*spec)
            assert me_size(params, 2, method="search") == me2_family_size(params)

    def test_me4_family_values(self):
        assert me4_family_size(AEParameters(2, 2, 5)) == 8
        assert me4_family_size(AEParameters(3, 2, 5)) == 12
        assert me4_family_size(AEParameters(3, 3, 5)) == 14

    def test_unknown_family_size_rejected(self):
        with pytest.raises(InvalidParametersError):
            me_size(AEParameters(3, 2, 5), 3, method="family")
        with pytest.raises(InvalidParametersError):
            me_size(AEParameters(3, 2, 5), 2, method="bogus")


class TestCurves:
    def test_figure8_curves_shape(self):
        """|ME(2)| grows with p for every setting and is minimal when s = p."""
        curves = me_curves(2, settings=((2, 2), (3, 2)), p_values=(2, 3, 4, 5), method="family")
        for curve in curves:
            values = [size for _, size in sorted(curve.points.items()) if size is not None]
            assert values == sorted(values)
            assert values[0] < values[-1]

    def test_figure8_search_matches_family_for_alpha3_s2(self):
        search_curve = me_curves(2, settings=((3, 2),), p_values=(2, 3, 4), method="search")[0]
        family_curve = me_curves(2, settings=((3, 2),), p_values=(2, 3, 4), method="family")[0]
        assert search_curve.points == family_curve.points

    def test_figure9_alpha2_constant(self):
        curve = me_curves(4, settings=((2, 2),), p_values=(2, 3, 4), method="search")[0]
        values = {size for size in curve.points.values() if size is not None}
        assert values == {8}

    def test_invalid_settings_are_skipped(self):
        curve = me_curves(2, settings=((3, 3),), p_values=(2, 3), method="family")[0]
        assert curve.points[2] is None  # p < s is invalid
        assert curve.points[3] is not None

    def test_curve_rows_render(self):
        curve = me_curves(2, settings=((2, 2),), p_values=(2, 3), method="family")[0]
        rows = curve.as_rows()
        assert rows[0]["setting"] == "AE(2,2,p)"
        assert rows[0]["|ME(2)|"] == 6


class TestCatalogueAndReports:
    def test_complex_form_catalogue_matches_figure7(self):
        rows = complex_form_catalogue(method="family")
        values = {row["setting"]: row["|ME(2)|"] for row in rows}
        assert values["AE(1,-,-)"] == 3
        assert values["AE(2,1,1)"] == 4
        assert values["AE(3,1,1)"] == 5
        assert values["AE(3,1,4)"] == 8
        assert values["AE(3,4,4)"] == 14

    def test_cube_pattern_for_ae333(self):
        """|ME(8)| = 20 for AE(3,3,3): 8 nodes plus 12 edges (Sec. V-A)."""
        params = AEParameters(3, 3, 3)
        pattern = cube_pattern(params)
        assert pattern is not None
        assert pattern.data_count == 8
        assert pattern.size == 20
        assert is_irrecoverable(pattern, params)

    def test_cube_pattern_requires_alpha3(self):
        assert cube_pattern(AEParameters(2, 2, 2)) is None

    def test_fault_tolerance_report_columns(self):
        rows = fault_tolerance_report([AEParameters(2, 2, 2)], method="family")
        assert rows[0]["setting"] == "AE(2,2,2)"
        assert rows[0]["|ME(2)|"] == 6
        assert rows[0]["|ME(4)|"] == 8

    def test_figure8_constants_cover_paper_range(self):
        assert FIGURE8_SETTINGS == ((2, 2), (2, 3), (3, 2), (3, 3))
        assert FIGURE8_P_RANGE == tuple(range(2, 9))
