"""Tests for placement policies."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.blocks import DataId, ParityId
from repro.core.parameters import AEParameters, StrandClass
from repro.exceptions import PlacementError
from repro.storage.placement import (
    DictionaryPlacement,
    PlacementPolicy,
    RandomPlacement,
    RoundRobinPlacement,
    StrandAwarePlacement,
    placement_balance,
)


def all_blocks(count: int, params: AEParameters):
    blocks = []
    for index in range(1, count + 1):
        blocks.append(DataId(index))
        blocks.extend(ParityId(index, cls) for cls in params.strand_classes)
    return blocks


class TestRandomPlacement:
    def test_deterministic_given_seed(self):
        one = RandomPlacement(50, seed=7)
        two = RandomPlacement(50, seed=7)
        other = RandomPlacement(50, seed=8)
        ids = all_blocks(100, AEParameters.triple(2, 5))
        assert [one.location_for(b) for b in ids] == [two.location_for(b) for b in ids]
        assert [one.location_for(b) for b in ids] != [other.location_for(b) for b in ids]

    def test_locations_in_range_and_roughly_balanced(self):
        policy = RandomPlacement(20, seed=3)
        ids = all_blocks(500, AEParameters.triple(2, 5))
        counts = placement_balance(policy, ids)
        assert counts.sum() == len(ids)
        assert counts.min() > 0
        # Uniform expectation is 100 blocks per location; allow generous slack.
        assert counts.max() < 200

    def test_requires_at_least_one_location(self):
        with pytest.raises(PlacementError):
            RandomPlacement(0)


class TestRoundRobinPlacement:
    def test_consecutive_blocks_use_different_locations(self):
        params = AEParameters.triple(2, 5)
        policy = RoundRobinPlacement(40, params)
        seen = {
            policy.location_for(DataId(1)),
            policy.location_for(ParityId(1, StrandClass.HORIZONTAL)),
            policy.location_for(ParityId(1, StrandClass.RIGHT_HANDED)),
            policy.location_for(ParityId(1, StrandClass.LEFT_HANDED)),
            policy.location_for(DataId(2)),
        }
        assert len(seen) == 5


class TestStrandAwarePlacement:
    @given(st.integers(min_value=1, max_value=300))
    @settings(max_examples=60, deadline=None)
    def test_block_never_collides_with_its_repair_tuple(self, index):
        """A data block and the parities of each of its pp-tuples are spread
        over distinct locations, so one location failure never removes a block
        and its cheapest repair path."""
        params = AEParameters.triple(2, 5)
        policy = StrandAwarePlacement(24, params)
        data_location = policy.location_for(DataId(index))
        for cls in params.strand_classes:
            assert policy.location_for(ParityId(index, cls)) != data_location

    def test_small_cluster_falls_back_to_hashing(self):
        params = AEParameters.triple(2, 5)
        policy = StrandAwarePlacement(3, params)
        locations = {policy.location_for(DataId(i)) for i in range(1, 30)}
        assert locations <= {0, 1, 2}


class TestDictionaryPlacement:
    def test_explicit_mapping(self):
        policy = DictionaryPlacement(4, {DataId(1): 2})
        assert policy.location_for(DataId(1)) == 2
        policy.record(DataId(2), 3)
        assert policy.location_for(DataId(2)) == 3
        with pytest.raises(PlacementError):
            policy.location_for(DataId(9))
        with pytest.raises(PlacementError):
            policy.record(DataId(3), 9)

    def test_describe(self):
        assert "4" in RandomPlacement(4).describe()
