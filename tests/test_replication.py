"""Tests for n-way replication."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codes.replication import (
    PAPER_REPLICATION_FACTORS,
    ReplicationCode,
    paper_replication_codes,
)
from repro.exceptions import DecodingError, InvalidParametersError


class TestReplication:
    def test_encode_returns_identical_copies(self):
        code = ReplicationCode(3)
        data = np.arange(16, dtype=np.uint8)
        copies = code.encode([data])
        assert len(copies) == 2
        assert all(np.array_equal(copy, data) for copy in copies)
        # Copies are independent arrays, not views of the original.
        copies[0][0] ^= 0xFF
        assert data[0] == 0

    def test_decode_uses_any_copy(self):
        code = ReplicationCode(4)
        data = np.arange(8, dtype=np.uint8)
        assert np.array_equal(code.decode({3: data})[0], data)
        with pytest.raises(DecodingError):
            code.decode({})

    def test_costs_match_table_four(self):
        assert ReplicationCode(2).costs().additional_storage_percent == pytest.approx(100.0)
        assert ReplicationCode(3).costs().additional_storage_percent == pytest.approx(200.0)
        assert ReplicationCode(4).costs().additional_storage_percent == pytest.approx(300.0)
        assert ReplicationCode(4).single_failure_cost == 1

    def test_tolerated_failures(self):
        assert ReplicationCode(2).tolerated_failures() == 1
        assert ReplicationCode(4).tolerated_failures() == 3

    def test_invalid_factor(self):
        with pytest.raises(InvalidParametersError):
            ReplicationCode(1)

    def test_paper_factors(self):
        assert [code.copies for code in paper_replication_codes()] == list(
            PAPER_REPLICATION_FACTORS
        )

    def test_can_decode_with_single_position(self):
        code = ReplicationCode(3)
        assert code.can_decode([2])
        assert not code.can_decode([])

    def test_repair_returns_copy_of_survivor(self):
        code = ReplicationCode(3)
        data = np.arange(4, dtype=np.uint8)
        repaired = code.repair(1, {0: data})
        assert np.array_equal(repaired, data)
