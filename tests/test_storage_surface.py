"""Import-surface test: `repro.storage.__all__` is complete and importable.

Mirrors `tests/test_simulation_surface.py`: every name in ``__all__``
resolves, the list is sorted and unique, and every public class/function
defined in the subpackage's modules is reachable -- either exported directly
or through an exported registry submodule (``backends``, ``placement``,
``topology`` keep their generic ``get``/``register`` entry points namespaced).
"""

from __future__ import annotations

import inspect

import repro.storage


class TestStorageImportSurface:
    def test_all_entries_resolve(self):
        for name in repro.storage.__all__:
            assert getattr(repro.storage, name) is not None

    def test_all_is_sorted_and_unique(self):
        exported = list(repro.storage.__all__)
        assert exported == sorted(exported)
        assert len(exported) == len(set(exported))

    def test_star_import_matches_all(self):
        namespace: dict = {}
        exec("from repro.storage import *", namespace)
        missing = set(repro.storage.__all__) - set(namespace)
        assert not missing, f"__all__ entries not importable via *: {sorted(missing)}"

    def test_public_submodule_definitions_are_exported(self):
        import repro.storage.backends
        import repro.storage.block_store
        import repro.storage.cluster
        import repro.storage.failures
        import repro.storage.maintenance
        import repro.storage.placement
        import repro.storage.repair
        import repro.storage.scrub
        import repro.storage.topology
        import repro.storage.wal

        submodules = [
            repro.storage.backends,
            repro.storage.block_store,
            repro.storage.cluster,
            repro.storage.failures,
            repro.storage.maintenance,
            repro.storage.placement,
            repro.storage.repair,
            repro.storage.scrub,
            repro.storage.topology,
            repro.storage.wal,
        ]
        #: Registry submodules exported as modules: their registry entry
        #: points (get/register/available and policy/backend factories) stay
        #: namespaced (repro.storage.placement.get) to avoid clobbering the
        #: scheme registry's `get` at package level.
        namespaced = {"backends", "placement", "topology"}
        exported = set(repro.storage.__all__)
        for module in submodules:
            short_name = module.__name__.rsplit(".", 1)[1]
            for name, value in vars(module).items():
                if name.startswith("_"):
                    continue
                if not (inspect.isclass(value) or inspect.isfunction(value)):
                    continue
                if getattr(value, "__module__", None) != module.__name__:
                    continue
                if name in exported:
                    continue
                assert short_name in namespaced and short_name in exported, (
                    f"{module.__name__}.{name} missing from repro.storage.__all__"
                )
                # Reachable through the exported submodule.
                assert getattr(getattr(repro.storage, short_name), name) is value

    def test_topology_surface_is_the_front_door(self):
        """The topology/placement API the docs advertise is exported."""
        for required in (
            "Topology",
            "TopologyBuilder",
            "TopologyNode",
            "SpreadDomainsPlacement",
            "WeightedPlacement",
            "PlacementPolicy",
            "placement",
            "topology",
            "disaster_for_target",
            "domain_balance",
            "placement_balance",
        ):
            assert required in repro.storage.__all__

    def test_placement_registry_covers_the_catalogue(self):
        from repro.storage import placement

        assert set(placement.available()) >= {
            "random",
            "round-robin",
            "strand-aware",
            "spread-domains",
            "weighted",
        }

    def test_backend_registry_covers_the_catalogue(self):
        """RPR002 anchor: every registered backend id appears literally here."""
        from repro.storage import backends

        assert set(backends.available()) >= {
            "memory",
            "disk",
            "segment",
        }


class TestShardingSurface:
    """RPR002 anchor for the sharded-namespace exports (PR 9)."""

    def test_sharding_module_all_resolves(self):
        import repro.system.sharding as sharding

        for name in sharding.__all__:
            assert getattr(sharding, name) is not None
        assert sorted(sharding.__all__) == list(sharding.__all__)

    def test_system_package_exports_the_federation_api(self):
        import repro.system

        for required in (
            "FederationRepairReport",
            "FederationStatus",
            "RebalanceReport",
            "ShardRing",
            "ShardedStorageService",
        ):
            assert required in repro.system.__all__
            assert getattr(repro.system, required) is not None

    def test_top_level_exports_the_federation_front_door(self):
        import repro

        for required in ("ShardRing", "ShardedStorageService"):
            assert required in repro.__all__
            assert getattr(repro, required) is not None
