"""Tests for strand identities, walking and the strand-head registry."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.parameters import AEParameters, StrandClass
from repro.core.strands import (
    StrandHeadRegistry,
    StrandId,
    all_strands,
    distance_on_strand,
    edges_between,
    nodes_between,
    share_strand,
    strand_of,
    strands_of,
    walk_backward,
    walk_forward,
)
from repro.core.xor import as_payload
from repro.exceptions import LatticeBoundsError


class TestStrandIdentities:
    def test_total_strand_count_matches_formula(self, any_params):
        assert len(all_strands(any_params)) == any_params.strand_count

    def test_node_participates_in_alpha_strands(self, paper_example_params):
        strands = strands_of(26, paper_example_params)
        assert len(strands) == 3
        assert len({strand.strand_class for strand in strands}) == 3

    def test_strand_names(self):
        assert StrandId(StrandClass.HORIZONTAL, 0).name() == "H1"
        assert StrandId(StrandClass.RIGHT_HANDED, 4).name() == "RH5"
        assert StrandId(StrandClass.LEFT_HANDED, 1).name() == "LH2"

    def test_d26_strand_membership_figure4(self, paper_example_params):
        """d26 belongs to one H, one RH and one LH strand; d26 and d31 share H."""
        assert share_strand(26, 31, StrandClass.HORIZONTAL, paper_example_params)
        assert share_strand(26, 32, StrandClass.RIGHT_HANDED, paper_example_params)
        assert share_strand(26, 35, StrandClass.LEFT_HANDED, paper_example_params)
        assert not share_strand(26, 27, StrandClass.HORIZONTAL, paper_example_params)


class TestWalking:
    def test_walk_forward_on_h_strand(self, paper_example_params):
        walked = []
        for node in walk_forward(26, StrandClass.HORIZONTAL, paper_example_params):
            walked.append(node)
            if len(walked) == 4:
                break
        assert walked == [26, 31, 36, 41]

    def test_walk_backward_reaches_strand_start(self, paper_example_params):
        walked = list(walk_backward(26, StrandClass.RIGHT_HANDED, paper_example_params))
        assert walked[0] == 26
        assert walked[-1] >= 1
        assert all(earlier > later for earlier, later in zip(walked, walked[1:]))

    def test_walk_forward_respects_limit(self, paper_example_params):
        nodes = list(walk_forward(26, StrandClass.HORIZONTAL, paper_example_params, limit=40))
        assert nodes == [26, 31, 36]

    @given(
        st.sampled_from([(3, 2, 5), (3, 5, 5), (2, 2, 4)]),
        st.integers(min_value=1, max_value=80),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=80, deadline=None)
    def test_distance_matches_nodes_between(self, spec, start, hops):
        params = AEParameters(*spec)
        for strand_class in params.strand_classes:
            nodes = [start]
            for _ in range(hops):
                walker = walk_forward(nodes[-1], strand_class, params)
                next(walker)  # the start node itself
                nodes.append(next(walker))
            end = nodes[-1]
            assert distance_on_strand(start, end, strand_class, params) == hops
            assert nodes_between(start, end, strand_class, params) == nodes
            assert len(edges_between(start, end, strand_class, params)) == hops

    def test_distance_none_for_unreachable(self, paper_example_params):
        # 27 is not on the H strand through 26.
        assert distance_on_strand(26, 27, StrandClass.HORIZONTAL, paper_example_params) is None
        assert distance_on_strand(26, 21, StrandClass.HORIZONTAL, paper_example_params) is None

    def test_nodes_between_errors(self, paper_example_params):
        with pytest.raises(LatticeBoundsError):
            nodes_between(26, 21, StrandClass.HORIZONTAL, paper_example_params)
        with pytest.raises(LatticeBoundsError):
            nodes_between(26, 27, StrandClass.HORIZONTAL, paper_example_params)


class TestStrandHeadRegistry:
    def test_registry_tracks_heads(self, hec_params):
        registry = StrandHeadRegistry(hec_params)
        strand = strand_of(1, StrandClass.HORIZONTAL, hec_params)
        assert registry.head(strand) is None
        registry.update(strand, 1, as_payload(b"\x01\x02"))
        creator, payload = registry.head(strand)
        assert creator == 1
        assert payload.tolist() == [1, 2]
        assert registry.snapshot() == {strand: 1}
        registry.forget(strand)
        assert registry.head(strand) is None

    def test_registry_bounded_by_strand_count(self, hec_params):
        """After encoding many blocks the registry holds at most one head per strand."""
        from repro.core.encoder import Entangler

        encoder = Entangler(hec_params, block_size=16)
        for index in range(200):
            encoder.entangle(bytes([index % 256]) * 16)
        assert encoder.memory_footprint_blocks <= hec_params.strand_count
