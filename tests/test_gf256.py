"""Property-based tests for GF(2^8) arithmetic."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.codes.gf256 import (
    EXP_TABLE,
    LOG_TABLE,
    gf_add,
    gf_div,
    gf_dot_bytes,
    gf_inverse,
    gf_matmul,
    gf_matrix_inverse,
    gf_mul,
    gf_mul_bytes,
    gf_pow,
    vandermonde_matrix,
)
from repro.exceptions import DecodingError

elements = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


class TestFieldAxioms:
    @given(elements, elements)
    def test_addition_is_xor_and_commutative(self, a, b):
        assert gf_add(a, b) == (a ^ b)
        assert gf_add(a, b) == gf_add(b, a)

    @given(elements, elements)
    def test_multiplication_commutative(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)

    @given(elements, elements, elements)
    def test_multiplication_associative(self, a, b, c):
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    @given(elements, elements, elements)
    def test_distributivity(self, a, b, c):
        assert gf_mul(a, gf_add(b, c)) == gf_add(gf_mul(a, b), gf_mul(a, c))

    @given(elements)
    def test_multiplicative_identity_and_zero(self, a):
        assert gf_mul(a, 1) == a
        assert gf_mul(a, 0) == 0

    @given(nonzero)
    def test_inverse(self, a):
        assert gf_mul(a, gf_inverse(a)) == 1

    @given(elements, nonzero)
    def test_division_inverts_multiplication(self, a, b):
        assert gf_mul(gf_div(a, b), b) == a

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            gf_div(3, 0)
        with pytest.raises(ZeroDivisionError):
            gf_inverse(0)

    @given(nonzero, st.integers(min_value=0, max_value=10))
    def test_power_matches_repeated_multiplication(self, a, exponent):
        expected = 1
        for _ in range(exponent):
            expected = gf_mul(expected, a)
        assert gf_pow(a, exponent) == expected

    def test_tables_are_consistent(self):
        for value in range(1, 256):
            assert EXP_TABLE[LOG_TABLE[value]] == value


class TestVectorKernels:
    @given(elements, st.binary(min_size=1, max_size=64))
    def test_gf_mul_bytes_matches_scalar(self, scalar, data):
        payload = np.frombuffer(data, dtype=np.uint8)
        vectorised = gf_mul_bytes(scalar, payload)
        for index, byte in enumerate(payload):
            assert vectorised[index] == gf_mul(scalar, int(byte))

    def test_gf_dot_bytes(self):
        payloads = [np.array([1, 2], dtype=np.uint8), np.array([3, 4], dtype=np.uint8)]
        result = gf_dot_bytes([1, 1], payloads, 2)
        assert result.tolist() == [1 ^ 3, 2 ^ 4]


class TestMatrices:
    @given(st.integers(min_value=1, max_value=6))
    def test_matrix_inverse(self, size):
        matrix = vandermonde_matrix(size, size)
        inverse = gf_matrix_inverse(matrix)
        identity = gf_matmul(matrix, inverse)
        assert np.array_equal(identity, np.eye(size, dtype=np.uint8))

    def test_singular_matrix_detected(self):
        singular = np.array([[1, 2], [1, 2]], dtype=np.uint8)
        with pytest.raises(DecodingError):
            gf_matrix_inverse(singular)

    def test_vandermonde_rows_limit(self):
        with pytest.raises(DecodingError):
            vandermonde_matrix(300, 4)

    def test_matmul_shape_check(self):
        with pytest.raises(DecodingError):
            gf_matmul(np.zeros((2, 3), dtype=np.uint8), np.zeros((2, 3), dtype=np.uint8))
