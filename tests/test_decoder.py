"""Tests for the decoder: single-block repair, recursion and repair rounds."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.blocks import DataId, ParityId
from repro.core.decoder import Decoder, IterativeRepairer
from repro.core.encoder import Entangler
from repro.core.parameters import AEParameters, StrandClass
from repro.core.xor import payloads_equal
from repro.exceptions import RepairFailedError

from tests.conftest import make_payload

BLOCK_SIZE = 32


def build_store(params: AEParameters, count: int):
    """Encode ``count`` blocks and return (encoder, payload map)."""
    encoder = Entangler(params, block_size=BLOCK_SIZE)
    store = {}
    for index in range(1, count + 1):
        encoded = encoder.entangle(make_payload(index, BLOCK_SIZE))
        for block in encoded.all_blocks():
            store[block.block_id] = block.payload
    return encoder, store


class TestSingleRepairs:
    def test_repair_data_block_via_any_strand(self, any_params):
        encoder, store = build_store(any_params, 60)
        decoder = Decoder(encoder.lattice, store.get, BLOCK_SIZE)
        original = store[DataId(30)]
        del store[DataId(30)]
        assert payloads_equal(decoder.repair(DataId(30)), original)

    def test_repair_parity_block_both_directions(self, hec_params):
        encoder, store = build_store(hec_params, 60)
        decoder = Decoder(encoder.lattice, store.get, BLOCK_SIZE)
        for parity_id in [ParityId(30, StrandClass.HORIZONTAL), ParityId(30, StrandClass.LEFT_HANDED)]:
            original = store[parity_id]
            del store[parity_id]
            assert payloads_equal(decoder.repair(parity_id), original)
            store[parity_id] = original

    def test_get_fetches_before_repairing(self, hec_params):
        encoder, store = build_store(hec_params, 10)
        calls = []

        def source(block_id):
            calls.append(block_id)
            return store.get(block_id)

        decoder = Decoder(encoder.lattice, source, BLOCK_SIZE)
        payload = decoder.get(DataId(5))
        assert payloads_equal(payload, store[DataId(5)])
        assert calls == [DataId(5)]

    def test_single_failure_costs_two_blocks(self, hec_params):
        """Any single failure is repaired by XORing exactly two blocks."""
        encoder, store = build_store(hec_params, 60)
        reads = []

        def source(block_id):
            payload = store.get(block_id)
            if payload is not None:
                reads.append(block_id)
            return payload

        original = store.pop(DataId(30))
        decoder = Decoder(encoder.lattice, source, BLOCK_SIZE, max_depth=0)
        assert payloads_equal(decoder.repair(DataId(30)), original)
        assert len(reads) == 2

    def test_unrepairable_when_everything_is_gone(self, hec_params):
        encoder, store = build_store(hec_params, 30)
        decoder = Decoder(encoder.lattice, lambda block_id: None, BLOCK_SIZE, max_depth=2)
        with pytest.raises(RepairFailedError):
            decoder.repair(DataId(15))

    def test_recovery_paths_enumerates_alpha_options(self, hec_params):
        encoder, _ = build_store(hec_params, 30)
        decoder = Decoder(encoder.lattice, lambda block_id: None, BLOCK_SIZE)
        paths = decoder.recovery_paths(20)
        assert len(paths) == hec_params.alpha
        assert all(len(path) == 2 for path in paths)


class TestRecursiveRepair:
    def test_repair_through_missing_parity(self, hec_params):
        """When both adjacent parities of one strand are gone, the decoder
        recurses: it rebuilds the parity from its dp-tuple first (Fig. 2)."""
        encoder, store = build_store(hec_params, 80)
        target = DataId(40)
        original = store.pop(target)
        # Remove one parity of every strand except the horizontal output,
        # forcing at least one recursive step.
        removed = [
            ParityId(40, StrandClass.RIGHT_HANDED),
            ParityId(40, StrandClass.LEFT_HANDED),
            encoder.lattice.input_parity(40, StrandClass.HORIZONTAL),
        ]
        for parity in removed:
            store.pop(parity, None)
        decoder = Decoder(encoder.lattice, store.get, BLOCK_SIZE, max_depth=3)
        assert payloads_equal(decoder.repair(target), original)

    def test_depth_zero_cannot_recurse(self, hec_params):
        encoder, store = build_store(hec_params, 80)
        target = DataId(40)
        original = store.pop(target)
        for strand_class in hec_params.strand_classes:
            store.pop(encoder.lattice.input_parity(40, strand_class), None)
        shallow = Decoder(encoder.lattice, store.get, BLOCK_SIZE, max_depth=0)
        with pytest.raises(RepairFailedError):
            shallow.repair(target)
        deep = Decoder(encoder.lattice, store.get, BLOCK_SIZE, max_depth=4)
        assert payloads_equal(deep.repair(target), original)


class TestIterativeRepair:
    @given(
        st.sampled_from([(1, 1, 0), (2, 2, 5), (3, 2, 5)]),
        st.sets(st.integers(min_value=1, max_value=50), min_size=1, max_size=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_scattered_data_failures_always_recover(self, spec, victims):
        """Isolated data-block failures are always repaired in one round."""
        params = AEParameters(*spec)
        encoder, store = build_store(params, 60)
        originals = {}
        for index in victims:
            originals[DataId(index)] = store.pop(DataId(index))
        repairer = IterativeRepairer(encoder.lattice, BLOCK_SIZE)
        report, repaired_store = repairer.repair_all(store, list(originals))
        assert not report.unrecovered
        for block_id, payload in originals.items():
            assert payloads_equal(repaired_store[block_id], payload)

    def test_mixed_failures_need_multiple_rounds(self, hec_params):
        encoder, store = build_store(hec_params, 100)
        missing = []
        originals = {}
        # Remove a contiguous region: data and all their parities.
        for index in range(40, 44):
            for block_id in [DataId(index)] + encoder.lattice.output_parities(index):
                originals[block_id] = store.pop(block_id)
                missing.append(block_id)
        repairer = IterativeRepairer(encoder.lattice, BLOCK_SIZE)
        report, repaired_store = repairer.repair_all(store, missing)
        assert not report.unrecovered
        assert report.round_count >= 1
        for block_id, payload in originals.items():
            assert payloads_equal(repaired_store[block_id], payload)

    def test_minimal_maintenance_skips_parities(self, hec_params):
        encoder, store = build_store(hec_params, 60)
        data_victim = DataId(30)
        parity_victim = ParityId(20, StrandClass.HORIZONTAL)
        original = store.pop(data_victim)
        store.pop(parity_victim)
        repairer = IterativeRepairer(encoder.lattice, BLOCK_SIZE, repair_parities=False)
        report, repaired_store = repairer.repair_all(store, [data_victim, parity_victim])
        assert payloads_equal(repaired_store[data_victim], original)
        assert parity_victim not in repaired_store
        assert parity_victim in report.unrecovered

    def test_report_summary_counts(self, hec_params):
        encoder, store = build_store(hec_params, 30)
        victim = DataId(10)
        store.pop(victim)
        repairer = IterativeRepairer(encoder.lattice, BLOCK_SIZE)
        report, _ = repairer.repair_all(store, [victim])
        assert report.repaired_count == 1
        assert report.repaired_in_first_round == 1
        assert "1 blocks" in report.summary() or "repaired 1" in report.summary()
