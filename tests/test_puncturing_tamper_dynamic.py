"""Tests for the code extensions: puncturing, anti-tampering and dynamic upgrades."""

from __future__ import annotations

import pytest

from repro.core.blocks import DataId, ParityId
from repro.core.decoder import Decoder
from repro.core.dynamic import EpochHistory, plan_alpha_upgrade, upgrade_alpha
from repro.core.encoder import Entangler
from repro.core.lattice import HelicalLattice
from repro.core.parameters import AEParameters, StrandClass
from repro.core.puncturing import (
    no_puncturing,
    parity_survivors,
    puncture_periodic,
    puncture_rate,
    puncture_strand_class,
)
from repro.core.tamper import average_tamper_cost, detection_probability, tamper_cost, tampered_parities
from repro.core.xor import payloads_equal
from repro.exceptions import InvalidParametersError, UnknownBlockError

from tests.conftest import make_payload

BLOCK_SIZE = 32


class TestPuncturing:
    def test_no_puncturing_keeps_everything(self):
        code = no_puncturing(AEParameters.triple(2, 5))
        assert code.effective_overhead() == pytest.approx(3.0)
        assert not code.is_punctured(ParityId(1, StrandClass.HORIZONTAL))

    def test_strand_class_puncturing_reduces_overhead_by_one(self):
        params = AEParameters.triple(2, 5)
        code = puncture_strand_class(params, StrandClass.HORIZONTAL)
        assert code.effective_overhead() == pytest.approx(2.0)
        assert code.is_punctured(ParityId(7, StrandClass.HORIZONTAL))
        assert not code.is_punctured(ParityId(7, StrandClass.RIGHT_HANDED))
        with pytest.raises(InvalidParametersError):
            puncture_strand_class(AEParameters.single(), StrandClass.RIGHT_HANDED)

    def test_periodic_puncturing_rate(self):
        code = puncture_periodic(AEParameters.double(2, 5), period=4)
        overhead = code.effective_overhead(sample_size=4000)
        assert overhead == pytest.approx(2.0 * 0.75, rel=0.01)
        with pytest.raises(InvalidParametersError):
            puncture_periodic(AEParameters.double(2, 5), period=1)

    def test_rate_puncturing_approximates_target(self):
        code = puncture_rate(AEParameters.triple(2, 5), keep_fraction=0.8)
        overhead = code.effective_overhead(sample_size=5000)
        assert overhead == pytest.approx(3.0 * 0.8, rel=0.1)
        with pytest.raises(InvalidParametersError):
            puncture_rate(AEParameters.triple(2, 5), keep_fraction=0.0)

    def test_punctured_lattice_still_decodes_data(self):
        """Dropping one strand class still leaves alpha-1 recovery paths."""
        params = AEParameters.triple(2, 5)
        code = puncture_strand_class(params, StrandClass.HORIZONTAL)
        encoder = Entangler(params, block_size=BLOCK_SIZE)
        store = {}
        for index in range(1, 41):
            encoded = encoder.entangle(make_payload(index, BLOCK_SIZE))
            store[encoded.data_id] = encoded.data.payload
            for parity in encoded.parities:
                if not code.is_punctured(parity.block_id):
                    store[parity.block_id] = parity.payload
        original = store.pop(DataId(20))
        decoder = Decoder(encoder.lattice, store.get, BLOCK_SIZE)
        assert payloads_equal(decoder.repair(DataId(20)), original)

    def test_parity_survivors_helper(self):
        params = AEParameters.triple(2, 5)
        code = puncture_strand_class(params, StrandClass.LEFT_HANDED)
        survivors = parity_survivors(code, [1, 2, 3])
        assert len(survivors) == 6  # 2 of 3 classes survive for 3 nodes

    def test_effective_overhead_matches_exact_enumeration(self):
        """The estimate is an exact count over the sampled prefix, not a guess."""
        params = AEParameters.triple(2, 5)
        code = puncture_rate(params, keep_fraction=0.75)
        sample = 600
        dropped = sum(
            1
            for index in range(1, sample + 1)
            for strand_class in params.strand_classes
            if code.is_punctured(ParityId(index, strand_class))
        )
        total = sample * len(params.strand_classes)
        exact = params.alpha * (1.0 - dropped / total)
        assert code.effective_overhead(sample_size=sample) == pytest.approx(exact, abs=1e-12)

    def test_effective_overhead_on_empty_sample_is_alpha(self):
        code = no_puncturing(AEParameters.triple(2, 5))
        assert code.effective_overhead(sample_size=0) == pytest.approx(3.0)

    def test_rate_puncturing_is_monotone_in_keep_fraction(self):
        """Tightening the keep fraction only ever punctures *more* parities.

        The repuncture deletion pass of the transition engine relies on
        this: the target policy's punctured set covers every source set
        with a higher keep fraction, so one pass deletes everything.
        """
        params = AEParameters.triple(2, 5)
        loose = puncture_rate(params, keep_fraction=0.75)
        tight = puncture_rate(params, keep_fraction=0.5)
        for index in range(1, 301):
            for strand_class in params.strand_classes:
                parity = ParityId(index, strand_class)
                if loose.is_punctured(parity):
                    assert tight.is_punctured(parity)


class TestAntiTampering:
    def test_tampered_parities_follow_strands_to_the_end(self):
        params = AEParameters(3, 5, 5)
        lattice = HelicalLattice(params, size=60)
        horizontal = tampered_parities(lattice, 26, StrandClass.HORIZONTAL)
        assert [parity.index for parity in horizontal] == [26, 31, 36, 41, 46, 51, 56]

    def test_tamper_cost_grows_with_alpha(self):
        """With the same lattice geometry, every extra strand class is one more
        chain of parities the attacker must rewrite."""
        lattice_double = HelicalLattice(AEParameters.double(2, 5), size=100)
        lattice_triple = HelicalLattice(AEParameters.triple(2, 5), size=100)
        assert (
            tamper_cost(lattice_triple, 50).total_parities
            > tamper_cost(lattice_double, 50).total_parities
        )
        assert len(tamper_cost(lattice_triple, 50).parities_per_strand) == 3

    def test_tamper_cost_decreases_towards_the_tail(self):
        lattice = HelicalLattice(AEParameters(3, 2, 5), size=200)
        assert (
            tamper_cost(lattice, 10).total_parities
            > tamper_cost(lattice, 190).total_parities
        )

    def test_average_cost_and_detection_probability(self):
        params = AEParameters(3, 2, 5)
        assert average_tamper_cost(params, 200) > 0
        assert detection_probability(params, 0.5) > detection_probability(
            AEParameters.single(), 0.5
        )
        assert detection_probability(params, 0.0) == 0.0

    def test_summary_mentions_block(self):
        lattice = HelicalLattice(AEParameters(3, 5, 5), size=60)
        assert "d26" in tamper_cost(lattice, 26).summary()


class TestDynamicUpgrade:
    def test_plan_counts_new_parities(self):
        plan = plan_alpha_upgrade(AEParameters.double(2, 5), 3, lattice_size=100)
        assert plan.new_classes == (StrandClass.LEFT_HANDED,)
        assert plan.new_parity_count == 100
        assert plan.additional_overhead == 1.0
        assert "upgrade" in plan.summary()

    def test_plan_rejects_downgrade(self):
        with pytest.raises(InvalidParametersError):
            plan_alpha_upgrade(AEParameters.triple(2, 5), 3, 10)

    def test_upgrade_produces_parities_identical_to_direct_encoding(self):
        """Raising alpha never rewrites stored blocks and the new parities are
        exactly what a from-scratch alpha=3 encoder would have produced."""
        data = {DataId(index): make_payload(index, BLOCK_SIZE) for index in range(1, 41)}
        old_params = AEParameters.double(2, 5)
        new_blocks = upgrade_alpha(old_params, 3, 40, lambda d: data.get(d), BLOCK_SIZE)
        direct = Entangler(AEParameters.triple(2, 5), block_size=BLOCK_SIZE)
        expected = {}
        for index in range(1, 41):
            encoded = direct.entangle(data[DataId(index)])
            for parity in encoded.parities:
                if parity.block_id.strand_class is StrandClass.LEFT_HANDED:
                    expected[parity.block_id] = parity.payload
        assert len(new_blocks) == 40
        for block in new_blocks:
            assert payloads_equal(block.payload, expected[block.block_id])

    def test_upgrade_requires_all_data(self):
        with pytest.raises(UnknownBlockError):
            upgrade_alpha(AEParameters.double(2, 5), 3, 10, lambda d: None, BLOCK_SIZE)

    def test_epoch_history(self):
        history = EpochHistory.starting_with(AEParameters.double(2, 5))
        history.change(101, AEParameters.triple(2, 5))
        assert history.params_at(50) == AEParameters.double(2, 5)
        assert history.params_at(101) == AEParameters.triple(2, 5)
        assert history.params_at(500).alpha == 3
        with pytest.raises(InvalidParametersError):
            history.change(50, AEParameters.triple(2, 5))
        assert len(list(history)) == 2

    def test_params_at_epoch_boundaries(self):
        history = EpochHistory.starting_with(AEParameters.double(2, 5))
        history.change(101, AEParameters.triple(2, 5))
        assert history.params_at(1) == AEParameters.double(2, 5)  # first covered
        assert history.params_at(100).alpha == 2  # last index of the old epoch
        assert history.params_at(101).alpha == 3  # exactly at the switch
        with pytest.raises(InvalidParametersError):
            history.params_at(0)  # below the first epoch's start

    def test_params_at_on_empty_history_raises(self):
        with pytest.raises(InvalidParametersError):
            EpochHistory([]).params_at(1)
        with pytest.raises(InvalidParametersError):
            EpochHistory().params_at(1)
