"""Property-style tests for the consistent-hash ShardRing.

The two properties that make consistent hashing the right routing layer for
the sharded namespace (docs/sharding.md):

* **balance** -- with vnode weighting every shard owns close to ``1/M`` of
  the key space, for every fleet size the federation tests use;
* **minimal movement** -- adding or removing one shard moves only the ring
  delta (about ``1/(M+1)`` of the keys on a join), and *never* reassigns a
  key between two surviving shards.

Plus the digest convention shared with :mod:`repro.system.keys` and the
membership/validation edge cases.
"""

from __future__ import annotations

import collections

import pytest

from repro.exceptions import PlacementError
from repro.system.sharding import DEFAULT_VNODES, ShardRing

KEYS = [f"doc-{index:05d}" for index in range(4000)]

FLEET_SIZES = [2, 4, 8, 16]


class TestBalance:
    @pytest.mark.parametrize("shard_count", FLEET_SIZES)
    def test_every_shard_owns_a_fair_share(self, shard_count):
        """Each shard's share of 4000 keys stays within 50% of ideal."""
        ring = ShardRing(range(shard_count))
        counts = collections.Counter(ring.shard_for(key) for key in KEYS)
        ideal = len(KEYS) / shard_count
        for shard_id in range(shard_count):
            share = counts.get(shard_id, 0) / ideal
            assert 0.5 <= share <= 1.5, (
                f"shard {shard_id} of {shard_count} owns {share:.2f}x ideal"
            )

    def test_more_vnodes_tighten_the_balance(self):
        """The vnode knob works: 64 vnodes beat 4 on worst-case share."""

        def worst_share(vnodes: int) -> float:
            ring = ShardRing(range(8), vnodes=vnodes)
            counts = collections.Counter(ring.shard_for(key) for key in KEYS)
            ideal = len(KEYS) / 8
            return max(
                abs(counts.get(shard, 0) / ideal - 1.0) for shard in range(8)
            )

        assert worst_share(DEFAULT_VNODES) < worst_share(4)

    def test_routing_is_deterministic_across_instances(self):
        one = ShardRing([0, 1, 2, 3])
        two = ShardRing([3, 2, 1, 0])  # order must not matter
        for key in KEYS[:500]:
            assert one.shard_for(key) == two.shard_for(key)


class TestMinimalMovement:
    @pytest.mark.parametrize("shard_count", FLEET_SIZES)
    def test_join_moves_only_the_ring_delta(self, shard_count):
        ring = ShardRing(range(shard_count))
        grown = ring.with_shard(shard_count)
        moved = 0
        for key in KEYS:
            before, after = ring.shard_for(key), grown.shard_for(key)
            if before != after:
                moved += 1
                # A key never migrates between two surviving shards.
                assert after == shard_count, (
                    f"{key} moved {before} -> {after} on a join of "
                    f"{shard_count}"
                )
        fraction = moved / len(KEYS)
        assert 0 < fraction <= 1.5 / (shard_count + 1)

    @pytest.mark.parametrize("shard_count", FLEET_SIZES)
    def test_leave_moves_only_the_departing_shards_keys(self, shard_count):
        ring = ShardRing(range(shard_count + 1))
        victim = shard_count // 2
        shrunk = ring.without_shard(victim)
        for key in KEYS:
            before, after = ring.shard_for(key), shrunk.shard_for(key)
            if before == victim:
                assert after != victim
            else:
                # Keys of surviving shards are untouched.
                assert after == before

    def test_join_then_leave_round_trips(self):
        ring = ShardRing([0, 1, 2])
        assert ring.with_shard(3).without_shard(3).assignment(KEYS[:200]) == (
            ring.assignment(KEYS[:200])
        )


class TestDigestConvention:
    def test_digest_index_is_the_keys_convention(self):
        """location_for_key is a thin shim over ShardRing.digest_index."""
        from repro.core.blocks import DataId
        from repro.system.keys import derive_key, location_for_key

        for index in range(1, 100):
            key = derive_key("alice", DataId(index))
            assert location_for_key(key, 13) == ShardRing.digest_index(
                key.digest, 13
            )
            assert ShardRing.digest_index(key.digest, 13) == (
                int(key.digest[:12], 16) % 13
            )

    def test_digest_index_requires_positive_count(self):
        with pytest.raises(PlacementError):
            ShardRing.digest_index("ff" * 32, 0)

    def test_key_point_is_a_sha256_prefix(self):
        import hashlib

        digest = hashlib.sha256(b"doc-1").hexdigest()
        assert ShardRing.key_point("doc-1") == int(digest[:16], 16)


class TestMembershipAndValidation:
    def test_introspection(self):
        ring = ShardRing([4, 1, 2], vnodes=8)
        assert ring.shard_ids == (1, 2, 4)
        assert ring.shard_count == 3
        assert ring.vnodes == 8
        assert 2 in ring and 3 not in ring

    def test_rejects_bad_construction(self):
        with pytest.raises(PlacementError):
            ShardRing([])
        with pytest.raises(PlacementError):
            ShardRing([0, 0, 1])
        with pytest.raises(PlacementError):
            ShardRing([-1, 0])
        with pytest.raises(PlacementError):
            ShardRing([0], vnodes=0)

    def test_rejects_bad_membership_changes(self):
        ring = ShardRing([0, 1])
        with pytest.raises(PlacementError):
            ring.with_shard(1)
        with pytest.raises(PlacementError):
            ring.without_shard(7)
        with pytest.raises(PlacementError):
            ShardRing([0]).without_shard(0)

    def test_membership_changes_do_not_mutate(self):
        ring = ShardRing([0, 1])
        ring.with_shard(2)
        ring.without_shard(1)
        assert ring.shard_ids == (0, 1)
