"""Close/reopen round trips of a durable StorageService (disk and segment).

These are the acceptance tests of the persistence layer: a service configured
with ``backend="disk"`` or ``"segment"`` is closed and reconstructed on the
same root path, then must serve byte-exact ``get`` / ``get_stream``, run
``repair`` on the pre-existing data, and keep accepting writes (for AE this
exercises the paper's broker crash recovery: strand heads are refetched from
storage, Sec. IV-A).
"""

from __future__ import annotations

import json
import os
import random
import shutil

import pytest

from repro.exceptions import InvalidParametersError
from repro.system.service import StorageConfig, StorageService

BACKENDS = ["disk", "segment"]
#: One scheme per family: the streaming AE lattice and an erasable stripe code.
SCHEMES = ["ae-3-2-5", "rs-10-4"]


def config(scheme, backend, root, **overrides):
    base = dict(
        scheme=scheme,
        location_count=20,
        block_size=512,
        backend=backend,
        data_dir=str(root),
    )
    base.update(overrides)
    return StorageConfig(**base)


def workload(seed=11, size=40_000) -> bytes:
    return random.Random(seed).randbytes(size)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("scheme", SCHEMES)
class TestServiceReopen:
    def test_byte_exact_get_and_stream_after_reopen(self, scheme, backend, tmp_path):
        payload = workload()
        service = StorageService.open(config(scheme, backend, tmp_path))
        service.put("doc", payload)
        service.put_stream("streamed", [payload[:999], payload[999:]])
        service.close()

        reopened = StorageService.open(config(scheme, backend, tmp_path))
        assert set(reopened.documents) == {"doc", "streamed"}
        assert reopened.get("doc") == payload
        assert b"".join(reopened.get_stream("streamed")) == payload
        reopened.close()

    def test_repair_preexisting_data_after_reopen(self, scheme, backend, tmp_path):
        payload = workload()
        service = StorageService.open(config(scheme, backend, tmp_path))
        service.put("doc", payload)
        service.close()

        reopened = StorageService.open(config(scheme, backend, tmp_path))
        reopened.fail_locations([0, 1])
        report = reopened.repair()
        assert report.data_loss == 0
        assert reopened.get("doc") == payload
        # Repaired blocks were rewritten to healthy locations: the document
        # still reads byte-exact after yet another close/reopen cycle.
        reopened.close()
        third = StorageService.open(config(scheme, backend, tmp_path))
        assert third.get("doc") == payload
        third.close()

    def test_writes_continue_after_reopen(self, scheme, backend, tmp_path):
        first = workload(seed=1)
        second = workload(seed=2, size=10_000)
        service = StorageService.open(config(scheme, backend, tmp_path))
        service.put("first", first)
        service.close()

        reopened = StorageService.open(config(scheme, backend, tmp_path))
        reopened.put("second", second)
        assert reopened.get("first") == first
        assert reopened.get("second") == second
        reopened.close()

        third = StorageService.open(config(scheme, backend, tmp_path))
        assert third.get("first") == first
        assert third.get("second") == second
        third.close()

    def test_close_is_idempotent_and_context_manager_closes(
        self, scheme, backend, tmp_path
    ):
        payload = workload(size=5_000)
        with StorageService.open(config(scheme, backend, tmp_path)) as service:
            service.put("doc", payload)
        service.close()  # second close is a no-op
        with StorageService.open(config(scheme, backend, tmp_path)) as reopened:
            assert reopened.get("doc") == payload


@pytest.mark.parametrize("backend", BACKENDS)
class TestManifest:
    def test_put_is_durable_before_close(self, backend, tmp_path):
        # No close()/flush() yet: the mutation must already be committed to
        # the WAL, so a copy of the directory (= a crash image) reopens with
        # the document catalogued and byte-exact.
        payload = workload(size=4_000)
        service = StorageService.open(config("rs-10-4", backend, tmp_path))
        service.put("doc", payload)
        crash_dir = tmp_path.parent / f"{tmp_path.name}-crash-image"
        shutil.copytree(tmp_path, crash_dir)
        service.close()
        reopened = StorageService.open(config("rs-10-4", backend, crash_dir))
        assert reopened.get("doc") == payload
        reopened.close()

    def test_flush_collapses_wal_into_manifest(self, backend, tmp_path):
        # After flush() the manifest alone describes the catalogue (the WAL
        # is empty), so external tooling may read it directly.
        service = StorageService.open(config("rs-10-4", backend, tmp_path))
        service.put("doc", workload(size=4_000))
        service.flush()
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["scheme"] == "rs-10-4"
        assert "doc" in manifest["documents"]
        assert (tmp_path / "wal.log").stat().st_size == 0
        service.close()

    def test_delete_updates_manifest(self, backend, tmp_path):
        service = StorageService.open(config("rs-10-4", backend, tmp_path))
        service.put("doc", workload(size=4_000))
        service.delete("doc")
        service.close()
        reopened = StorageService.open(config("rs-10-4", backend, tmp_path))
        assert reopened.documents == {}
        reopened.close()

    def test_delete_uncatalogues_before_reclaiming(self, backend, tmp_path, monkeypatch):
        # A crash mid-delete must leave orphan blocks, never a catalogued
        # document whose payloads are gone.
        service = StorageService.open(config("rs-10-4", backend, tmp_path))
        service.put("doc", workload(size=8_000))
        monkeypatch.setattr(
            service._cluster,
            "delete_block",
            lambda block_id: (_ for _ in ()).throw(RuntimeError),
        )
        with pytest.raises(RuntimeError):
            service.delete("doc")
        service.flush()
        reopened = StorageService.open(config("rs-10-4", backend, tmp_path))
        assert reopened.documents == {}  # catalogue already committed
        reopened.close()

    def test_delete_while_location_down_does_not_resurrect_blocks(
        self, backend, tmp_path
    ):
        service = StorageService.open(config("rs-10-4", backend, tmp_path))
        service.put("doc", workload(size=8_000))
        service.fail_locations([0, 1])
        service.delete("doc")
        service.close()
        reopened = StorageService.open(config("rs-10-4", backend, tmp_path))
        status = reopened.status()
        assert status.documents == 0
        assert status.blocks == 0
        assert status.bytes_stored == 0
        reopened.close()

    def test_corrupt_manifest_is_rejected_with_clear_error(self, backend, tmp_path):
        service = StorageService.open(config("rs-10-4", backend, tmp_path))
        service.put("doc", workload(size=4_000))
        service.close()
        (tmp_path / "manifest.json").write_text("{ torn")
        with pytest.raises(InvalidParametersError, match="corrupt service manifest"):
            StorageService.open(config("rs-10-4", backend, tmp_path))

    def test_scheme_mismatch_is_rejected(self, backend, tmp_path):
        service = StorageService.open(config("rs-10-4", backend, tmp_path))
        service.put("doc", workload(size=4_000))
        service.close()
        with pytest.raises(InvalidParametersError):
            StorageService.open(config("rep-3", backend, tmp_path))

    def test_backend_mismatch_is_rejected(self, backend, tmp_path):
        service = StorageService.open(config("rs-10-4", backend, tmp_path))
        service.put("doc", workload(size=4_000))
        service.close()
        other = "disk" if backend == "segment" else "segment"
        with pytest.raises(InvalidParametersError, match="backend"):
            StorageService.open(config("rs-10-4", other, tmp_path))

    def test_new_version_is_catalogued_before_old_blocks_are_reclaimed(
        self, backend, tmp_path, monkeypatch
    ):
        v1, v2 = workload(seed=1, size=8_000), workload(seed=2, size=8_000)
        service = StorageService.open(config("rs-10-4", backend, tmp_path))
        service.put("doc", v1)
        # Simulate a crash between the manifest sync and the reclaim of the
        # old version's blocks: the committed catalogue must already name v2.
        monkeypatch.setattr(
            service, "_reclaim", lambda previous: (_ for _ in ()).throw(RuntimeError)
        )
        with pytest.raises(RuntimeError):
            service.put("doc", v2)
        service.flush()
        reopened = StorageService.open(config("rs-10-4", backend, tmp_path))
        assert reopened.get("doc") == v2
        reopened.close()

    def test_block_size_mismatch_is_rejected(self, backend, tmp_path):
        service = StorageService.open(config("rs-10-4", backend, tmp_path))
        service.close()
        with pytest.raises(InvalidParametersError):
            StorageService.open(config("rs-10-4", backend, tmp_path, block_size=1024))

    def test_custom_placement_must_be_supplied_on_reopen(self, backend, tmp_path):
        from repro.storage.placement import RandomPlacement

        payload = workload(size=6_000)
        placement = RandomPlacement(20, seed=99)
        service = StorageService.open(
            config("rs-10-4", backend, tmp_path, placement=placement)
        )
        service.put("doc", payload)
        service.close()
        with pytest.raises(InvalidParametersError, match="custom placement"):
            StorageService.open(config("rs-10-4", backend, tmp_path))
        reopened = StorageService.open(
            config("rs-10-4", backend, tmp_path, placement=RandomPlacement(20, seed=99))
        )
        assert reopened.get("doc") == payload
        reopened.close()

    def test_seed_survives_reopen(self, backend, tmp_path):
        service = StorageService.open(config("rs-10-4", backend, tmp_path, seed=42))
        service.put("doc", workload(size=4_000))
        service.close()
        reopened = StorageService.open(config("rs-10-4", backend, tmp_path))
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["seed"] == 42
        reopened.close()

    def test_location_count_comes_from_manifest(self, backend, tmp_path):
        payload = workload(size=6_000)
        service = StorageService.open(
            config("rs-10-4", backend, tmp_path, location_count=14)
        )
        service.put("doc", payload)
        service.close()
        # A reopen without an explicit location_count follows the manifest
        # instead of spreading blocks over phantom locations ...
        reopened = StorageService.open(
            config("rs-10-4", backend, tmp_path, location_count=None)
        )
        assert reopened.cluster.location_count == 14
        assert reopened.get("doc") == payload
        reopened.close()
        # ... while an explicitly contradicting one is rejected.
        with pytest.raises(InvalidParametersError, match="14 locations"):
            StorageService.open(config("rs-10-4", backend, tmp_path, location_count=100))

    def test_manifest_stores_id_runs_not_per_block_strings(self, backend, tmp_path):
        service = StorageService.open(config("rs-10-4", backend, tmp_path))
        service.put("doc", workload(size=40_000))  # ~79 data blocks
        document = service.documents["doc"]
        service.flush()  # checkpoint the WAL so the manifest holds the doc
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        entries = manifest["documents"]["doc"]["data_ids"]
        # Run-length encoding keeps the catalogue O(stripes), not O(blocks).
        assert len(entries) < document.block_count / 5
        service.close()
        reopened = StorageService.open(config("rs-10-4", backend, tmp_path))
        assert reopened.documents["doc"].data_ids == document.data_ids
        reopened.close()


def test_volatile_backend_with_data_dir_is_rejected(tmp_path):
    # A memory backend cannot honour a manifest on reopen; combining it
    # with data_dir must fail loudly instead of writing one.
    with pytest.raises(InvalidParametersError, match="persistent backend"):
        StorageService.open(config("rs-10-4", "memory", tmp_path))
    assert not (tmp_path / "manifest.json").exists()


@pytest.mark.parametrize("backend", BACKENDS)
def test_repair_does_not_leak_stale_copies(backend, tmp_path):
    """Repair + restore must reclaim the failed location's stale copies."""
    payload = workload()
    service = StorageService.open(config("rs-10-4", backend, tmp_path))
    service.put("doc", payload)
    blocks = service.status().blocks
    bytes_before = service.status().bytes_stored
    service.fail_locations([0, 1])
    service.repair()
    service.restore_locations()
    assert service.get("doc") == payload
    # Directory entries and physical copies agree again.
    physical = sum(
        len(list(store.block_ids())) for store in service.cluster.locations()
    )
    assert physical == blocks
    assert service.status().bytes_stored == bytes_before
    service.close()
    # And the reconciled state survives a reopen.
    reopened = StorageService.open(config("rs-10-4", backend, tmp_path))
    physical = sum(
        len(list(store.block_ids())) for store in reopened.cluster.locations()
    )
    assert physical == blocks
    assert reopened.status().bytes_stored == bytes_before
    assert reopened.get("doc") == payload
    reopened.close()


@pytest.mark.parametrize("backend", BACKENDS)
def test_scheme_instance_config_reopens_its_own_data_dir(backend, tmp_path):
    import repro.schemes as schemes

    payload = workload(size=6_000)
    # The config carries a scheme *instance* with a non-default block size;
    # the manifest must validate against the scheme, not config.block_size.
    first = StorageService.open(
        StorageConfig(
            scheme=schemes.get("rs-10-4", block_size=512),
            location_count=20, backend=backend, data_dir=str(tmp_path),
        )
    )
    first.put("doc", payload)
    first.close()
    reopened = StorageService.open(
        StorageConfig(
            scheme=schemes.get("rs-10-4", block_size=512),
            location_count=20, backend=backend, data_dir=str(tmp_path),
        )
    )
    assert reopened.get("doc") == payload
    reopened.close()


def test_use_after_close_fails_fast(tmp_path):
    service = StorageService.open(config("rs-10-4", "segment", tmp_path))
    service.put("doc", workload(size=4_000))
    service.close()
    with pytest.raises(InvalidParametersError, match="closed"):
        service.put("again", b"x")
    with pytest.raises(InvalidParametersError, match="closed"):
        service.get("doc")
    with pytest.raises(InvalidParametersError, match="closed"):
        service.delete("doc")
    with pytest.raises(InvalidParametersError, match="closed"):
        service.repair()


class TestStatusCounters:
    def test_cache_counters_reach_service_status(self, tmp_path):
        service = StorageService.open(config("rs-10-4", "disk", tmp_path))
        payload = workload(size=8_000)
        service.put("doc", payload)
        assert service.get("doc") == payload
        assert service.get("doc") == payload
        status = service.status()
        assert status.cache_misses > 0
        assert status.cache_hits > 0
        service.close()


class TestCliPersistence:
    def test_ingest_then_reopen(self, tmp_path):
        from repro.cli import ingest_main

        sample = tmp_path / "sample.bin"
        sample.write_bytes(workload(size=30_000))
        data_dir = tmp_path / "store"
        rc = ingest_main(
            [
                str(sample),
                "--scheme",
                "rs-10-4",
                "--backend",
                "segment",
                "--data-dir",
                str(data_dir),
                "--block-size",
                "512",
                "--verify",
            ]
        )
        assert rc == 0
        reopened = StorageService.open(
            StorageConfig(
                scheme="rs-10-4", block_size=512, backend="segment",
                data_dir=str(data_dir),
            )
        )
        assert reopened.get("ingest") == sample.read_bytes()
        reopened.close()

    def test_persistent_backend_requires_data_dir(self, capsys):
        from repro.cli import ingest_main

        with pytest.raises(SystemExit):
            ingest_main(["missing.bin", "--backend", "disk"])
