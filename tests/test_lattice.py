"""Tests for the helical lattice adjacency oracle."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.blocks import DataId, ParityId
from repro.core.lattice import HelicalLattice
from repro.core.parameters import AEParameters, StrandClass
from repro.exceptions import LatticeBoundsError


class TestBasics:
    def test_growth_and_counts(self, hec_params):
        lattice = HelicalLattice(hec_params)
        assert lattice.size == 0
        new_ids = lattice.grow(10)
        assert [d.index for d in new_ids] == list(range(1, 11))
        assert lattice.size == 10
        assert lattice.parity_count == 30
        assert lattice.total_blocks == 40
        assert lattice.columns == 5

    def test_membership(self, hec_params):
        lattice = HelicalLattice(hec_params, size=5)
        assert lattice.has_block(DataId(5))
        assert not lattice.has_block(DataId(6))
        assert lattice.has_block(ParityId(5, StrandClass.LEFT_HANDED))
        assert not lattice.has_block(ParityId(6, StrandClass.HORIZONTAL))

    def test_enumeration(self, hec_params):
        lattice = HelicalLattice(hec_params, size=4)
        assert len(list(lattice.data_ids())) == 4
        assert len(list(lattice.parity_ids())) == 12
        assert len(list(lattice.block_ids())) == 16

    def test_invalid_operations(self, hec_params):
        with pytest.raises(LatticeBoundsError):
            HelicalLattice(hec_params, size=-1)
        lattice = HelicalLattice(hec_params, size=3)
        with pytest.raises(LatticeBoundsError):
            lattice.grow(-1)
        with pytest.raises(LatticeBoundsError):
            lattice.data_repair_options(4)

    def test_describe_mentions_setting(self, hec_params):
        lattice = HelicalLattice(hec_params, size=16)
        assert "AE(3,2,5)" in lattice.describe()


class TestEdges:
    def test_edge_endpoints_follow_table_two(self, paper_example_params):
        lattice = HelicalLattice(paper_example_params, size=60)
        assert lattice.edge_endpoints(ParityId(26, StrandClass.HORIZONTAL)) == (26, 31)
        assert lattice.edge_endpoints(ParityId(26, StrandClass.RIGHT_HANDED)) == (26, 32)
        assert lattice.edge_endpoints(ParityId(26, StrandClass.LEFT_HANDED)) == (26, 35)
        assert lattice.parity_label(ParityId(26, StrandClass.LEFT_HANDED)) == "p26,35"

    def test_input_parities_of_d26(self, paper_example_params):
        lattice = HelicalLattice(paper_example_params, size=60)
        inputs = lattice.input_parities(26)
        assert inputs == [
            ParityId(21, StrandClass.HORIZONTAL),
            ParityId(25, StrandClass.RIGHT_HANDED),
            ParityId(22, StrandClass.LEFT_HANDED),
        ]

    def test_strand_starts_have_virtual_inputs(self, paper_example_params):
        lattice = HelicalLattice(paper_example_params, size=60)
        assert lattice.input_parity(1, StrandClass.HORIZONTAL) is None
        assert lattice.input_parity(3, StrandClass.RIGHT_HANDED) is None

    def test_one_hop_neighbours_of_d26(self, paper_example_params):
        """The coloured nodes of Fig. 4: the one-hop neighbourhood of d26."""
        lattice = HelicalLattice(paper_example_params, size=60)
        neighbours = lattice.one_hop_neighbours(26)
        assert set(neighbours) == {21, 22, 25, 31, 32, 35}

    def test_output_parities_count(self, any_params):
        lattice = HelicalLattice(any_params, size=30)
        assert len(lattice.output_parities(10)) == any_params.alpha


class TestRepairOptions:
    def test_data_repair_options_have_alpha_entries(self, any_params):
        lattice = HelicalLattice(any_params, size=200)
        options = lattice.data_repair_options(100)
        assert len(options) == any_params.alpha
        for option in options:
            assert option.output_parity.index == 100
            # In the interior the input parity exists.
            assert option.input_parity is not None

    def test_parity_repair_options_interior_has_two(self, hec_params):
        lattice = HelicalLattice(hec_params, size=200)
        options = lattice.parity_repair_options(ParityId(50, StrandClass.HORIZONTAL))
        assert len(options) == 2
        assert options[0].data == DataId(50)
        assert options[1].data == DataId(52)  # j = i + s with s = 2

    def test_parity_repair_options_at_tail_has_one(self, hec_params):
        lattice = HelicalLattice(hec_params, size=52)
        options = lattice.parity_repair_options(ParityId(52, StrandClass.HORIZONTAL))
        assert len(options) == 1  # successor d54 is not encoded yet

    def test_parity_repair_option_rejects_unknown_edge(self, hec_params):
        lattice = HelicalLattice(hec_params, size=10)
        with pytest.raises(LatticeBoundsError):
            lattice.parity_repair_options(ParityId(11, StrandClass.HORIZONTAL))

    @given(
        st.sampled_from([(3, 2, 5), (3, 5, 5), (2, 2, 4), (1, 1, 0), (3, 1, 4)]),
        st.integers(min_value=1, max_value=150),
    )
    @settings(max_examples=100, deadline=None)
    def test_repair_dependencies_reference_existing_blocks(self, spec, index):
        params = AEParameters(*spec)
        lattice = HelicalLattice(params, size=300)
        for option in lattice.data_repair_options(index):
            for parity in option.required_blocks():
                assert lattice.has_block(parity)
        for parity in lattice.output_parities(index):
            for option in lattice.parity_repair_options(parity):
                for block in option.required_blocks():
                    assert lattice.has_block(block)
