"""Tests for the entanglement rules (Tables I and II of the paper)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.parameters import AEParameters, NodeCategory, StrandClass
from repro.core.position import node_category
from repro.core.rules import edge_endpoints, input_index, output_index, rule_table
from repro.exceptions import InvalidParametersError


class TestPaperWorkedExample:
    """AE(3,5,5), node d26 (a top node): the example printed under Tables I/II."""

    params = AEParameters(3, 5, 5)

    def test_d26_is_top(self):
        assert node_category(26, 5) is NodeCategory.TOP

    def test_inputs_of_d26(self):
        assert input_index(26, StrandClass.HORIZONTAL, self.params) == 21
        assert input_index(26, StrandClass.RIGHT_HANDED, self.params) == 25
        assert input_index(26, StrandClass.LEFT_HANDED, self.params) == 22

    def test_outputs_of_d26(self):
        assert output_index(26, StrandClass.HORIZONTAL, self.params) == 31
        assert output_index(26, StrandClass.RIGHT_HANDED, self.params) == 32
        assert output_index(26, StrandClass.LEFT_HANDED, self.params) == 35

    def test_edge_endpoints_match_figure4(self):
        assert edge_endpoints(26, StrandClass.HORIZONTAL, self.params) == (26, 31)
        assert edge_endpoints(26, StrandClass.RIGHT_HANDED, self.params) == (26, 32)
        assert edge_endpoints(26, StrandClass.LEFT_HANDED, self.params) == (26, 35)

    def test_central_and_bottom_rows(self):
        # d27 is central, d30 is bottom in AE(3,5,5).
        assert node_category(27, 5) is NodeCategory.CENTRAL
        assert node_category(30, 5) is NodeCategory.BOTTOM
        assert input_index(27, StrandClass.RIGHT_HANDED, self.params) == 21
        assert output_index(30, StrandClass.RIGHT_HANDED, self.params) == 31
        assert input_index(30, StrandClass.LEFT_HANDED, self.params) == 21
        assert output_index(27, StrandClass.LEFT_HANDED, self.params) == 31


class TestConsistency:
    """Structural invariants that must hold for every valid setting."""

    @given(
        st.sampled_from([(2, 2, 2), (2, 2, 5), (3, 2, 5), (3, 3, 4), (3, 5, 5), (3, 1, 4), (2, 1, 3)]),
        st.integers(min_value=1, max_value=600),
    )
    @settings(max_examples=200, deadline=None)
    def test_input_output_are_inverse(self, spec, index):
        """j(h(i)) == i whenever the input exists, and h(j(i)) == i always."""
        params = AEParameters(*spec)
        for strand_class in params.strand_classes:
            h = input_index(index, strand_class, params)
            if h >= 1:
                assert output_index(h, strand_class, params) == index
            j = output_index(index, strand_class, params)
            assert input_index(j, strand_class, params) == index

    @given(
        st.sampled_from([(2, 2, 2), (2, 2, 5), (3, 2, 5), (3, 3, 4), (3, 5, 5), (3, 1, 4)]),
        st.integers(min_value=1, max_value=600),
    )
    @settings(max_examples=200, deadline=None)
    def test_walks_strictly_increase(self, spec, index):
        params = AEParameters(*spec)
        for strand_class in params.strand_classes:
            assert output_index(index, strand_class, params) > index
            assert input_index(index, strand_class, params) < index

    def test_single_entanglement_uses_only_horizontal(self):
        params = AEParameters.single()
        assert input_index(10, StrandClass.HORIZONTAL, params) == 9
        assert output_index(10, StrandClass.HORIZONTAL, params) == 11
        with pytest.raises(InvalidParametersError):
            input_index(10, StrandClass.RIGHT_HANDED, params)

    def test_s1_helical_step_is_p(self):
        """Single-row lattices advance helical strands by p per step (documented convention)."""
        params = AEParameters(3, 1, 4)
        assert output_index(10, StrandClass.RIGHT_HANDED, params) == 14
        assert input_index(10, StrandClass.LEFT_HANDED, params) == 6

    def test_strand_start_returns_non_positive(self):
        params = AEParameters(3, 5, 5)
        assert input_index(1, StrandClass.HORIZONTAL, params) <= 0
        assert input_index(1, StrandClass.RIGHT_HANDED, params) <= 0
        assert input_index(1, StrandClass.LEFT_HANDED, params) <= 0

    def test_invalid_index_rejected(self):
        with pytest.raises(Exception):
            input_index(0, StrandClass.HORIZONTAL, AEParameters(3, 5, 5))


class TestRuleTable:
    def test_rule_table_offsets_match_paper(self):
        table = rule_table(AEParameters(3, 5, 5))
        # Horizontal offsets are +/- s for every category.
        for category in table["input"]:
            assert table["input"][category]["h"] == -5
            assert table["output"][category]["h"] == 5
        # Central helical offsets are +/- (s + 1) and +/- (s - 1).
        assert table["input"]["central"]["rh"] == -6
        assert table["output"]["central"]["rh"] == 6
        assert table["input"]["central"]["lh"] == -4
        assert table["output"]["central"]["lh"] == 4
        # Top/bottom wrap rules.
        assert table["input"]["top"]["rh"] == -(5 * 5) + (25 - 1)
        assert table["output"]["bottom"]["rh"] == 5 * 5 - (25 - 1)

    def test_rule_table_small_s_has_no_central_row(self):
        table = rule_table(AEParameters(3, 2, 5))
        assert "central" not in table["input"]
        assert set(table["input"]) == {"top", "bottom"}
