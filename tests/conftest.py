"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.parameters import AEParameters


@pytest.fixture
def paper_example_params() -> AEParameters:
    """AE(3,5,5), the worked example of Figure 4 and Tables I/II."""
    return AEParameters(3, 5, 5)


@pytest.fixture
def hec_params() -> AEParameters:
    """AE(3,2,5), the 5-HEC setting used throughout the evaluation."""
    return AEParameters.triple(2, 5)


@pytest.fixture(params=["AE(1,-,-)", "AE(2,2,2)", "AE(2,2,5)", "AE(3,2,5)", "AE(3,5,5)", "AE(3,1,4)"])
def any_params(request) -> AEParameters:
    """A spread of valid code settings exercised by parametrised tests."""
    return AEParameters.parse(request.param)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def make_payload(index: int, size: int = 64) -> bytes:
    """Deterministic, distinct payload for block ``index``."""
    seed = (index * 2654435761) % (2**32)
    generator = np.random.default_rng(seed)
    return generator.integers(0, 256, size=size, dtype=np.uint8).tobytes()


@pytest.fixture
def payload_factory():
    return make_payload
