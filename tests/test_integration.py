"""End-to-end integration tests crossing module boundaries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.blocks import DataId
from repro.core.decoder import Decoder
from repro.core.dynamic import upgrade_alpha
from repro.core.encoder import Entangler
from repro.core.parameters import AEParameters
from repro.core.xor import payloads_equal
from repro.simulation.workload import WorkloadSpec, payload_stream
from repro.storage.failures import disaster_for_fraction
from repro.storage.maintenance import MaintenancePolicy
from repro.system.entangled_store import EntangledStorageSystem

from tests.conftest import make_payload


class TestArchiveLifecycle:
    """Encode -> disaster -> repair -> upgrade -> disaster again."""

    def test_full_lifecycle(self):
        params = AEParameters.double(2, 5)
        system = EntangledStorageSystem(params, location_count=40, block_size=256, seed=13)
        documents = {
            f"doc-{index}": make_payload(index, 3_000 + 137 * index) for index in range(6)
        }
        for name, payload in documents.items():
            system.put(name, payload)

        # First disaster: 25% of the locations disappear.
        disaster = disaster_for_fraction(40, 0.25, np.random.default_rng(5))
        system.fail_locations(disaster.failed_locations)
        for name, payload in documents.items():
            assert system.read(name) == payload
        report = system.repair(MaintenancePolicy.FULL)
        assert report.data_loss == 0

        # The archive owner later raises alpha from 2 to 3 without re-encoding.
        new_parities = upgrade_alpha(
            params,
            3,
            system.lattice.size,
            lambda data_id: system.get_block(data_id),
            system.block_size,
        )
        assert len(new_parities) == system.lattice.size

    def test_streamed_workload_roundtrip(self):
        params = AEParameters.triple(2, 5)
        encoder = Entangler(params, block_size=512)
        store = {}
        payloads = list(payload_stream(WorkloadSpec(block_count=64, block_size=512, seed=3)))
        for encoded in encoder.encode_stream(payloads):
            for block in encoded.all_blocks():
                store[block.block_id] = block.payload
        # Wipe a contiguous range of data blocks and every third parity.
        removed = {}
        for index in range(20, 30):
            removed[DataId(index)] = store.pop(DataId(index))
        for index in range(1, 65, 3):
            for parity in encoder.lattice.output_parities(index)[:1]:
                store.pop(parity, None)
        decoder = Decoder(encoder.lattice, store.get, 512)
        for index in range(20, 30):
            assert payloads_equal(decoder.repair(DataId(index)), removed[DataId(index)])

    @pytest.mark.parametrize("fraction", [0.1, 0.3])
    def test_documents_survive_paper_style_disasters(self, fraction):
        system = EntangledStorageSystem(
            AEParameters.triple(2, 5), location_count=60, block_size=256, seed=21
        )
        payload = make_payload(99, 30_000)
        system.put("archive", payload)
        disaster = disaster_for_fraction(60, fraction, np.random.default_rng(9))
        system.fail_locations(disaster.failed_locations)
        assert system.read("archive") == payload
