"""Tests for the storage cluster."""

from __future__ import annotations

import pytest

from repro.core.blocks import Block, DataId, ParityId
from repro.core.parameters import AEParameters, StrandClass
from repro.exceptions import PlacementError, UnknownBlockError
from repro.storage.cluster import StorageCluster
from repro.storage.placement import DictionaryPlacement, RandomPlacement


def filled_cluster(locations: int = 10, blocks: int = 40, seed: int = 1) -> StorageCluster:
    cluster = StorageCluster(locations, RandomPlacement(locations, seed=seed))
    for index in range(1, blocks + 1):
        cluster.put_block(Block(DataId(index), bytes([index % 256]) * 8))
    return cluster


class TestPlacementAndLookup:
    def test_put_records_location(self):
        cluster = filled_cluster()
        location = cluster.location_of(DataId(1))
        assert 0 <= location < cluster.location_count
        assert cluster.knows(DataId(1))
        assert cluster.is_available(DataId(1))
        assert cluster.get_block(DataId(1)).tolist() == [1] * 8

    def test_explicit_location_overrides_policy(self):
        cluster = StorageCluster(5, RandomPlacement(5))
        cluster.put_block(Block(DataId(1), b"x"), location_id=3)
        assert cluster.location_of(DataId(1)) == 3

    def test_unknown_block(self):
        cluster = filled_cluster()
        with pytest.raises(UnknownBlockError):
            cluster.location_of(DataId(999))
        assert cluster.try_get_block(DataId(999)) is None
        assert not cluster.is_available(DataId(999))

    def test_mismatched_placement_rejected(self):
        with pytest.raises(PlacementError):
            StorageCluster(5, RandomPlacement(6))

    def test_blocks_at_partition_the_directory(self):
        cluster = filled_cluster(locations=4, blocks=30)
        total = sum(len(cluster.blocks_at(loc)) for loc in range(4))
        assert total == 30
        assert len(cluster) == 30


class TestFailures:
    def test_failed_locations_hide_blocks(self):
        cluster = filled_cluster(locations=5, blocks=50)
        cluster.fail_locations([0, 1])
        assert set(cluster.unavailable_locations()) == {0, 1}
        unavailable = cluster.unavailable_blocks()
        assert unavailable
        for block_id in unavailable:
            assert cluster.location_of(block_id) in {0, 1}
            assert cluster.try_get_block(block_id) is None
        cluster.restore_locations()
        assert not cluster.unavailable_blocks()

    def test_wipe_destroys_content(self):
        cluster = filled_cluster(locations=5, blocks=50)
        victim_blocks = cluster.blocks_at(2)
        cluster.wipe_locations([2])
        cluster.restore_locations([2])
        for block_id in victim_blocks:
            assert cluster.try_get_block(block_id) is None

    def test_stats_summary(self):
        cluster = filled_cluster(locations=5, blocks=20)
        cluster.fail_locations([4])
        stats = cluster.stats()
        assert stats.locations == 5
        assert stats.available_locations == 4
        assert stats.blocks == 20
        assert "locations up" in stats.summary()


class TestRelocation:
    def test_relocate_avoids_failed_locations(self):
        cluster = filled_cluster(locations=6, blocks=30)
        cluster.fail_locations([0, 1])
        target = cluster.relocate(DataId(1), b"\x09" * 8, avoid=(0, 1))
        assert target not in {0, 1}
        assert cluster.location_of(DataId(1)) == target
        assert cluster.get_block(DataId(1)).tolist() == [9] * 8

    def test_relocate_without_candidates_raises(self):
        cluster = StorageCluster(2, RandomPlacement(2))
        cluster.put_block(Block(DataId(1), b"x"))
        cluster.fail_locations([0, 1])
        with pytest.raises(PlacementError):
            cluster.relocate(DataId(1), b"y", avoid=())
