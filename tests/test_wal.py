"""Tests for the group-committed metadata WAL and its crash safety.

Three layers:

* frame/group mechanics -- framing round trips, torn-tail scanning, commit
  seals that do not match their op run;
* concurrency -- many threads committing at once form disjoint, ordered,
  fully recoverable groups (the group-commit contract);
* service-level crash sweep -- a live ``StorageService`` data directory is
  snapshotted and its WAL truncated at *every* frame boundary (and mid-frame);
  each truncation must reopen to exactly the committed-prefix state, with
  committed documents byte-exact and no partial group visible.
"""

from __future__ import annotations

import os
import shutil
import threading

import pytest

from repro.exceptions import InvalidParametersError
from repro.storage.wal import (
    _FRAME_COMMIT,
    _FRAME_OP,
    MetadataWAL,
    _frame_bytes,
    iter_frames,
    scan_wal,
)
from repro.system.service import StorageConfig, StorageService


def wal_path(tmp_path) -> str:
    return str(tmp_path / "wal.log")


class TestFraming:
    def test_commit_round_trips_through_frames(self, tmp_path):
        path = wal_path(tmp_path)
        with MetadataWAL(path) as wal:
            seq = wal.commit([{"op": "put_doc", "name": "a"}, {"op": "x", "n": 1}])
        assert seq == 1
        frames = iter_frames(path)
        assert [frame.frame_type for frame in frames] == [
            _FRAME_OP,
            _FRAME_OP,
            _FRAME_COMMIT,
        ]
        assert frames[0].record == {"op": "put_doc", "name": "a"}
        assert frames[1].record == {"op": "x", "n": 1}
        assert frames[2].record == {"seq": 1, "ops": 2}
        # Frame extents tile the file exactly.
        assert frames[0].start == 0
        assert frames[1].start == frames[0].end
        assert frames[2].end == os.path.getsize(path)

    def test_scan_groups_and_sequence(self, tmp_path):
        path = wal_path(tmp_path)
        with MetadataWAL(path) as wal:
            wal.commit([{"op": "a"}])
            wal.commit([{"op": "b"}, {"op": "c"}])
        groups, valid_end = scan_wal(path)
        assert [group.seq for group in groups] == [1, 2]
        assert [len(group.ops) for group in groups] == [1, 2]
        assert valid_end == os.path.getsize(path)
        assert groups[1].end_offset == valid_end

    def test_missing_file_is_empty(self, tmp_path):
        path = wal_path(tmp_path)
        assert iter_frames(path) == []
        assert scan_wal(path) == ([], 0)

    def test_empty_commit_is_a_noop(self, tmp_path):
        path = wal_path(tmp_path)
        with MetadataWAL(path) as wal:
            assert wal.commit([]) == 0
            wal.commit([{"op": "a"}])
            assert wal.commit([]) == 1
        assert len(scan_wal(path)[0]) == 1

    def test_corrupt_crc_hides_the_tail(self, tmp_path):
        path = wal_path(tmp_path)
        with MetadataWAL(path) as wal:
            wal.commit([{"op": "a"}])
            wal.commit([{"op": "b"}])
        data = bytearray(open(path, "rb").read())
        first_end = scan_wal(path)[0][0].end_offset
        data[first_end + 20] ^= 0xFF  # flip a byte inside the second group
        with open(path, "wb") as handle:
            handle.write(data)
        groups, valid_end = scan_wal(path)
        assert [group.seq for group in groups] == [1]
        assert valid_end == first_end

    def test_commit_seal_with_wrong_op_count_stops_the_scan(self, tmp_path):
        path = wal_path(tmp_path)
        blob = (
            _frame_bytes(_FRAME_OP, {"op": "a"})
            + _frame_bytes(_FRAME_COMMIT, {"seq": 1, "ops": 1})
            + _frame_bytes(_FRAME_OP, {"op": "b"})
            + _frame_bytes(_FRAME_COMMIT, {"seq": 2, "ops": 5})  # lies
            + _frame_bytes(_FRAME_OP, {"op": "c"})
            + _frame_bytes(_FRAME_COMMIT, {"seq": 3, "ops": 1})
        )
        with open(path, "wb") as handle:
            handle.write(blob)
        groups, valid_end = scan_wal(path)
        # The mismatched seal poisons everything after it, group 3 included.
        assert [group.seq for group in groups] == [1]
        assert valid_end == groups[0].end_offset


class TestRecovery:
    def test_reopen_recovers_groups_and_continues_sequence(self, tmp_path):
        path = wal_path(tmp_path)
        with MetadataWAL(path) as wal:
            wal.commit([{"op": "a"}])
            wal.commit([{"op": "b"}])
        reopened = MetadataWAL(path)
        assert [group.seq for group in reopened.recovered_groups()] == [1, 2]
        assert reopened.last_seq == 2
        assert reopened.commit([{"op": "c"}]) == 3
        reopened.close()
        assert [group.seq for group in scan_wal(path)[0]] == [1, 2, 3]

    def test_open_truncates_a_torn_tail_in_place(self, tmp_path):
        path = wal_path(tmp_path)
        with MetadataWAL(path) as wal:
            wal.commit([{"op": "a"}])
        good_size = os.path.getsize(path)
        with open(path, "ab") as handle:
            handle.write(_frame_bytes(_FRAME_OP, {"op": "torn"})[:-2])
        reopened = MetadataWAL(path)
        assert os.path.getsize(path) == good_size
        assert reopened.commit([{"op": "b"}]) == 2
        reopened.close()
        assert [group.seq for group in scan_wal(path)[0]] == [1, 2]

    def test_torn_tail_sweep_every_byte(self, tmp_path):
        """Cut the log at *every* byte length: the scan must always return a
        committed prefix, and reopening must always truncate and append
        cleanly after the cut."""
        path = wal_path(tmp_path)
        with MetadataWAL(path) as wal:
            for number in range(4):
                wal.commit([{"op": "put", "n": number}, {"op": "state", "n": number}])
        blob = open(path, "rb").read()
        boundaries = [0] + [g.end_offset for g in scan_wal(path)[0]]
        for cut in range(len(blob) + 1):
            trimmed = str(tmp_path / "cut.log")
            with open(trimmed, "wb") as handle:
                handle.write(blob[:cut])
            groups, valid_end = scan_wal(trimmed)
            # Only whole groups survive, up to the last boundary <= cut.
            expected_end = max(b for b in boundaries if b <= cut)
            assert valid_end == expected_end
            assert [g.seq for g in groups] == list(range(1, boundaries.index(expected_end) + 1))
            # Reopen-after-crash: the torn bytes are cut, appends work.
            wal = MetadataWAL(trimmed)
            assert os.path.getsize(trimmed) == expected_end
            wal.commit([{"op": "after-crash"}])
            wal.close()
            regrown, _ = scan_wal(trimmed)
            assert len(regrown) == len(groups) + 1
            assert regrown[-1].ops == [{"op": "after-crash"}]
            os.remove(trimmed)


class TestGroupCommit:
    def test_concurrent_commits_form_ordered_recoverable_groups(self, tmp_path):
        path = wal_path(tmp_path)
        wal = MetadataWAL(path)
        threads, per_thread = 8, 50
        seqs: list = [[] for _ in range(threads)]
        barrier = threading.Barrier(threads)

        def committer(index: int) -> None:
            barrier.wait()
            for number in range(per_thread):
                seqs[index].append(
                    wal.commit([{"op": "put", "writer": index, "n": number}])
                )

        workers = [
            threading.Thread(target=committer, args=(index,)) for index in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        wal.close()

        flat = sorted(seq for batch in seqs for seq in batch)
        assert flat == list(range(1, threads * per_thread + 1))
        # Every thread sees its own commits in submission order.
        for batch in seqs:
            assert batch == sorted(batch)
        groups, valid_end = scan_wal(path)
        assert valid_end == os.path.getsize(path)
        assert [group.seq for group in groups] == flat  # file order == seq order
        recovered = {
            (record["writer"], record["n"]) for group in groups for record in group.ops
        }
        assert len(recovered) == threads * per_thread

    def test_reset_discards_content_but_keeps_counting(self, tmp_path):
        path = wal_path(tmp_path)
        wal = MetadataWAL(path)
        wal.commit([{"op": "a"}])
        wal.commit([{"op": "b"}])
        wal.reset()
        assert wal.size_bytes == 0
        assert os.path.getsize(path) == 0
        assert wal.recovered_groups() == []
        assert wal.commit([{"op": "c"}]) == 3  # sequence keeps climbing
        wal.close()
        groups, _ = scan_wal(path)
        assert [(group.seq, group.ops) for group in groups] == [(3, [{"op": "c"}])]

    def test_closed_wal_refuses_commits(self, tmp_path):
        wal = MetadataWAL(wal_path(tmp_path))
        wal.close()
        wal.close()  # idempotent
        with pytest.raises(InvalidParametersError):
            wal.commit([{"op": "a"}])

    def test_fsync_mode_round_trips(self, tmp_path):
        path = wal_path(tmp_path)
        with MetadataWAL(path, fsync=True) as wal:
            wal.commit([{"op": "a"}])
            wal.reset()
            wal.commit([{"op": "b"}])
        groups, _ = scan_wal(path)
        assert [group.ops for group in groups] == [[{"op": "b"}]]


class TestServiceCrashSweep:
    """Truncate a live service's WAL at every frame boundary and reopen."""

    def _open(self, data_dir) -> StorageService:
        return StorageService.open(
            StorageConfig(
                scheme="ae-3-2-5",
                location_count=8,
                block_size=256,
                backend="disk",
                data_dir=str(data_dir),
            )
        )

    def test_every_truncation_point_reopens_to_the_committed_prefix(self, tmp_path):
        home = tmp_path / "live"
        payloads = {}
        service = self._open(home)
        # Base state, checkpointed into manifest.json.
        for name in ("base-0", "base-1"):
            payloads[name] = name.encode() * 100
            service.put(name, payloads[name])
        service.flush()
        assert os.path.getsize(home / "wal.log") == 0
        # Tail state, only in the WAL: puts plus a delete of a base doc.
        for number in range(4):
            name = f"tail-{number}"
            payloads[name] = bytes([number + 1]) * (200 + 32 * number)
            service.put(name, payloads[name])
        service.delete("base-0")

        # Snapshot the directory while the service is still open (a crash
        # image), then sweep truncation points over the snapshot's WAL.
        image = tmp_path / "image"
        shutil.copytree(home, image)
        service.close()

        blob = open(image / "wal.log", "rb").read()
        frames = iter_frames(str(image / "wal.log"))
        assert frames, "the crash image must hold a WAL tail"
        cuts = [0] + [frame.end for frame in frames]
        cuts += [frame.end - 3 for frame in frames]  # mid-frame tears
        for cut in sorted(set(cuts)):
            trial = tmp_path / f"trial-{cut}"
            shutil.copytree(image, trial)
            with open(trial / "wal.log", "r+b") as handle:
                handle.truncate(cut)
            # What a correct recovery must see: manifest docs + committed
            # WAL groups up to the cut, replayed in order.
            expected = {name: payloads[name] for name in ("base-0", "base-1")}
            committed, _ = scan_wal(str(trial / "wal.log"))
            for group in committed:
                for record in group.ops:
                    if record.get("op") == "put_doc":
                        expected[record["name"]] = payloads[record["name"]]
                    elif record.get("op") == "delete_doc":
                        expected.pop(record["name"], None)
            reopened = self._open(trial)
            try:
                assert set(reopened.documents) == set(expected), f"cut={cut}"
                for name, payload in expected.items():
                    assert reopened.get(name) == payload, f"cut={cut} doc={name}"
                # The reopened service keeps working past the crash.
                reopened.put("post-crash", b"z" * 64)
                assert reopened.get("post-crash") == b"z" * 64
            finally:
                reopened.close()
            shutil.rmtree(trial)
        assert len(blob) == frames[-1].end  # the image's tail was clean

    def test_uncheckpointed_mutations_survive_reopen(self, tmp_path):
        home = tmp_path / "plain"
        service = self._open(home)
        service.put("doc", b"v1" * 64)
        service.put("doc", b"v2" * 64)  # overwrite in the same epoch
        wal_size = os.path.getsize(home / "wal.log")
        assert wal_size > 0
        image = tmp_path / "plain-image"
        shutil.copytree(home, image)
        service.close()
        reopened = self._open(image)
        assert reopened.get("doc") == b"v2" * 64
        reopened.close()
