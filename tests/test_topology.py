"""Tests for the topology model, topology-aware placement and domain-aware repair."""

from __future__ import annotations

import pytest

from repro.core.blocks import Block, DataId, ParityId
from repro.core.parameters import AEParameters
from repro.exceptions import InvalidParametersError, PlacementError
from repro.schemes.stripe import StripeBlockId
from repro.storage import placement
from repro.storage.cluster import StorageCluster
from repro.storage.failures import CorrelatedFailureDomains, disaster_for_target
from repro.storage.placement import (
    RandomPlacement,
    SpreadDomainsPlacement,
    WeightedPlacement,
)
from repro.storage.topology import Topology, TopologyBuilder, TopologyNode
from repro.system.service import StorageConfig, StorageService


class TestTopologyConstruction:
    def test_spec_grammar_builds_a_grid(self):
        topology = Topology.parse("sites=3,racks=2,nodes=4")
        assert topology.node_count == 24
        assert topology.site_count == 3
        assert topology.rack_count == 6
        assert topology.sites == ("site-0", "site-1", "site-2")
        assert topology.site_locations("site-1") == tuple(range(8, 16))
        assert topology.rack_locations(0, 1) == (4, 5, 6, 7)

    def test_spec_defaults_and_bare_int(self):
        assert Topology.parse("sites=3,nodes=4").node_count == 12
        flat = Topology.parse("12")
        assert flat.node_count == 12
        assert flat.is_flat()

    @pytest.mark.parametrize(
        "spec",
        ["", "sites=", "sites=3,bogus=2", "sites=x", "sites=3,sites=4"],
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(InvalidParametersError):
            Topology.parse(spec)

    def test_builder_assigns_stable_insertion_order_ids(self):
        topology = (
            TopologyBuilder()
            .site("eu").rack("r0").nodes(2)
            .site("us").rack("r0").nodes(2, capacity=2.0)
            .build()
        )
        assert topology.node_count == 4
        assert topology.sites == ("eu", "us")
        assert [node.node_id for node in topology.nodes] == [0, 1, 2, 3]
        assert topology.capacities().tolist() == [1.0, 1.0, 2.0, 2.0]

    def test_node_ids_must_be_consecutive(self):
        with pytest.raises(InvalidParametersError):
            Topology([TopologyNode(1, "s", "r", "n")])

    def test_non_positive_capacity_rejected(self):
        with pytest.raises(InvalidParametersError):
            Topology([TopologyNode(0, "s", "r", "n", capacity=0.0)])


class TestTopologyRoundTrip:
    def test_json_round_trip_is_exact(self):
        topology = (
            TopologyBuilder()
            .site("eu").rack("a").nodes(3).rack("b").nodes(2, capacity=0.5)
            .site("us").rack("a").nodes(4, capacity=2.5)
            .build()
        )
        rebuilt = Topology.from_json(topology.to_json())
        assert rebuilt == topology
        assert rebuilt.capacities().tolist() == topology.capacities().tolist()
        assert rebuilt.domains("rack") == topology.domains("rack")

    def test_save_load_round_trip(self, tmp_path):
        topology = Topology.parse("sites=2,racks=2,nodes=3")
        path = str(tmp_path / "topology.json")
        topology.save(path)
        assert Topology.load(path) == topology
        # Topology.resolve treats .json paths as files, other strings as specs.
        assert Topology.resolve(path) == topology

    def test_malformed_json_rejected(self):
        with pytest.raises(InvalidParametersError):
            Topology.from_json("not json")
        with pytest.raises(InvalidParametersError):
            Topology.from_json('{"nodes": [{"id": "x"}]}')


class TestDomainsAndTargets:
    def test_domain_views_and_labels(self):
        topology = Topology.parse("sites=2,racks=2,nodes=2")
        assert topology.domains("site") == ((0, 1, 2, 3), (4, 5, 6, 7))
        assert len(topology.domains("rack")) == 4
        assert topology.domain_of(5, "site") == 1
        assert topology.domain_labels("rack")[0] == "site-0/rack-0"
        assert topology.default_level() == "site"

    def test_targets_resolve_to_location_sets(self):
        topology = Topology.parse("sites=2,racks=2,nodes=2")
        assert topology.locations_for_target("site:0") == (0, 1, 2, 3)
        assert topology.locations_for_target("site:site-1") == (4, 5, 6, 7)
        assert topology.locations_for_target("rack:1/0") == (4, 5)
        assert topology.locations_for_target("node:7") == (7,)
        for bad in ("site", "site:", "rack:1", "node:x", "zone:0", "site:9"):
            with pytest.raises(InvalidParametersError):
                topology.locations_for_target(bad)

    def test_disaster_for_target_and_correlated_domains(self):
        topology = Topology.parse("sites=3,nodes=4")
        disaster = disaster_for_target(topology, "site:2")
        assert disaster.failed_locations == (8, 9, 10, 11)
        assert disaster.label == "site:2"
        union = disaster_for_target(topology, ["site:0", "node:5"])
        assert union.failed_locations == (0, 1, 2, 3, 5)
        domains = CorrelatedFailureDomains.from_topology(topology, level="site")
        assert domains.domains == topology.domains("site")
        # The legacy evenly() shim slices exactly like a flat grid's sites.
        assert CorrelatedFailureDomains.evenly(12, 3).domains == domains.domains


class TestPlacementRegistry:
    def test_registry_resolves_every_policy(self):
        topology = Topology.parse("sites=3,racks=2,nodes=4")
        params = AEParameters.triple(2, 5)
        for name in placement.available():
            policy = placement.get(name, topology, params=params, seed=3)
            assert policy.location_count == 24
            assert policy.topology is topology
            location = policy.location_for(DataId(7))
            assert 0 <= location < 24

    def test_unknown_policy_and_missing_params_raise(self):
        topology = Topology.parse("sites=2,nodes=2")
        with pytest.raises(PlacementError):
            placement.get("nope", topology)
        with pytest.raises(PlacementError):
            placement.get("strand-aware", topology)

    def test_legacy_int_builds_flat_topology(self):
        policy = RandomPlacement(10, seed=1)
        assert policy.topology.is_flat()
        assert policy.location_count == 10


class TestSpreadDomainsPlacement:
    def test_ae_block_never_shares_a_domain_with_its_parities(self):
        topology = Topology.parse("sites=4,racks=2,nodes=3")
        params = AEParameters.triple(2, 5)
        policy = SpreadDomainsPlacement(topology, params=params)
        for index in range(1, 200):
            data_domain = topology.domain_of(policy.location_for(DataId(index)), "site")
            parity_domains = {
                topology.domain_of(
                    policy.location_for(ParityId(index, cls)), "site"
                )
                for cls in params.strand_classes
            }
            assert data_domain not in parity_domains
            assert len(parity_domains) == params.alpha

    def test_stripe_blocks_spread_over_all_domains(self):
        topology = Topology.parse("sites=5,nodes=4")
        policy = SpreadDomainsPlacement(topology)
        for stripe in range(40):
            domains = [
                topology.domain_of(
                    policy.location_for(StripeBlockId(stripe, position)), "site"
                )
                for position in range(5)
            ]
            assert sorted(domains) == [0, 1, 2, 3, 4]

    def test_fewer_domains_than_width_spreads_evenly(self):
        topology = Topology.parse("sites=4,nodes=5")
        policy = SpreadDomainsPlacement(topology)
        # RS(10,4)-shaped stripes: 14 positions over 4 sites -> at most 4
        # blocks per site, so one full-site disaster stays decodable.
        for stripe in range(20):
            per_site = [0, 0, 0, 0]
            for position in range(14):
                location = policy.location_for(StripeBlockId(stripe, position))
                per_site[topology.domain_of(location, "site")] += 1
            assert max(per_site) <= 4

    def test_single_site_topology_spreads_over_racks(self):
        topology = Topology.parse("sites=1,racks=4,nodes=2")
        policy = SpreadDomainsPlacement(topology)
        assert policy.level == "rack"


class TestWeightedPlacement:
    def test_blocks_follow_capacity_weights(self):
        topology = (
            TopologyBuilder()
            .site("a").rack("r").node(capacity=1.0).node(capacity=1.0)
            .site("b").rack("r").node(capacity=4.0)
            .build()
        )
        policy = WeightedPlacement(topology, seed=5)
        counts = [0, 0, 0]
        for index in range(1, 3001):
            counts[policy.location_for(DataId(index))] += 1
        # Node 2 carries 4/6 of the capacity; expect roughly 2000 blocks.
        assert counts[2] > counts[0] + counts[1]
        assert 0.55 < counts[2] / 3000 < 0.78


class TestClusterTopology:
    def test_cluster_adopts_placement_topology(self):
        topology = Topology.parse("sites=2,racks=1,nodes=3")
        cluster = StorageCluster(placement=SpreadDomainsPlacement(topology))
        assert cluster.topology is topology
        assert cluster.location_count == 6

    def test_contradicting_location_count_rejected(self):
        with pytest.raises(PlacementError):
            StorageCluster(5, topology="sites=2,nodes=4")

    def test_stats_surface_per_domain_block_counts(self):
        topology = Topology.parse("sites=2,nodes=3")
        cluster = StorageCluster(placement=SpreadDomainsPlacement(topology))
        for index in range(1, 21):
            cluster.put_block(Block(DataId(index), b"x" * 8))
        stats = cluster.stats()
        assert set(stats.domain_blocks) == {"site-0", "site-1"}
        assert sum(stats.domain_blocks.values()) == 20
        assert "domains:" in stats.summary()
        # Flat clusters keep the historical summary (nothing to break down).
        flat = StorageCluster(4, RandomPlacement(4))
        assert flat.stats().domain_blocks == {}
        assert "domains:" not in flat.stats().summary()


class TestRelocateAvoidList:
    def test_avoid_honoured_even_when_only_avoided_has_capacity(self):
        """The avoid-list is a hard constraint: a location the repair must
        avoid is never used, even when it alone has free capacity."""
        cluster = StorageCluster(3, RandomPlacement(3), capacity_blocks=1)
        cluster.put_block(Block(DataId(1), b"a"), location_id=0)
        cluster.put_block(Block(DataId(2), b"b"), location_id=1)
        # Location 2 is the only one with free capacity -- and it is avoided.
        with pytest.raises(PlacementError):
            cluster.relocate(DataId(3), b"c", avoid=(2,))

    def test_full_locations_are_skipped(self):
        cluster = StorageCluster(3, RandomPlacement(3), capacity_blocks=1)
        cluster.put_block(Block(DataId(1), b"a"), location_id=0)
        cluster.put_block(Block(DataId(2), b"b"), location_id=1)
        target = cluster.relocate(DataId(3), b"c", avoid=())
        assert target == 2

    def test_relocate_avoids_the_failed_domain(self):
        topology = Topology.parse("sites=3,nodes=4")
        cluster = StorageCluster(placement=SpreadDomainsPlacement(topology))
        cluster.put_block(Block(DataId(1), b"x" * 8), location_id=0)
        failed_site = topology.locations_for_target("site:0")
        cluster.fail_locations(failed_site)
        target = cluster.relocate(DataId(1), b"y" * 8, avoid=tuple(failed_site))
        assert topology.domain_of(target, "site") != 0

    def test_relocate_avoids_down_site_even_with_partial_avoid(self):
        """A single failed node pins its whole domain: the rebuilt copy lands
        outside the failed block's site whenever another site has room."""
        topology = Topology.parse("sites=3,nodes=4")
        cluster = StorageCluster(placement=SpreadDomainsPlacement(topology))
        cluster.put_block(Block(DataId(1), b"x" * 8), location_id=0)
        cluster.fail_locations([0])
        target = cluster.relocate(DataId(1), b"y" * 8, avoid=(0,))
        assert topology.domain_of(target, "site") != 0


class TestGeoScenario:
    """Paper Sec. V-C (correlated failures): a full-site disaster is
    survivable under spread-domains but loses data under round-robin."""

    PAYLOAD = bytes(range(256)) * 256  # 64 KiB -> 16 data blocks at 4 KiB

    def _service(self, policy_name: str) -> StorageService:
        return StorageService.open(
            StorageConfig(
                scheme="ae-1",
                topology="sites=2,nodes=6",
                placement=policy_name,
            )
        )

    def test_spread_domains_survives_a_full_site_disaster(self):
        service = self._service("spread-domains")
        service.put("archive", self.PAYLOAD)
        failed = service.topology.locations_for_target("site:0")
        service.fail_locations(failed)
        report = service.repair()
        assert report.data_loss == 0
        assert not report.unrecovered
        assert service.get("archive") == self.PAYLOAD
        # Repaired blocks were re-placed outside the failed site.
        for block_id in report.repaired:
            location = service.cluster.location_of(block_id)
            assert service.topology.domain_of(location, "site") == 1

    def test_round_robin_loses_data_in_a_full_site_disaster(self):
        service = self._service("round-robin")
        service.put("archive", self.PAYLOAD)
        service.fail_locations(service.topology.locations_for_target("site:0"))
        report = service.repair()
        assert report.data_loss > 0

    def test_spread_invariant_holds_after_relocation(self):
        """Repair re-placement must not collapse a repair group into one
        domain: with a spare site available, a rebuilt block is steered away
        from the sites its group already occupies, so after the dead site is
        restored, a *second* full-site disaster (either remaining site) is
        still survivable."""
        for second_target in ("site:1", "site:2"):
            service = StorageService.open(
                StorageConfig(
                    scheme="ae-1",
                    topology="sites=3,nodes=4",
                    placement="spread-domains",
                )
            )
            service.put("archive", self.PAYLOAD)
            site0 = service.topology.locations_for_target("site:0")
            service.fail_locations(site0)
            first = service.repair()
            assert first.data_loss == 0
            service.restore_locations(site0)
            service.fail_locations(
                service.topology.locations_for_target(second_target)
            )
            second = service.repair()
            assert second.data_loss == 0, second_target
            assert service.get("archive") == self.PAYLOAD

    def test_relocation_prefers_a_spare_domain(self):
        """With more domains than the repair-group width, relocate steers a
        rebuilt AE block into a domain none of its group's lanes map to."""
        from repro.core.blocks import DataId

        topology = Topology.parse("sites=3,nodes=4")
        params = AEParameters.single()  # alpha = 1 -> group width 2
        policy = placement.get("spread-domains", topology, params=params)
        cluster = StorageCluster(placement=policy)
        block_id = DataId(4)  # group 3: lanes map to sites 0 and 1
        assigned = policy.location_for(block_id)
        assert topology.domain_of(assigned, "site") == 0
        cluster.put_block(Block(block_id, b"x" * 8))
        failed = topology.locations_for_target("site:0")
        cluster.fail_locations(failed)
        target = cluster.relocate(block_id, b"y" * 8, avoid=tuple(failed))
        # Site 1 holds the block's parity lane; site 2 is the spare.
        assert topology.domain_of(target, "site") == 2


class TestServiceTopologyPersistence:
    def test_manifest_round_trips_topology_and_placement(self, tmp_path):
        data_dir = str(tmp_path / "svc")
        payload = b"geo-durable payload " * 512
        config = StorageConfig(
            scheme="rs-4-2",
            topology="sites=3,racks=2,nodes=2",
            placement="spread-domains",
            backend="disk",
            data_dir=data_dir,
            block_size=512,
        )
        with StorageService.open(config) as service:
            service.put("doc", payload)
            topology = service.topology
        # Reopen without repeating the topology or the placement: both come
        # back from the manifest.
        with StorageService.open(
            StorageConfig(
                scheme="rs-4-2", backend="disk", data_dir=data_dir, block_size=512
            )
        ) as reopened:
            assert reopened.topology == topology
            assert isinstance(reopened.cluster.placement, SpreadDomainsPlacement)
            assert reopened.get("doc") == payload

    def test_conflicting_topology_on_reopen_rejected(self, tmp_path):
        data_dir = str(tmp_path / "svc")
        with StorageService.open(
            StorageConfig(
                scheme="rs-4-2",
                topology="sites=2,nodes=3",
                backend="disk",
                data_dir=data_dir,
                block_size=512,
            )
        ) as service:
            service.put("doc", b"x" * 2048)
        with pytest.raises(InvalidParametersError):
            StorageService.open(
                StorageConfig(
                    scheme="rs-4-2",
                    topology="sites=3,nodes=2",
                    backend="disk",
                    data_dir=data_dir,
                    block_size=512,
                )
            )
