"""Tests for entangled mirror arrays and RAID-AE (Sec. IV-B)."""

from __future__ import annotations

import pytest

from repro.core.parameters import AEParameters
from repro.exceptions import InvalidParametersError, RepairFailedError
from repro.system.raid import EntangledMirrorArray, RAIDAEArray, SimpleEntanglementChain

from tests.conftest import make_payload


class TestSimpleEntanglementChain:
    def test_single_failures_always_recoverable(self):
        chain = SimpleEntanglementChain()
        for index in range(10):
            chain.append(make_payload(index, 16))
        for position in range(10):
            recovered = chain.recover_data(position, {f"d{position}"})
            assert bytes(recovered) == make_payload(position, 16)

    def test_primitive_form_is_fatal_for_open_chain(self):
        """Two adjacent data blocks plus their shared parity cannot be repaired."""
        chain = SimpleEntanglementChain()
        for index in range(10):
            chain.append(make_payload(index, 16))
        lost = {"d4", "d5", "p4"}
        assert not chain.survives(lost)

    def test_data_parity_pair_in_the_middle_is_survivable(self):
        chain = SimpleEntanglementChain()
        for index in range(10):
            chain.append(make_payload(index, 16))
        assert chain.survives({"d4", "p4"})

    def test_open_chain_extremity_is_weak_closed_chain_is_not(self):
        """Losing the last data block and its parity kills an open chain but
        not a closed one (the motivation for closed chains, Sec. IV-B1)."""
        last = 7
        open_chain = SimpleEntanglementChain(closed=False)
        closed_chain = SimpleEntanglementChain(closed=True)
        for index in range(last + 1):
            open_chain.append(make_payload(index, 16))
            closed_chain.append(make_payload(index, 16))
        lost = {f"d{last}", f"p{last}"}
        assert not open_chain.survives(lost)
        assert closed_chain.survives(lost)

    def test_mixed_block_sizes_rejected(self):
        chain = SimpleEntanglementChain()
        chain.append(b"x" * 8)
        with pytest.raises(InvalidParametersError):
            chain.append(b"y" * 16)


class TestEntangledMirrorArray:
    def test_overhead_equals_mirroring(self):
        array = EntangledMirrorArray(4)
        assert array.storage_overhead == 1.0
        assert array.drive_count == 8

    def test_single_data_drive_failure_is_survivable(self):
        array = EntangledMirrorArray(4)
        for index in range(16):
            array.write(make_payload(index, 16))
        array.fail_drives(data_drives=[2])
        assert array.data_survives()
        assert bytes(array.read(2)) == make_payload(2, 16)

    def test_matching_data_and_parity_drive_failure_loses_data(self):
        array = EntangledMirrorArray(4)
        for index in range(16):
            array.write(make_payload(index, 16))
        array.fail_drives(data_drives=[1, 2], parity_drives=[1, 2])
        assert not array.data_survives()

    def test_block_striping_layout(self):
        array = EntangledMirrorArray(4, layout=EntangledMirrorArray.BLOCK_STRIPING)
        for index in range(8):
            array.write(make_payload(index, 16))
        array.fail_drives(parity_drives=[0, 1, 2, 3])
        # All data drives intact: reads never need recovery.
        assert bytes(array.read(5)) == make_payload(5, 16)

    def test_invalid_configuration(self):
        with pytest.raises(InvalidParametersError):
            EntangledMirrorArray(0)
        with pytest.raises(InvalidParametersError):
            EntangledMirrorArray(4, layout="raid7")


class TestRAIDAE:
    def test_write_penalty_is_alpha_plus_one(self):
        raid = RAIDAEArray(AEParameters.triple(2, 2), disk_count=8, block_size=32)
        assert raid.write_penalty == 4

    def test_requires_enough_disks(self):
        with pytest.raises(InvalidParametersError):
            RAIDAEArray(AEParameters.triple(2, 2), disk_count=3)

    def test_degraded_reads_after_disk_failures(self):
        raid = RAIDAEArray(AEParameters.triple(2, 2), disk_count=8, block_size=32)
        ids = [raid.write(make_payload(index, 32)) for index in range(24)]
        raid.fail_disk(0)
        raid.fail_disk(3)
        for index, data_id in enumerate(ids):
            assert bytes(raid.read(data_id)) == make_payload(index, 32)

    def test_rebuild_after_failure(self):
        raid = RAIDAEArray(AEParameters.triple(2, 2), disk_count=8, block_size=32)
        ids = [raid.write(make_payload(index, 32)) for index in range(24)]
        raid.fail_disk(1)
        report = raid.rebuild()
        assert report.data_loss == 0
        assert not report.unrecovered

    def test_add_disk_without_reencoding(self):
        """Horizontal scaling: existing blocks stay where they are."""
        raid = RAIDAEArray(AEParameters.triple(2, 2), disk_count=6, block_size=32)
        ids = [raid.write(make_payload(index, 32)) for index in range(12)]
        before = {data_id: raid.cluster.location_of(data_id) for data_id in ids}
        new_disk = raid.add_disk()
        assert raid.disk_count == 7
        assert new_disk == 6
        for data_id, location in before.items():
            assert raid.cluster.location_of(data_id) == location
        # New writes can use the added disk.
        for index in range(12, 26):
            raid.write(make_payload(index, 32))
        assert raid.cluster.blocks_at(new_disk)

    def test_rebuild_cost_estimate_is_two_reads_per_block(self):
        raid = RAIDAEArray(AEParameters.triple(2, 5), disk_count=8, block_size=32)
        estimate = raid.rebuild_cost_estimate(10)
        assert estimate == {"blocks_read": 20, "blocks_written": 10}
