"""Tests for the redundancy-scheme protocol, the registry and the codes
import surface."""

from __future__ import annotations

import inspect

import pytest

import repro.codes
import repro.schemes as schemes
from repro.codes.base import StripeCode
from repro.codes.entanglement import EntanglementScheme, ae_scheme_id
from repro.codes.flat_xor import geo_xor_code, raid5_code
from repro.codes.lrc import azure_lrc
from repro.codes.replication import ReplicationCode
from repro.core.parameters import AEParameters
from repro.exceptions import InvalidParametersError, RepairFailedError
from repro.schemes.stripe import StripeBlockId, StripeScheme

#: The identifiers the acceptance criteria require the registry to resolve.
REQUIRED_IDS = [
    "ae-1",
    "ae-2-2-5",
    "ae-3-2-5",
    "rs-10-4",
    "rs-8-2",
    "lrc-azure",
    "lrc-xorbas",
    "rep-2",
    "rep-3",
    "xor-geo",
    "xor-raid5-5",
    "xor-mirror-4",
]


class TestRegistry:
    @pytest.mark.parametrize("scheme_id", REQUIRED_IDS)
    def test_resolves_required_ids(self, scheme_id):
        scheme = schemes.get(scheme_id, block_size=256)
        assert isinstance(scheme, schemes.RedundancyScheme)
        assert scheme.scheme_id == scheme_id
        assert scheme.block_size == 256
        capabilities = scheme.capabilities()
        assert capabilities.scheme_id == scheme_id
        assert capabilities.single_failure_reads >= 1
        assert capabilities.storage_overhead > 0

    def test_every_family_has_an_example(self):
        families = schemes.available()
        assert {"ae", "rs", "lrc", "rep", "xor"} <= set(families)
        for example in families.values():
            assert schemes.get(example, block_size=128) is not None

    def test_fresh_instance_per_get(self):
        assert schemes.get("rs-10-4") is not schemes.get("rs-10-4")

    def test_unknown_family_raises(self):
        with pytest.raises(InvalidParametersError, match="unknown redundancy scheme"):
            schemes.get("zfec-10-4")

    @pytest.mark.parametrize("bad", ["rs-10", "rs-a-b", "ae-2", "lrc-foo", "rep", "xor-raid6-4"])
    def test_malformed_ids_raise(self, bad):
        with pytest.raises(InvalidParametersError):
            schemes.get(bad)

    def test_register_custom_family(self):
        def factory(scheme_id, args, block_size):
            return StripeScheme(ReplicationCode(int(args[0])), scheme_id, block_size)

        schemes.register("mirrortest", factory, "mirrortest-2")
        try:
            scheme = schemes.get("mirrortest-4")
            assert scheme.capabilities().name == "4-way replication"
        finally:
            schemes._FAMILIES.pop("mirrortest")
            schemes._EXAMPLES.pop("mirrortest")

    def test_ae_scheme_id_round_trip(self):
        params = AEParameters.triple(2, 5)
        assert ae_scheme_id(params) == "ae-3-2-5"
        resolved = schemes.get(ae_scheme_id(params))
        assert resolved.params == params
        assert ae_scheme_id(AEParameters.single()) == "ae-1"

    def test_capabilities_match_table4_analytics(self):
        assert schemes.get("ae-3-2-5").capabilities().costs().single_failure_cost == 2
        assert schemes.get("rs-10-4").capabilities().costs().single_failure_cost == 10
        azure = schemes.get("lrc-azure").capabilities().costs()
        assert azure.single_failure_cost == 6  # local group of LRC(12,2,2)
        assert schemes.get("rep-3").capabilities().costs().single_failure_cost == 1
        assert schemes.get("xor-geo").capabilities().costs().single_failure_cost == 2
        assert schemes.get("rs-10-4").capabilities().costs().additional_storage_percent == 40.0
        assert schemes.get("ae-3-2-5").capabilities().costs().additional_storage_percent == 300.0


class TestSchemeProtocol:
    """Scheme-level encode → lose blocks → read/repair, against a plain dict."""

    @pytest.mark.parametrize("scheme_id", REQUIRED_IDS)
    def test_roundtrip_and_single_failure_reads(self, scheme_id):
        block_size = 128
        scheme = schemes.get(scheme_id, block_size=block_size)
        payload = bytes((7 * i + 3) % 251 for i in range(block_size * 24))
        part = scheme.encode(payload)
        assert len(part.data_ids) == 24
        store = {block_id: blob for block_id, blob in part.blocks}

        victim = part.data_ids[12]
        expected = bytes(store[victim])
        del store[victim]

        # Degraded read rebuilds the block through the scheme.
        rebuilt = scheme.read_block(victim, store.get)
        assert bytes(rebuilt) == expected

        # Live repair reads exactly the analytic single-failure cost.
        outcome = scheme.repair({victim}, store.get)
        assert victim in outcome.recovered
        assert bytes(outcome.recovered[victim]) == expected
        assert outcome.blocks_read == scheme.capabilities().single_failure_reads
        assert not outcome.unrecovered

    def test_repair_reports_unrecoverable_blocks(self):
        scheme = schemes.get("xor-geo", block_size=64)
        part = scheme.encode(bytes(range(64)) * 2)
        store = dict(part.blocks)
        # Lose a whole stripe: data 0, data 1 and the parity.
        for block_id in list(store):
            del store[block_id]
        outcome = scheme.repair(set(part.data_ids), store.get)
        assert not outcome.recovered
        assert sorted(outcome.unrecovered) == sorted(part.data_ids)
        with pytest.raises(RepairFailedError):
            scheme.read_block(part.data_ids[0], store.get)

    def test_stripe_padding_completes_final_stripe(self):
        scheme = schemes.get("rs-10-4", block_size=32)
        part = scheme.encode(b"x" * 32 * 7)  # 7 data blocks: one padded stripe
        assert len(part.data_ids) == 7
        assert len(part.blocks) == 14  # 10 data slots (3 padding) + 4 parities
        assert scheme.document_blocks(part.data_ids) == [
            StripeBlockId(0, position) for position in range(14)
        ]

    def test_entanglement_document_blocks_are_metadata_only(self):
        scheme = schemes.get("ae-3-2-5", block_size=32)
        part = scheme.encode(b"y" * 32 * 4)
        assert scheme.document_blocks(part.data_ids) == part.data_ids
        assert not scheme.capabilities().erasable
        assert scheme.capabilities().streaming

    def test_is_data_block(self):
        ae = schemes.get("ae-2-2-5", block_size=32)
        part = ae.encode(b"z" * 64)
        assert all(ae.is_data_block(block_id) for block_id in part.data_ids)
        redundancy = [b for b, _ in part.blocks if b not in set(part.data_ids)]
        assert redundancy and not any(ae.is_data_block(b) for b in redundancy)

        rs = schemes.get("rs-8-2", block_size=32)
        assert rs.is_data_block(StripeBlockId(0, 7))
        assert not rs.is_data_block(StripeBlockId(0, 8))


class TestRepairReadPlans:
    """StripeCode.repair_read_positions drives the measured repair costs."""

    def test_rs_reads_any_k(self):
        code = schemes.get("rs-10-4").code
        plan = code.repair_read_positions(3, [p for p in range(14) if p != 3])
        assert plan is not None and len(plan) == 10

    def test_replication_reads_one_copy(self):
        code = ReplicationCode(3)
        assert len(code.repair_read_positions(0, [1, 2])) == 1

    def test_lrc_prefers_local_group(self):
        code = azure_lrc()  # LRC(12,2,2), groups of 6
        plan = code.repair_read_positions(2, [p for p in range(16) if p != 2])
        assert sorted(plan) == [0, 1, 3, 4, 5, 12]  # group 0 members + local parity
        # Local parity down: falls back to a decodable global plan.
        degraded = code.repair_read_positions(
            2, [p for p in range(16) if p not in (2, 12)]
        )
        assert degraded is not None and code.can_decode(degraded)

    def test_flat_xor_reads_smallest_equation(self):
        code = geo_xor_code()
        assert sorted(code.repair_read_positions(0, [1, 2])) == [1, 2]
        code5 = raid5_code(5)
        assert len(code5.repair_read_positions(1, [0, 2, 3, 4, 5])) == 5


class TestImportSurface:
    """`from repro.codes import *` stays in sync with the registry."""

    def test_all_entries_resolve(self):
        for name in repro.codes.__all__:
            assert getattr(repro.codes, name) is not None

    def test_all_is_sorted_and_unique(self):
        exported = list(repro.codes.__all__)
        assert exported == sorted(exported)
        assert len(exported) == len(set(exported))

    def test_public_submodule_definitions_are_exported(self):
        import repro.codes.base
        import repro.codes.entanglement
        import repro.codes.flat_xor
        import repro.codes.gf256
        import repro.codes.lrc
        import repro.codes.reed_solomon
        import repro.codes.replication

        submodules = [
            repro.codes.base,
            repro.codes.entanglement,
            repro.codes.flat_xor,
            repro.codes.gf256,
            repro.codes.lrc,
            repro.codes.reed_solomon,
            repro.codes.replication,
        ]
        exported = set(repro.codes.__all__)
        for module in submodules:
            for name, value in vars(module).items():
                if name.startswith("_"):
                    continue
                if not (inspect.isclass(value) or inspect.isfunction(value)):
                    continue
                if getattr(value, "__module__", None) != module.__name__:
                    continue
                assert name in exported, f"{module.__name__}.{name} missing from repro.codes.__all__"

    def test_registry_families_map_to_exported_classes(self):
        """Every family the registry serves resolves to a class exported
        from repro.codes."""
        exported = set(repro.codes.__all__)
        for required in ("EntanglementScheme", "ReedSolomonCode",
                         "LocalReconstructionCode", "ReplicationCode",
                         "FlatXorCode", "StripeScheme", "StripeBlockId",
                         "get_scheme", "register_scheme", "available_schemes",
                         "DEFAULT_SCHEME", "RedundancyScheme"):
            assert required in exported
        for family, example in schemes.available().items():
            scheme = schemes.get(example, block_size=64)
            if isinstance(scheme, StripeScheme):
                assert type(scheme.code).__name__ in exported
            else:
                assert type(scheme).__name__ in exported

    def test_star_import_namespace(self):
        namespace = {}
        exec("from repro.codes import *", namespace)
        assert "get_scheme" in namespace
        assert "EntanglementScheme" in namespace
        assert "StripeCode" in namespace
        assert issubclass(namespace["ReedSolomonCode"], StripeCode)
        assert isinstance(namespace["get_scheme"]("ae-1"), EntanglementScheme)
