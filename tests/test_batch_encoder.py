"""Tests for the batched XOR kernels and the vectorised batch encoder.

The contract under test is the one the batched ingest pipeline rests on:
``BatchEntangler`` must produce parities bit-identical to the sequential
``Entangler`` (same block ids, same payloads, same strand-head state) for any
AE(alpha, s, p) setting and any batch split, because the two encoders are
interchangeable front-ends of the same lattice (paper, Sec. III-B).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.blocks import DataId, ParityId
from repro.core.encoder import BatchEntangler, EncodedBatch, Entangler
from repro.core.parameters import AEParameters, StrandClass
from repro.core.position import strand_label, strand_labels
from repro.core.xor import (
    as_payload_matrix,
    xor_accumulate,
    xor_into,
    xor_rows,
)
from repro.exceptions import BlockSizeMismatchError

BLOCK = 64


def random_matrix(rows: int, cols: int = BLOCK, seed: int = 7) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(rows, cols), dtype=np.uint8)


class TestPayloadMatrix:
    def test_bytes_exact_multiple_is_zero_copy(self):
        raw = bytes(range(256)) * 2
        matrix = as_payload_matrix(raw, 128)
        assert matrix.shape == (4, 128)
        assert matrix.tobytes() == raw
        # The conversion reshapes a view over the buffer, no copy.
        assert matrix.base is not None

    def test_bytes_with_padding(self):
        matrix = as_payload_matrix(b"abcde", 4)
        assert matrix.shape == (2, 4)
        assert matrix[0].tobytes() == b"abcd"
        assert matrix[1].tobytes() == b"e\x00\x00\x00"

    def test_empty_input(self):
        assert as_payload_matrix(b"", 32).shape == (0, 32)
        assert as_payload_matrix([], 32).shape == (0, 32)

    def test_sequence_of_payloads(self):
        matrix = as_payload_matrix([b"ab", b"cdef"], 4)
        assert matrix.shape == (2, 4)
        assert matrix[0].tobytes() == b"ab\x00\x00"

    def test_2d_array_passthrough(self):
        source = random_matrix(3, 16)
        matrix = as_payload_matrix(source, 16)
        assert matrix is source or matrix.base is source

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(BlockSizeMismatchError):
            as_payload_matrix(random_matrix(2, 8), 16)


class TestKernels:
    def test_xor_into_is_in_place(self):
        a = random_matrix(1, 32)[0].copy()
        b = random_matrix(1, 32, seed=8)[0]
        expected = np.bitwise_xor(a, b)
        result = xor_into(a, b)
        assert result is a
        assert np.array_equal(a, expected)

    def test_xor_into_size_mismatch(self):
        with pytest.raises(BlockSizeMismatchError):
            xor_into(np.zeros(8, dtype=np.uint8), np.zeros(9, dtype=np.uint8))

    def test_xor_rows_broadcasts(self):
        matrix = random_matrix(5, 32)
        vector = random_matrix(1, 32, seed=9)[0]
        result = xor_rows(matrix, vector)
        for row in range(5):
            assert np.array_equal(result[row], np.bitwise_xor(matrix[row], vector))

    def test_xor_accumulate_matches_running_xor(self):
        matrix = random_matrix(6, 32)
        expected = np.zeros_like(matrix)
        running = np.zeros(32, dtype=np.uint8)
        for row in range(6):
            running = np.bitwise_xor(running, matrix[row])
            expected[row] = running
        result = xor_accumulate(matrix.copy())
        assert np.array_equal(result, expected)

    def test_xor_accumulate_with_initial(self):
        matrix = random_matrix(4, 32)
        head = random_matrix(1, 32, seed=11)[0]
        expected = xor_accumulate(matrix.copy())
        expected = np.bitwise_xor(expected, head)  # XOR distributes over the scan
        result = xor_accumulate(matrix.copy(), initial=head)
        assert np.array_equal(result, expected)


class TestStrandLabelsVectorised:
    @pytest.mark.parametrize("cls", list(StrandClass))
    def test_matches_scalar_labels(self, any_params, cls):
        if cls is not StrandClass.HORIZONTAL and any_params.p == 0:
            pytest.skip("AE(1) has no helical strands")
        indexes = np.arange(1, 200, dtype=np.int64)
        vectorised = strand_labels(indexes, cls, any_params)
        scalar = [strand_label(int(i), cls, any_params) for i in indexes]
        assert vectorised.tolist() == scalar


class TestBatchEquivalence:
    """`BatchEntangler` must be bit-identical to the sequential encoder."""

    @pytest.mark.parametrize(
        "spec", ["AE(1,-,-)", "AE(2,2,2)", "AE(2,2,5)", "AE(3,2,5)", "AE(3,5,5)", "AE(3,1,4)", "AE(4,2,5)"]
    )
    @pytest.mark.parametrize("splits", [[(0, 41)], [(0, 1), (1, 2), (2, 41)], [(0, 13), (13, 41)]])
    def test_bit_identical_to_sequential(self, spec, splits):
        params = AEParameters.parse(spec)
        data = random_matrix(41)
        sequential = Entangler(params, BLOCK)
        batched = BatchEntangler(params, BLOCK)
        expected = [sequential.entangle(row) for row in data]
        produced = []
        for lo, hi in splits:
            produced.extend(batched.entangle_batch(data[lo:hi]).encoded_blocks())
        assert len(produced) == len(expected)
        for want, got in zip(expected, produced):
            assert want.data_id == got.data_id
            assert np.array_equal(want.data.payload, got.data.payload)
            assert [p.block_id for p in want.parities] == [p.block_id for p in got.parities]
            for wp, gp in zip(want.parities, got.parities):
                assert np.array_equal(wp.payload, gp.payload)
        # The in-memory strand heads agree, so encoding can continue either way.
        assert sequential._heads.snapshot() == batched._heads.snapshot()

    def test_mixing_single_and_batched_calls(self, hec_params):
        data = random_matrix(20)
        sequential = Entangler(hec_params, BLOCK)
        mixed = BatchEntangler(hec_params, BLOCK)
        expected = [sequential.entangle(row) for row in data]
        produced = [mixed.entangle(data[0])]
        produced.extend(mixed.entangle_batch(data[1:15]).encoded_blocks())
        produced.append(mixed.entangle(data[15]))
        produced.extend(mixed.entangle_batch(data[16:]).encoded_blocks())
        for want, got in zip(expected, produced):
            assert want.data_id == got.data_id
            for wp, gp in zip(want.parities, got.parities):
                assert np.array_equal(wp.payload, gp.payload)

    def test_empty_batch(self, hec_params):
        encoder = BatchEntangler(hec_params, BLOCK)
        batch = encoder.entangle_batch(b"")
        assert batch.block_count == 0
        assert encoder.blocks_encoded == 0

    def test_encode_bytes_batched_round_trip(self, hec_params):
        encoder = BatchEntangler(hec_params, BLOCK)
        payload = b"entangled document content " * 11
        batch, length = encoder.encode_bytes_batched(payload)
        assert length == len(payload)
        joined = batch.data.tobytes()[:length]
        assert joined == payload


class TestEncodedBatch:
    def test_iter_blocks_order_and_ids(self, hec_params):
        encoder = BatchEntangler(hec_params, BLOCK)
        batch = encoder.entangle_batch(random_matrix(4))
        blocks = list(batch.iter_blocks())
        assert len(blocks) == 4 * (1 + hec_params.alpha)
        assert blocks[0][0] == DataId(1)
        assert blocks[1][0] == ParityId(1, StrandClass.HORIZONTAL)
        # Payloads are views into the batch matrices, not copies.
        assert blocks[0][1].base is not None

    def test_parity_ids_match_iter_blocks(self, hec_params):
        encoder = BatchEntangler(hec_params, BLOCK)
        batch = encoder.entangle_batch(random_matrix(5))
        from_iter = [bid for bid, _ in batch.iter_blocks() if isinstance(bid, ParityId)]
        from_property = [pid for row in zip(*batch.parity_ids) for pid in row]
        assert from_iter == from_property


class TestCrashRecoveryInterop:
    def test_restore_after_batched_encode(self, hec_params):
        """A sequential encoder can restore from blocks a batch encoder wrote."""
        batched = BatchEntangler(hec_params, BLOCK)
        store = {}
        for lo, hi in [(0, 9), (9, 23)]:
            batch = batched.entangle_batch(random_matrix(23)[lo:hi])
            for block_id, payload in batch.iter_blocks():
                store[block_id] = payload
        recovered = Entangler(hec_params, BLOCK)
        recovered.restore(23, store.get)
        assert recovered._heads.snapshot() == batched._heads.snapshot()
