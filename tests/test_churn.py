"""Tests for the churn simulator (repro.simulation.churn)."""

from __future__ import annotations

import pytest

from repro.core.parameters import AEParameters
from repro.exceptions import InvalidParametersError
from repro.simulation.churn import (
    ChurnConfig,
    ChurnResult,
    ChurnSample,
    ChurnSimulator,
    availability_nines,
    compare_schemes_under_churn,
)
from repro.simulation.traces import NodeSession, SessionTrace, p2p_session_trace


def flat_trace(node_count: int = 30, horizon: float = 48.0) -> SessionTrace:
    """Every node online for the whole horizon."""
    sessions = [
        NodeSession(node=node, start=0.0, end=horizon) for node in range(node_count)
    ]
    return SessionTrace(node_count=node_count, horizon_hours=horizon, sessions=sessions)


def one_down_trace(node_count: int = 30, horizon: float = 48.0) -> SessionTrace:
    """Node 0 is offline for the second half of the horizon."""
    sessions = [NodeSession(node=0, start=0.0, end=horizon / 2)]
    sessions += [
        NodeSession(node=node, start=0.0, end=horizon) for node in range(1, node_count)
    ]
    return SessionTrace(node_count=node_count, horizon_hours=horizon, sessions=sessions)


class TestNines:
    def test_values(self):
        assert availability_nines(0.9) == pytest.approx(1.0)
        assert availability_nines(0.999) == pytest.approx(3.0)
        assert availability_nines(1.0) == 9.0
        assert availability_nines(0.0) == pytest.approx(0.0)

    def test_rejects_out_of_range(self):
        with pytest.raises(InvalidParametersError):
            availability_nines(1.5)
        with pytest.raises(InvalidParametersError):
            availability_nines(-0.1)


class TestConfigAndSamples:
    def test_config_validation(self):
        with pytest.raises(InvalidParametersError):
            ChurnConfig(data_blocks=0)
        with pytest.raises(InvalidParametersError):
            ChurnConfig(sample_every_hours=0.0)

    def test_sample_availability(self):
        sample = ChurnSample(
            time_hours=0.0, offline_locations=2, unavailable_data=50, data_blocks=1000
        )
        assert sample.availability == pytest.approx(0.95)
        empty = ChurnSample(0.0, 0, 0, 0)
        assert empty.availability == 1.0

    def test_result_summaries(self):
        result = ChurnResult(
            scheme="test",
            storage_overhead_percent=100.0,
            samples=[
                ChurnSample(0.0, 0, 0, 100),
                ChurnSample(6.0, 1, 10, 100),
                ChurnSample(12.0, 1, 10, 100),
            ],
            final_data_loss=0,
        )
        assert result.data_blocks == 100
        assert result.min_availability == pytest.approx(0.9)
        assert result.mean_availability == pytest.approx((1.0 + 0.9 + 0.9) / 3)
        # Outage integral: 0 * 6h + 10 * 6h.
        assert result.unavailability_block_hours == pytest.approx(60.0)
        row = result.as_row()
        assert row["scheme"] == "test"

    def test_empty_result_defaults(self):
        result = ChurnResult(scheme="x", storage_overhead_percent=0.0)
        assert result.mean_availability == 1.0
        assert result.min_availability == 1.0
        assert result.unavailability_block_hours == 0.0
        assert result.data_blocks == 0


class TestSimulator:
    CONFIG = ChurnConfig(data_blocks=2_000, sample_every_hours=12.0, seed=1)

    def test_perfect_trace_gives_full_availability(self):
        simulator = ChurnSimulator(flat_trace(), self.CONFIG)
        for spec in (AEParameters.triple(2, 5), (8, 2), 3):
            result = simulator.run(spec)
            assert result.mean_availability == 1.0
            assert result.final_data_loss == 0

    def test_single_offline_node_is_mostly_tolerated(self):
        simulator = ChurnSimulator(one_down_trace(), self.CONFIG)
        for spec in (AEParameters.triple(2, 5), (8, 2), 3):
            result = simulator.run(spec)
            # One missing location out of 30 leaves at most a tiny unlucky
            # residue (blocks whose repair inputs landed on the same location).
            assert result.min_availability > 0.99

    def test_churny_trace_ranks_schemes_by_redundancy(self):
        """Under heavy churn, AE(3,2,5) must not be less available than AE(1)."""
        trace = p2p_session_trace(
            40, 240.0, mean_session_hours=8.0, mean_downtime_hours=8.0, seed=21
        )
        simulator = ChurnSimulator(trace, ChurnConfig(data_blocks=2_000, seed=2))
        weak = simulator.run(AEParameters.single())
        strong = simulator.run(AEParameters.triple(2, 5))
        assert strong.mean_availability >= weak.mean_availability
        assert strong.unavailability_block_hours <= weak.unavailability_block_hours

    def test_erasure_codes_beat_replication_at_equal_overhead(self):
        """The Blake & Rodrigues / combinatorial-effect shape: when peers are
        reasonably available, codes with 100% overhead (RS(5,5), AE(2,2,5))
        beat 2-way replication (also 100% overhead)."""
        trace = p2p_session_trace(
            50, 240.0, mean_session_hours=18.0, mean_downtime_hours=6.0, seed=13
        )
        simulator = ChurnSimulator(trace, ChurnConfig(data_blocks=2_000, seed=3))
        replication2 = simulator.run(2)
        rs55 = simulator.run((5, 5))
        ae2 = simulator.run(AEParameters.double(2, 5))
        assert rs55.mean_availability >= replication2.mean_availability
        assert ae2.mean_availability >= replication2.mean_availability

    def test_run_many_and_compare(self):
        trace = p2p_session_trace(30, 96.0, seed=5)
        config = ChurnConfig(data_blocks=1_000, sample_every_hours=24.0, seed=4)
        rows = compare_schemes_under_churn(trace, [AEParameters.single(), (5, 5), 2], config)
        assert len(rows) == 3
        schemes = {row["scheme"] for row in rows}
        assert schemes == {"AE(1,-,-)", "RS(5,5)", "2-way replication"}
        for row in rows:
            assert 0.0 <= row["mean availability"] <= 1.0
            assert row["data loss at end"] >= 0
