"""Tests for the scheme-agnostic discrete-event simulation engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codes.lrc import azure_lrc
from repro.core.parameters import AEParameters
from repro.exceptions import InvalidParametersError
from repro.simulation.engine import (
    LatticeSimulation,
    SimulationEngine,
    SimulationEvent,
    StripeSimulation,
    build_simulation,
    normalise_events,
    sample_disaster_locations,
    simulate_disasters,
)
from repro.simulation.experiments import ExperimentConfig, sample_disaster
from repro.simulation.metrics import describe_scheme, scheme_id_for
from repro.simulation.traces import p2p_session_trace
from repro.storage.failures import ChurnTrace, CorrelatedFailureDomains, Disaster
from repro.storage.maintenance import MaintenanceBudget, MaintenancePolicy

CONFIG = ExperimentConfig.quick(20_000)

#: Fixed-seed metrics recorded from the pre-engine per-scheme models
#: (AELatticeModel / RSStripeModel / ReplicationModel at seed 7, 20,000
#: blocks, 100 locations).  The engine must reproduce them exactly.
GOLDEN = {
    ("ae-3-2-5", "full", 10): dict(data_loss=0, vulnerable_data=0, rounds=3, repaired_data=1945),
    ("ae-3-2-5", "full", 30): dict(data_loss=0, vulnerable_data=0, rounds=6, repaired_data=5978),
    ("ae-3-2-5", "full", 50): dict(data_loss=20, vulnerable_data=0, rounds=16, repaired_data=10023),
    ("ae-3-2-5", "minimal", 10): dict(data_loss=13, vulnerable_data=112, rounds=1, repaired_data=1932),
    ("ae-3-2-5", "minimal", 30): dict(data_loss=769, vulnerable_data=1821, rounds=1, repaired_data=5209),
    ("ae-3-2-5", "minimal", 50): dict(data_loss=4233, vulnerable_data=4214, rounds=1, repaired_data=5810),
    ("rs-10-4", "minimal", 10): dict(data_loss=67, vulnerable_data=103, repaired_data=1859, blocks_read=12380),
    ("rs-10-4", "minimal", 30): dict(data_loss=3387, vulnerable_data=4833, repaired_data=2535, blocks_read=11190),
    ("rs-10-4", "minimal", 50): dict(data_loss=9521, vulnerable_data=8719, repaired_data=453, blocks_read=1760),
    ("rep-3", "minimal", 10): dict(data_loss=19, vulnerable_data=495),
    ("rep-3", "minimal", 30): dict(data_loss=504, vulnerable_data=3705),
    ("rep-3", "minimal", 50): dict(data_loss=2525, vulnerable_data=7590),
}


class TestGoldenEquivalence:
    """The engine reproduces the legacy models' fixed-seed metrics."""

    @pytest.mark.parametrize("key", sorted(GOLDEN, key=str))
    def test_fixed_seed_metrics(self, key):
        scheme_id, policy_name, percent = key
        offset = {10: 0, 30: 2, 50: 4}[percent]
        failed = sample_disaster(CONFIG, percent / 100.0, offset)
        engine = SimulationEngine(
            scheme_id, CONFIG.data_blocks, CONFIG.location_count, CONFIG.seed
        )
        outcome = engine.run_outcome(failed, policy=MaintenancePolicy(policy_name))
        for metric, expected in GOLDEN[key].items():
            got = getattr(outcome, metric if metric != "rounds" else "rounds")
            assert got == expected, (key, metric, got, expected)


class TestBuildSimulation:
    def test_registry_ids_resolve_to_adapters(self):
        assert isinstance(build_simulation("ae-3-2-5", 100), LatticeSimulation)
        for scheme_id in ("rs-10-4", "rep-3", "lrc-azure", "xor-geo"):
            assert isinstance(build_simulation(scheme_id, 100), StripeSimulation)

    def test_legacy_specs_resolve(self):
        assert isinstance(build_simulation(AEParameters.triple(2, 5), 100), LatticeSimulation)
        assert isinstance(build_simulation((10, 4), 100), StripeSimulation)
        assert isinstance(build_simulation(3, 100), StripeSimulation)
        assert isinstance(build_simulation(azure_lrc(), 100), StripeSimulation)

    def test_placement_shape(self):
        sim = build_simulation("lrc-azure", 1000, location_count=50, seed=1)
        assert sim.data_blocks == 1000
        assert sim.redundancy_blocks == sim.stripes * 4  # LRC(12,2,2): l + r = 4
        # The histogram counts stored blocks, including the zero padding that
        # completes the final stripe (like the legacy RS model's report).
        assert sim.blocks_per_location().sum() == sim.stripes * sim.code.n

    def test_rejects_unknown_scheme(self):
        with pytest.raises(InvalidParametersError):
            build_simulation("bogus-1", 100)
        with pytest.raises(InvalidParametersError):
            build_simulation(object(), 100)


class TestStripeSimulationGenericPath:
    """LRC / flat XOR stripes go through the code's own repair plans."""

    def test_lrc_single_failure_reads_local_group(self):
        code = azure_lrc()
        sim = StripeSimulation(code, data_blocks=10 * code.k, location_count=400, seed=3)
        # Craft a deterministic placement: stripe 0 puts its first data block
        # on location 0, everything else (and every other stripe) elsewhere.
        sim.block_location[:] = np.arange(1, sim.block_location.size + 1).reshape(
            sim.block_location.shape
        )
        sim.block_location[0, 0] = 0
        state = sim.evaluate(np.array([0]))
        assert bool(state.decodable[0])
        assert bool(state.single_failure[0])
        # The cheapest plan for one data failure is the local group:
        # group members (k/l - 1 = 5) plus the local parity.
        assert int(state.stripe_reads[0]) == code.single_failure_cost
        assert int(state.stripe_reads[1:].sum()) == 0

    def test_lrc_multi_failure_reads_union_of_plans(self):
        """Two failures in different local groups cost two local repairs."""
        code = azure_lrc()
        sim = StripeSimulation(code, data_blocks=5 * code.k, location_count=400, seed=3)
        sim.block_location[:] = np.arange(1, sim.block_location.size + 1).reshape(
            sim.block_location.shape
        )
        # Stripe 0 loses data block 0 (group 0) and data block 6 (group 1).
        sim.block_location[0, 0] = 0
        sim.block_location[0, 6] = 0
        state = sim.evaluate(np.array([0]))
        assert bool(state.decodable[0])
        # Each failure is repaired from its own local group (6 reads each,
        # disjoint): 12 reads total, not 6.
        assert int(state.stripe_reads[0]) == 2 * code.single_failure_cost

    def test_xor_geo_loses_data_only_with_two_failures(self):
        sim = StripeSimulation(
            build_simulation("xor-geo", 600, location_count=30, seed=2).code,
            600,
            location_count=30,
            seed=2,
        )
        state = sim.evaluate(np.arange(0))
        assert int(state.missing_count.sum()) == 0
        outcome = sim.run_repair(np.arange(15))
        # Any stripe with >= 2 of its 3 blocks down is undecodable.
        assert outcome.data_loss > 0
        assert outcome.data_loss + outcome.repaired_data == outcome.initially_missing_data

    def test_vulnerability_orders_policies(self):
        """NONE >= MINIMAL >= FULL vulnerable data, for a locality code."""
        sim = build_simulation("lrc-xorbas", 5_000, location_count=50, seed=5)
        failed = np.arange(10)
        by_policy = {
            policy: sim.run_repair(failed, policy=policy).vulnerable_data
            for policy in MaintenancePolicy
        }
        assert by_policy[MaintenancePolicy.NONE] >= by_policy[MaintenancePolicy.MINIMAL]
        assert by_policy[MaintenancePolicy.MINIMAL] >= by_policy[MaintenancePolicy.FULL]

    def test_none_policy_repairs_nothing(self):
        sim = build_simulation("rs-10-4", 5_000, location_count=50, seed=5)
        outcome = sim.run_repair(np.arange(10), policy=MaintenancePolicy.NONE)
        assert outcome.repaired_data == 0
        assert outcome.rounds == 0
        assert outcome.data_loss == outcome.initially_missing_data


class TestMaintenanceBudget:
    def test_ae_max_rounds_caps_rounds(self):
        engine = SimulationEngine("ae-3-2-5", 20_000, 100, seed=7)
        failed = sample_disaster(CONFIG, 0.5, 4)
        unlimited = engine.run_outcome(failed)
        assert unlimited.rounds > 1
        capped = engine.run_outcome(failed, budget=MaintenanceBudget(max_rounds=1))
        assert capped.rounds == 1
        assert capped.repaired_data <= unlimited.repaired_data
        # Conservation: every initially missing data block is either repaired,
        # deferred (repairable but over budget) or counted as loss.
        assert (
            capped.repaired_data + capped.deferred_data + capped.data_loss
            == capped.initially_missing_data
        )
        assert capped.deferred_data > 0

    def test_ae_per_round_cap(self):
        engine = SimulationEngine("ae-3-2-5", 10_000, 100, seed=7)
        failed = sample_disaster(CONFIG, 0.3, 2)
        capped = engine.run_outcome(
            failed, budget=MaintenanceBudget(max_repairs_per_round=100, max_rounds=3)
        )
        assert all(count <= 100 for count in capped.repaired_per_round)
        assert capped.rounds <= 3

    def test_stripe_budget_defers_repairs(self):
        engine = SimulationEngine("rs-10-4", 20_000, 100, seed=7)
        failed = sample_disaster(CONFIG, 0.3, 2)
        unlimited = engine.run_outcome(failed, policy=MaintenancePolicy.MINIMAL)
        capped = engine.run_outcome(
            failed,
            policy=MaintenancePolicy.MINIMAL,
            budget=MaintenanceBudget(max_repairs_per_round=500),
        )
        assert capped.repaired_data <= 500
        assert capped.repaired_data + capped.deferred_data == unlimited.repaired_data
        assert capped.data_loss == unlimited.data_loss

    def test_none_policy_ignores_budget(self):
        """Under NONE nothing is 'deferred': raw exposure is reported as-is."""
        engine = SimulationEngine("ae-3-2-5", 5_000, 50, seed=3)
        plain = engine.run_outcome(0.3, policy=MaintenancePolicy.NONE)
        budgeted = engine.run_outcome(
            0.3,
            policy=MaintenancePolicy.NONE,
            budget=MaintenanceBudget(max_repairs_per_round=10),
        )
        assert budgeted.data_loss == plain.data_loss
        assert budgeted.deferred_data == 0

    def test_deferred_repairs_reach_the_metrics_row(self):
        engine = SimulationEngine("rs-10-4", 20_000, 100, seed=7)
        failed = sample_disaster(CONFIG, 0.3, 2)
        metrics = engine.run_disaster(
            failed, budget=MaintenanceBudget(max_repairs_per_round=500)
        )
        assert metrics.deferred_data > 0
        assert metrics.as_row()["deferred repairs (blocks)"] == metrics.deferred_data

    def test_stripe_budget_caps_redundancy_repairs_too(self):
        engine = SimulationEngine("rs-10-4", 20_000, 100, seed=7)
        failed = sample_disaster(CONFIG, 0.3, 2)
        # A forbidden first round repairs nothing at all (like the lattice).
        frozen = engine.run_outcome(failed, budget=MaintenanceBudget(max_rounds=0))
        assert frozen.repaired_data == 0
        assert frozen.repaired_redundancy == 0
        assert frozen.rounds == 0
        # Data repairs take priority; leftover allowance goes to parities.
        capped = engine.run_outcome(
            failed, budget=MaintenanceBudget(max_repairs_per_round=500)
        )
        assert capped.repaired_data + capped.repaired_redundancy <= 500


class TestEventLoop:
    def test_normalise_disaster_and_trace(self):
        disaster = Disaster(failed_locations=(1, 2, 3))
        events = normalise_events(disaster)
        assert events == [SimulationEvent(time=0.0, fail=(1, 2, 3), label="disaster")]
        trace = ChurnTrace.poisson(20, 5, 0.2, 0.5, seed=1)
        assert len(normalise_events(trace)) == 5
        mixed = normalise_events([disaster, trace])
        assert len(mixed) == 6

    def test_correlated_domains_feed_the_loop(self):
        domains = CorrelatedFailureDomains.evenly(40, 4)
        disaster = domains.domain_disaster([0, 2])
        engine = SimulationEngine("rs-10-4", 2_000, 40, seed=7)
        metrics = engine.run_disaster(disaster)
        assert metrics.disaster_fraction == pytest.approx(0.5)
        assert metrics.data_loss >= 0

    def test_session_trace_round_trips_through_loop(self):
        trace = p2p_session_trace(30, 48.0, seed=9)
        engine = SimulationEngine("rep-3", 1_000, 30, seed=7)
        run = engine.run_events(trace)
        assert run.steps
        assert 0.0 <= run.min_availability <= 1.0
        row = run.as_row()
        assert row["scheme"] == "3-way replication"

    def test_restores_bring_data_back(self):
        events = [
            SimulationEvent(time=0.0, fail=tuple(range(20))),
            SimulationEvent(time=1.0, restore=tuple(range(20))),
        ]
        engine = SimulationEngine("rs-10-4", 2_000, 40, seed=7)
        run = engine.run_events(events)
        assert run.steps[0].unavailable_data > 0
        assert run.steps[1].unavailable_data == 0

    def test_fraction_input_samples_a_disaster(self):
        engine = SimulationEngine("rs-10-4", 2_000, 40, seed=7)
        metrics = engine.run_disaster(0.5)
        assert metrics.disaster_fraction == pytest.approx(0.5)

    def test_event_loop_honours_the_engine_policy(self):
        """NONE measures raw exposure; FULL measures decodability."""
        events = [SimulationEvent(time=0.0, fail=tuple(range(10)))]
        exposed = SimulationEngine(
            "rs-10-4", 2_000, 100, seed=7, policy=MaintenancePolicy.NONE
        ).run_events(events)
        served = SimulationEngine(
            "rs-10-4", 2_000, 100, seed=7, policy=MaintenancePolicy.FULL
        ).run_events(events)
        # A 10% disaster leaves ~10% of data offline but almost all of it
        # decodable, so raw exposure must strictly exceed unserveable data.
        assert exposed.steps[0].unavailable_data > served.steps[0].unavailable_data

    def test_event_loop_rejects_out_of_range_locations(self):
        engine = SimulationEngine("rs-10-4", 1_000, 40, seed=7)
        events = [SimulationEvent(time=0.0, fail=(150,))]
        with pytest.raises(InvalidParametersError, match="150"):
            engine.run_events(events)

    def test_event_loop_rejects_string_input(self):
        engine = SimulationEngine("rs-10-4", 1_000, 40, seed=7)
        with pytest.raises(InvalidParametersError, match="ChurnTrace.load"):
            engine.run_events("trace.json")


class TestSchemeIdUnification:
    def test_scheme_id_for_normalises_legacy_specs(self):
        assert scheme_id_for("AE-3-2-5") == "ae-3-2-5"
        assert scheme_id_for(AEParameters.triple(2, 5)) == "ae-3-2-5"
        assert scheme_id_for(AEParameters.single()) == "ae-1"
        assert scheme_id_for((10, 4)) == "rs-10-4"
        assert scheme_id_for(3) == "rep-3"
        with pytest.raises(InvalidParametersError):
            scheme_id_for(1.5)

    def test_describe_scheme_covers_registry_families(self):
        for scheme_id, kind, reads in (
            ("ae-3-2-5", "ae", 2),
            ("rs-10-4", "rs", 10),
            ("lrc-azure", "lrc", 6),
            ("lrc-xorbas", "lrc", 5),
            ("rep-3", "replication", 1),
            ("xor-geo", "xor", 2),
        ):
            description = describe_scheme(scheme_id)
            assert description.kind == kind
            assert description.single_failure_cost == reads
            assert description.scheme_id == scheme_id

    def test_repair_model_for_lrc_and_xor(self):
        from repro.analysis.repair_cost import repair_model_for

        lrc = repair_model_for("lrc-azure")
        assert lrc.kind == "lrc"
        assert lrc.single_failure_cost(4096).blocks_read == 6
        xor = repair_model_for("xor-geo")
        assert xor.kind == "xor"
        assert xor.single_failure_cost(4096).blocks_read == 2


class TestSimulateDisasters:
    def test_acceptance_matrix(self):
        """Six schemes x 10-50% disasters all produce metrics (ISSUE 3)."""
        scheme_ids = ("ae-3-2-5", "rs-10-4", "rep-3", "lrc-azure", "lrc-xorbas", "xor-geo")
        fractions = (0.10, 0.30, 0.50)
        results = simulate_disasters(
            scheme_ids, data_blocks=2_000, location_count=40, seed=7, fractions=fractions
        )
        assert len(results) == len(scheme_ids) * len(fractions)
        names = {metrics.scheme for metrics in results}
        assert names == {
            "AE(3,2,5)", "RS(10,4)", "3-way replication",
            "LRC(12,2,2)", "LRC(10,2,4)", "FlatXOR(2,1)",
        }
        for metrics in results:
            assert 0 <= metrics.data_loss <= metrics.data_blocks
            assert 0 <= metrics.vulnerable_data <= metrics.data_blocks

    def test_sampling_matches_experiment_runner(self):
        sampled = sample_disaster_locations(100, 0.3, 7, 2)
        legacy = sample_disaster(CONFIG, 0.3, 2)
        assert np.array_equal(sampled, legacy)


class TestLegacyShims:
    def test_shims_subclass_the_engine_adapters(self):
        from repro.simulation.lattice_model import AELatticeModel
        from repro.simulation.replication_model import ReplicationModel
        from repro.simulation.rs_model import RSStripeModel

        assert issubclass(AELatticeModel, LatticeSimulation)
        assert issubclass(RSStripeModel, StripeSimulation)
        assert issubclass(ReplicationModel, StripeSimulation)
        for shim in (AELatticeModel, RSStripeModel, ReplicationModel):
            assert "deprecated" in (shim.__doc__ or "").lower()

    def test_rs_shim_keeps_the_parity_free_edge_case(self):
        """The legacy model accepted m = 0 (striping without redundancy)."""
        from repro.simulation.rs_model import RSStripeModel

        model = RSStripeModel(5, 0, 1_000, location_count=40, seed=3)
        outcome = model.run_repair(np.arange(4))
        # Without parities nothing is repairable: every missing block is lost.
        assert outcome.repaired_data == 0
        assert outcome.data_loss == outcome.initially_missing_data
        assert outcome.data_loss > 0
        # The m=0 edge case also survives the unified spec vocabulary.
        description = describe_scheme((5, 0))
        assert description.name == "RS(5,0)"
        assert description.additional_storage_percent == 0.0
        sim = build_simulation((5, 0), 1_000, location_count=40, seed=3)
        assert sim.run_repair(np.arange(4)).data_loss == outcome.data_loss
