"""Tests for the scheme-agnostic StorageService front-end.

The core property (issue acceptance): for every registered scheme family,
write → fail locations → repair → byte-exact read holds through the same
API.  Plus delete with placement-index cleanup, the multi-scheme compare
path and the EntangledStorageSystem back-compat shim.
"""

from __future__ import annotations

import random

import pytest

from repro.core.parameters import AEParameters
from repro.exceptions import UnknownBlockError
from repro.schemes.stripe import StripeBlockId
from repro.storage.cluster import StorageCluster
from repro.system.compare import compare_schemes, single_failure_reads_measured
from repro.system.entangled_store import EntangledStorageSystem
from repro.system.service import (
    ServiceRepairReport,
    StorageConfig,
    StorageService,
)


def make_service(scheme_id: str, **overrides) -> StorageService:
    config = StorageConfig(
        scheme=scheme_id, location_count=48, block_size=256, seed=5
    )
    return StorageService.open(config, **overrides)


def seeded_payload(seed: int, length: int) -> bytes:
    return random.Random(seed).randbytes(length)


#: (scheme id, locations to fail) - failure counts each scheme's redundancy
#: and the seeded placement can absorb.
ROUNDTRIP_CASES = [
    ("ae-3-2-5", 6),
    ("ae-2-2-5", 3),
    ("ae-1", 1),
    ("rs-10-4", 2),
    ("rs-8-2", 1),
    ("lrc-azure", 2),
    ("lrc-xorbas", 3),
    ("rep-3", 2),
    ("rep-2", 1),
    ("xor-raid5-5", 1),
    ("xor-geo", 1),
]


class TestCrossSchemeRoundTrips:
    """Property-style seeded write → fail → repair → byte-exact read."""

    @pytest.mark.parametrize("scheme_id,fail_count", ROUNDTRIP_CASES)
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_write_fail_repair_read(self, scheme_id, fail_count, seed):
        service = make_service(scheme_id, seed=seed)
        rng = random.Random(seed * 1000 + fail_count)
        # Unaligned length: exercises final-block padding for every family.
        payload = rng.randbytes(256 * 40 + rng.randrange(1, 256))
        service.put("doc", payload)

        failed = rng.sample(range(48), fail_count)
        service.fail_locations(failed)
        report = service.repair()
        assert isinstance(report, ServiceRepairReport)
        assert report.scheme == scheme_id
        assert report.data_loss == 0, report.summary()

        # Byte-exact with the failed locations still down (repair moved the
        # payloads to healthy locations; anything left rides degraded reads).
        assert service.get("doc") == payload
        service.restore_locations()
        assert service.get("doc") == payload

    @pytest.mark.parametrize("scheme_id", ["ae-3-2-5", "rs-10-4", "lrc-azure", "rep-3"])
    def test_stream_roundtrip_unaligned(self, scheme_id):
        service = make_service(scheme_id, batch_blocks=8)
        chunks = [b"a" * 100, b"b" * 2048, b"c" * 77, b"", b"d" * 513]
        document = service.put_stream("stream", iter(chunks))
        assert document.length == sum(len(c) for c in chunks)
        assert b"".join(service.get_stream("stream")) == b"".join(chunks)

    @pytest.mark.parametrize("scheme_id", ["ae-3-2-5", "rs-10-4", "rep-3"])
    def test_empty_document(self, scheme_id):
        service = make_service(scheme_id)
        service.put("empty", b"")
        assert service.get("empty") == b""

    def test_read_is_get_alias(self):
        service = make_service("rs-8-2")
        service.put("doc", b"alias" * 100)
        assert service.read("doc") == service.get("doc")

    def test_unknown_document_raises(self):
        service = make_service("rep-2")
        with pytest.raises(UnknownBlockError):
            service.get("nope")


class TestRepairAccounting:
    @pytest.mark.parametrize("scheme_id", ["ae-3-2-5", "rs-10-4", "lrc-azure", "rep-3", "xor-geo"])
    def test_measured_single_failure_reads_match_analytics(self, scheme_id):
        service = make_service(scheme_id)
        document = service.put("doc", seeded_payload(9, 256 * 60))
        reads = single_failure_reads_measured(service, document.data_ids, victims=3)
        expected = service.capabilities.single_failure_reads
        assert reads == [expected] * len(reads)

    def test_repair_report_counts_reads(self):
        service = make_service("rs-10-4")
        service.put("doc", seeded_payload(3, 256 * 40))
        service.fail_locations([0, 1])
        report = service.repair()
        if report.repaired_count:
            assert report.blocks_read > 0
            assert report.rounds >= 1
        assert service.status().unavailable_blocks == 0  # relocated off the failed nodes

    def test_compare_rows_match_table4(self):
        results = compare_schemes(
            ("ae-3-2-5", "rs-10-4", "lrc-azure", "rep-3"),
            data_blocks=60,
            block_size=256,
            location_count=40,
            fail_locations=2,
            seed=7,
            victims=2,
        )
        for result in results:
            assert result.reads_match_analytic
            row = result.as_row()
            assert row["1-failure reads (measured)"] == row["1-failure reads (analytic)"]


class TestDelete:
    def test_stripe_delete_removes_blocks_and_placement_index(self):
        service = make_service("rs-10-4")
        payload = seeded_payload(21, 256 * 25)  # 25 blocks: padded final stripe
        document = service.put("doc", payload)
        cluster = service.cluster
        before = cluster.stats().blocks
        assert before == 3 * 14  # 3 stripes of n=14, padding stored

        removed = service.delete("doc")
        assert len(removed) == before
        assert cluster.stats().blocks == 0
        assert cluster.stats().bytes_stored == 0
        for block_id in document.data_ids:
            assert not cluster.knows(block_id)
        with pytest.raises(UnknownBlockError):
            service.get("doc")

    def test_delete_only_touches_the_named_document(self):
        service = make_service("lrc-azure")
        keep = seeded_payload(4, 256 * 24)
        service.put("keep", keep)
        service.put("drop", seeded_payload(5, 256 * 24))
        service.delete("drop")
        assert service.get("keep") == keep

    def test_entanglement_delete_is_metadata_only(self):
        service = make_service("ae-3-2-5")
        service.put("doc", seeded_payload(6, 256 * 10))
        blocks_before = service.cluster.stats().blocks
        removed = service.delete("doc")
        assert removed == []  # lattice is append-only
        assert service.cluster.stats().blocks == blocks_before
        with pytest.raises(UnknownBlockError):
            service.get("doc")

    def test_delete_unknown_document_raises(self):
        service = make_service("rep-3")
        with pytest.raises(UnknownBlockError):
            service.delete("ghost")

    def test_cluster_delete_block_with_downed_location(self):
        cluster = StorageCluster(4)
        from repro.core.blocks import Block

        block = Block(StripeBlockId(0, 0), b"\x01" * 16)
        location = cluster.put_block(block)
        cluster.fail_locations([location])
        # Directory entry goes away even though the store is unreachable.
        assert cluster.delete_block(block.block_id) == location
        assert not cluster.knows(block.block_id)
        with pytest.raises(UnknownBlockError):
            cluster.delete_block(block.block_id)

    def test_cluster_delete_blocks_bulk(self):
        cluster = StorageCluster(4)
        from repro.core.blocks import Block

        ids = [StripeBlockId(0, position) for position in range(6)]
        for block_id in ids:
            cluster.put_block(Block(block_id, b"\x02" * 8))
        assert cluster.delete_blocks(ids + [StripeBlockId(9, 9)]) == 6
        assert len(cluster) == 0


class TestConfigAndStatus:
    def test_open_accepts_scheme_instance(self):
        import repro.schemes as schemes

        instance = schemes.get("rs-8-2", block_size=128)
        service = StorageService.open(StorageConfig(scheme=instance, location_count=10))
        assert service.scheme is instance
        assert service.block_size == 128

    def test_open_keyword_overrides(self):
        service = StorageService.open(scheme="rep-2", location_count=7, block_size=64)
        assert service.cluster.location_count == 7
        assert service.block_size == 64
        assert service.capabilities.kind == "replication"

    def test_invalid_batch_blocks(self):
        with pytest.raises(ValueError):
            StorageService.open(scheme="rep-2", batch_blocks=0)

    def test_status_snapshot(self):
        service = make_service("lrc-xorbas")
        service.put("doc", seeded_payload(8, 256 * 20))
        status = service.status()
        assert status.scheme == "lrc-xorbas"
        assert status.documents == 1
        assert status.blocks == 2 * 16  # 2 stripes of n=16
        assert status.unavailable_blocks == 0
        assert "lrc-xorbas" in status.summary()


class TestEntangledStoreShim:
    def test_shim_is_a_storage_service(self):
        system = EntangledStorageSystem(AEParameters.triple(2, 5), location_count=20)
        assert isinstance(system, StorageService)
        assert system.scheme.scheme_id == "ae-3-2-5"

    def test_shim_old_surface_still_works(self):
        params = AEParameters.triple(2, 5)
        system = EntangledStorageSystem(params, location_count=30, block_size=128)
        payload = seeded_payload(12, 128 * 20 + 17)
        system.put("legacy", payload)
        assert system.params == params
        assert system.lattice.size == 21
        assert system.read("legacy") == payload
        system.fail_locations(range(3))
        report = system.repair()  # ClusterRepairReport, policy-driven
        assert hasattr(report, "policy")
        assert system.verify_document("legacy", payload)
        status = system.status()
        assert status.data_blocks == 21
        assert status.documents == 1

    def test_shim_append_block(self):
        system = EntangledStorageSystem(AEParameters.single(), location_count=5, block_size=64)
        encoded = system.append_block(b"\x07" * 64)
        assert system.lattice.size == 1
        assert bytes(system.get_block(encoded.data_id)) == b"\x07" * 64


class TestReviewRegressions:
    def test_padding_blocks_are_not_data_loss(self):
        # rs-4-2: 5 data blocks -> stripe 1 holds 1 real block + 3 padding.
        service = make_service("rs-4-2")
        payload = seeded_payload(31, 256 * 5)
        service.put("doc", payload)
        scheme = service.scheme
        padded = [StripeBlockId(1, position) for position in range(1, 4)]
        assert not any(scheme.is_data_block(block_id) for block_id in padded)
        assert all(scheme.is_data_block(block_id) for block_id in [StripeBlockId(1, 0)])
        # Losing the padding blocks outright must not register as data loss:
        # mask them from the repair path and check the report directly.
        outcome = scheme.repair(set(padded), lambda _block_id: None)
        assert sorted(outcome.unrecovered) == padded
        report_loss = sum(1 for b in outcome.unrecovered if scheme.is_data_block(b))
        assert report_loss == 0
        assert service.get("doc") == payload

    def test_put_same_name_reclaims_old_blocks(self):
        service = make_service("rs-4-2")
        service.put("doc", seeded_payload(1, 256 * 8))
        blocks_after_first = service.cluster.stats().blocks
        service.put("doc", seeded_payload(2, 256 * 8))
        # Same footprint: the first version's stripes were deleted.
        assert service.cluster.stats().blocks == blocks_after_first
        service.delete("doc")
        assert service.cluster.stats().blocks == 0

    def test_put_stream_same_name_reclaims_old_blocks(self):
        service = make_service("lrc-azure", batch_blocks=4)
        service.put_stream("doc", [seeded_payload(3, 256 * 12)])
        blocks_after_first = service.cluster.stats().blocks
        service.put_stream("doc", [seeded_payload(4, 256 * 12)])
        assert service.cluster.stats().blocks == blocks_after_first

    def test_ae_put_same_name_keeps_lattice(self):
        service = make_service("ae-2-2-5")
        service.put("doc", seeded_payload(5, 256 * 4))
        before = service.cluster.stats().blocks
        service.put("doc", seeded_payload(6, 256 * 4))
        assert service.cluster.stats().blocks == before + 4 * 3  # append-only
