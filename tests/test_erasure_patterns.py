"""Tests for minimal erasure patterns: the fault-tolerance results of Sec. V-A."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.erasure_patterns import (
    ErasurePattern,
    find_minimal_erasure,
    is_irrecoverable,
    is_minimal_erasure,
    minimal_erasure_size,
    minimal_pattern_for_nodes,
    primitive_form_one,
    primitive_form_two,
    recoverable_blocks,
)
from repro.core.parameters import AEParameters, StrandClass


class TestPatternValidation:
    def test_primitive_form_one_is_minimal(self):
        """Fig. 6-I: two adjacent nodes plus their shared edge, size 3."""
        params = AEParameters.single()
        pattern = primitive_form_one()
        assert pattern.size == 3
        assert is_irrecoverable(pattern, params)
        assert is_minimal_erasure(pattern, params)

    def test_primitive_form_two_is_minimal(self):
        """Fig. 6-II: the extended form with every connecting edge erased."""
        params = AEParameters.single()
        pattern = primitive_form_two(gap=4)
        assert pattern.size == 6  # the paper's |ME(2)| = 6 example
        assert is_irrecoverable(pattern, params)
        assert is_minimal_erasure(pattern, params)

    def test_partial_pattern_is_recoverable(self):
        """Removing one block from a primitive form makes it recoverable."""
        params = AEParameters.single()
        pattern = primitive_form_one()
        reduced = ErasurePattern(
            data_nodes=pattern.data_nodes,
            parity_edges=frozenset(),
        )
        assert recoverable_blocks(reduced, params)
        assert not is_irrecoverable(reduced, params)

    def test_primitive_forms_are_innocuous_for_alpha_2(self):
        """Fig. 7: with alpha >= 2 the primitive forms no longer cause loss."""
        params = AEParameters(2, 1, 1)
        pattern = primitive_form_one()
        assert not is_irrecoverable(pattern, params)

    def test_single_data_block_is_always_recoverable(self, any_params):
        pattern = ErasurePattern(data_nodes=frozenset({500}), parity_edges=frozenset())
        assert not is_irrecoverable(pattern, any_params)
        assert find_minimal_erasure(any_params, 1).size is None

    def test_describe_mentions_size(self):
        pattern = primitive_form_one()
        assert "|ME(2)| = 3" in pattern.describe(AEParameters.single())

    def test_shifted_pattern_stays_minimal(self):
        params = AEParameters.single()
        shifted = primitive_form_one().shifted(40)
        assert is_minimal_erasure(shifted, params)


class TestPaperValues:
    """|ME(2)| values quoted in the paper (Figs. 6, 7 and Sec. I)."""

    @pytest.mark.parametrize(
        "spec, expected",
        [
            ((1, 1, 0), 3),
            ((2, 1, 1), 4),
            ((3, 1, 1), 5),
            ((3, 1, 4), 8),
            ((3, 4, 4), 14),
        ],
    )
    def test_me2_matches_paper(self, spec, expected):
        params = AEParameters(*spec)
        result = find_minimal_erasure(params, 2)
        assert result.size == expected
        assert is_minimal_erasure(result.pattern, params)

    def test_me2_for_hec_setting(self):
        """AE(3,2,5): |ME(2)| = 2 + 2s + p = 11."""
        assert minimal_erasure_size(AEParameters.triple(2, 5), 2) == 11

    @pytest.mark.parametrize("spec", [(2, 2, 2), (2, 2, 4), (2, 3, 4)])
    def test_me4_is_eight_for_double_entanglements(self, spec):
        """Fig. 9: the square pattern pins |ME(4)| at 8 for alpha = 2."""
        assert minimal_erasure_size(AEParameters(*spec), 4) == 8

    def test_me4_found_patterns_are_minimal(self):
        params = AEParameters(3, 2, 2)
        result = find_minimal_erasure(params, 4)
        assert result.size is not None
        assert is_minimal_erasure(result.pattern, params)


class TestChainConstruction:
    def test_minimal_pattern_for_explicit_nodes(self):
        """Two co-strand nodes of AE(3,4,4) need p + 2s = 12 connecting edges."""
        params = AEParameters(3, 4, 4)
        anchor = 401
        pattern = minimal_pattern_for_nodes([anchor, anchor + 16], params)
        assert pattern is not None
        assert pattern.size == 14
        assert is_irrecoverable(pattern, params)

    def test_infeasible_node_set_returns_none(self):
        """Nodes that do not share a strand cannot form an ME with 2 data blocks."""
        params = AEParameters(3, 4, 4)
        assert minimal_pattern_for_nodes([401, 402 + 1], params) is None

    @given(st.integers(min_value=1, max_value=12))
    @settings(max_examples=12, deadline=None)
    def test_found_me2_patterns_validate(self, offset):
        """Property: every pattern the searcher returns is a true minimal erasure."""
        params = AEParameters(3, 2, 2 + (offset % 4))
        result = find_minimal_erasure(params, 2)
        assert result.pattern is not None
        assert is_irrecoverable(result.pattern, params)
        assert is_minimal_erasure(result.pattern, params)
