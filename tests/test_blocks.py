"""Tests for block identities, payload blocks and file splitting."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.blocks import (
    Block,
    DataId,
    EncodedBlock,
    ParityId,
    block_ids,
    is_data,
    is_parity,
    join_blocks,
    split_into_blocks,
)
from repro.core.parameters import StrandClass
from repro.exceptions import BlockSizeMismatchError


class TestIdentities:
    def test_data_and_parity_ids_are_distinct(self):
        assert DataId(3) != ParityId(3, StrandClass.HORIZONTAL)
        assert is_data(DataId(3))
        assert is_parity(ParityId(3, StrandClass.HORIZONTAL))
        assert not is_data(ParityId(3, StrandClass.HORIZONTAL))

    def test_ids_are_hashable_and_ordered(self):
        ids = {DataId(1), DataId(2), DataId(1)}
        assert len(ids) == 2
        assert DataId(1) < DataId(2)
        assert ParityId(1, StrandClass.HORIZONTAL) != ParityId(1, StrandClass.RIGHT_HANDED)

    def test_labels(self):
        assert DataId(26).label() == "d26"
        assert ParityId(26, StrandClass.RIGHT_HANDED).label() == "p[26,rh]"


class TestBlock:
    def test_block_normalises_payload(self):
        block = Block(DataId(1), b"\x01\x02")
        assert block.size == 2
        assert block.to_bytes() == b"\x01\x02"

    def test_checksum_and_digest_are_stable(self):
        one = Block(DataId(1), b"same content")
        two = Block(DataId(2), b"same content")
        assert one.checksum() == two.checksum()
        assert one.digest() == two.digest()
        assert Block(DataId(3), b"other").digest() != one.digest()

    def test_encoded_block_accessors(self):
        encoded = EncodedBlock(
            data=Block(DataId(5), b"x"),
            parities=[Block(ParityId(5, StrandClass.HORIZONTAL), b"y")],
        )
        assert encoded.data_id == DataId(5)
        assert encoded.parity_ids == [ParityId(5, StrandClass.HORIZONTAL)]
        assert len(encoded.all_blocks()) == 2
        assert block_ids(encoded.all_blocks())[0] == DataId(5)


class TestSplitting:
    @given(st.binary(min_size=0, max_size=2000), st.integers(min_value=1, max_value=128))
    def test_split_join_roundtrip(self, data, block_size):
        chunks = split_into_blocks(data, block_size)
        assert join_blocks(chunks, len(data)) == data
        assert all(chunk.size == block_size for chunk in chunks)

    def test_split_block_count(self):
        assert len(split_into_blocks(b"", 16)) == 0
        assert len(split_into_blocks(b"a" * 16, 16)) == 1
        assert len(split_into_blocks(b"a" * 17, 16)) == 2

    def test_invalid_block_size(self):
        with pytest.raises(BlockSizeMismatchError):
            split_into_blocks(b"abc", 0)

    def test_join_empty(self):
        assert join_blocks([]) == b""
