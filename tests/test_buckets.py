"""Tests for the sealed-bucket write scheduler (Fig. 10)."""

from __future__ import annotations

import pytest

from repro.core.buckets import WriteScheduler, compare_write_parallelism
from repro.core.parameters import AEParameters
from repro.exceptions import InvalidParametersError


class TestWriteScheduler:
    def test_s_equals_p_seals_everything_at_arrival(self):
        """Fig. 10 (bottom): with s = p all parities needed are in memory."""
        report = WriteScheduler(AEParameters(3, 5, 5)).simulate(columns=40)
        assert report.sealed_fraction == pytest.approx(1.0)
        assert report.waiting_buckets == 0
        assert report.deferred_parities == 0

    def test_p_larger_than_s_defers_wrap_around_buckets(self):
        """Fig. 10 (top): with p > s the wrap-around rows must wait or fetch."""
        report = WriteScheduler(AEParameters(3, 5, 10)).simulate(columns=40)
        assert report.sealed_fraction < 1.0
        assert report.deferred_parities > 0
        # Exactly the top (RH input) and bottom (LH input) rows are affected.
        affected_rows = {bucket.index % 5 for bucket in report.buckets if bucket.deferred_inputs}
        assert affected_rows <= {1, 0}

    def test_wider_memory_window_restores_full_sealing(self):
        """Keeping p - s + 1 columns of parities in memory removes the waits."""
        params = AEParameters(3, 5, 10)
        window = params.p - params.s + 1
        wide = WriteScheduler(params, window_columns=window).simulate(columns=40)
        assert wide.sealed_fraction == pytest.approx(1.0)

    def test_single_entanglement_always_seals(self):
        report = WriteScheduler(AEParameters.single()).simulate(columns=20)
        assert report.sealed_fraction == pytest.approx(1.0)

    def test_parities_per_step_accounts_for_all_parities(self):
        params = AEParameters(3, 4, 4)
        report = WriteScheduler(params).simulate(columns=20, skip_warmup=False)
        total = sum(report.parities_per_step().values())
        assert total == params.alpha * params.s * 20

    def test_summary_and_memory(self):
        report = WriteScheduler(AEParameters(3, 5, 10)).simulate(columns=30)
        assert "AE(3,5,10)" in report.summary()
        assert report.memory_requirement_blocks() == 3 * 5 * 1

    def test_invalid_arguments(self):
        with pytest.raises(InvalidParametersError):
            WriteScheduler(AEParameters(3, 5, 5), window_columns=0)
        with pytest.raises(InvalidParametersError):
            WriteScheduler(AEParameters(3, 5, 5)).simulate(columns=0)


def test_compare_write_parallelism_orders_settings():
    reports = compare_write_parallelism(3, 5, [5, 10], columns=40)
    assert reports[5].sealed_fraction >= reports[10].sealed_fraction
