"""Tests for failure models: disasters, correlated domains and churn."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.blocks import Block, DataId
from repro.exceptions import InvalidParametersError
from repro.storage.cluster import StorageCluster
from repro.storage.failures import (
    ChurnTrace,
    CorrelatedFailureDomains,
    Disaster,
    PAPER_DISASTER_SIZES,
    disaster_for_fraction,
    disaster_series,
)


class TestDisasters:
    def test_fraction_controls_size(self):
        for fraction in PAPER_DISASTER_SIZES:
            disaster = disaster_for_fraction(100, fraction)
            assert disaster.size == int(round(100 * fraction))

    def test_apply_and_revert(self):
        cluster = StorageCluster(10)
        for index in range(1, 21):
            cluster.put_block(Block(DataId(index), b"x"))
        disaster = disaster_for_fraction(10, 0.3, np.random.default_rng(1))
        disaster.apply(cluster)
        assert len(cluster.unavailable_locations()) == 3
        disaster.revert(cluster)
        assert not cluster.unavailable_locations()

    def test_destructive_disaster_cannot_be_reverted(self):
        cluster = StorageCluster(10)
        cluster.put_block(Block(DataId(1), b"x"), location_id=0)
        disaster = Disaster(failed_locations=(0,), destructive=True)
        disaster.apply(cluster)
        disaster.revert(cluster)
        assert 0 in cluster.unavailable_locations()

    def test_series_matches_paper_sizes(self):
        series = disaster_series(100)
        assert [d.size for d in series] == [10, 20, 30, 40, 50]

    def test_invalid_fraction(self):
        with pytest.raises(InvalidParametersError):
            disaster_for_fraction(10, 1.5)


class TestCorrelatedDomains:
    def test_even_split(self):
        domains = CorrelatedFailureDomains.evenly(10, 3)
        sizes = [len(domain) for domain in domains.domains]
        assert sorted(sizes) == [3, 3, 4]
        assert sum(sizes) == 10

    def test_domain_disaster(self):
        domains = CorrelatedFailureDomains.evenly(12, 4)
        disaster = domains.domain_disaster([0, 2])
        assert disaster.size == 6

    def test_invalid_domain_count(self):
        with pytest.raises(InvalidParametersError):
            CorrelatedFailureDomains.evenly(4, 5)


class TestChurn:
    def test_poisson_trace_is_reproducible(self):
        one = ChurnTrace.poisson(20, 50, 0.05, 0.2, seed=3)
        two = ChurnTrace.poisson(20, 50, 0.05, 0.2, seed=3)
        assert [e.departures for e in one.events] == [e.departures for e in two.events]
        assert len(one.events) == 50

    def test_replay_changes_cluster_state(self):
        cluster = StorageCluster(20)
        trace = ChurnTrace.poisson(20, 30, departure_rate=0.2, return_rate=0.0, seed=1)
        trace.replay(cluster)
        assert cluster.unavailable_locations()

    def test_invalid_rates(self):
        with pytest.raises(InvalidParametersError):
            ChurnTrace.poisson(10, 10, -0.1, 0.1)
