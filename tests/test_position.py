"""Tests for lattice geometry helpers (rows, columns, categories, strand labels)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.parameters import AEParameters, NodeCategory, StrandClass
from repro.core.position import (
    LatticePosition,
    column_count,
    helical_strand_label,
    node_at,
    node_category,
    node_column,
    node_row,
    nodes_in_column,
    strand_label,
)
from repro.core.rules import output_index
from repro.exceptions import LatticeBoundsError


class TestRowsAndColumns:
    def test_basic_layout(self):
        # AE(3,5,5): column 6 holds nodes 26..30 (Fig. 4).
        assert node_row(26, 5) == 1
        assert node_column(26, 5) == 6
        assert node_row(30, 5) == 5
        assert list(nodes_in_column(6, 5)) == [26, 27, 28, 29, 30]

    @given(st.integers(min_value=1, max_value=10_000), st.integers(min_value=1, max_value=12))
    def test_node_at_inverts_row_column(self, index, s):
        assert node_at(node_row(index, s), node_column(index, s), s) == index

    def test_column_count(self):
        assert column_count(0, 5) == 0
        assert column_count(1, 5) == 1
        assert column_count(5, 5) == 1
        assert column_count(6, 5) == 2

    def test_invalid_arguments(self):
        with pytest.raises(LatticeBoundsError):
            node_row(0, 5)
        with pytest.raises(LatticeBoundsError):
            node_at(6, 1, 5)
        with pytest.raises(LatticeBoundsError):
            node_at(1, 0, 5)


class TestCategories:
    def test_categories_follow_modulo_rule(self):
        assert node_category(26, 5) is NodeCategory.TOP
        assert node_category(27, 5) is NodeCategory.CENTRAL
        assert node_category(30, 5) is NodeCategory.BOTTOM

    def test_s1_every_node_is_top(self):
        for index in range(1, 20):
            assert node_category(index, 1) is NodeCategory.TOP

    def test_s2_has_no_central(self):
        categories = {node_category(index, 2) for index in range(1, 20)}
        assert categories == {NodeCategory.TOP, NodeCategory.BOTTOM}

    def test_lattice_position_dataclass(self):
        position = LatticePosition.of(26, AEParameters(3, 5, 5))
        assert (position.row, position.column, position.category) == (
            1,
            6,
            NodeCategory.TOP,
        )


class TestStrandLabels:
    @given(
        st.sampled_from([(2, 2, 5), (3, 2, 5), (3, 3, 4), (3, 5, 5), (3, 1, 4)]),
        st.integers(min_value=1, max_value=500),
    )
    @settings(max_examples=150, deadline=None)
    def test_labels_invariant_along_strands(self, spec, index):
        """Walking forward along a strand never changes its label."""
        params = AEParameters(*spec)
        for strand_class in params.strand_classes:
            label = strand_label(index, strand_class, params)
            successor = output_index(index, strand_class, params)
            assert strand_label(successor, strand_class, params) == label

    def test_label_ranges(self):
        params = AEParameters(3, 5, 5)
        horizontal = {strand_label(i, StrandClass.HORIZONTAL, params) for i in range(1, 200)}
        right = {strand_label(i, StrandClass.RIGHT_HANDED, params) for i in range(1, 200)}
        left = {strand_label(i, StrandClass.LEFT_HANDED, params) for i in range(1, 200)}
        assert horizontal == set(range(5))
        assert right == set(range(5))
        assert left == set(range(5))

    def test_helical_label_rejected_without_helical_strands(self):
        with pytest.raises(LatticeBoundsError):
            helical_strand_label(10, StrandClass.RIGHT_HANDED, AEParameters.single())
