"""Tests for the sharded document namespace (repro.system.sharding).

The federation harness of ISSUE 9: cross-shard equivalence against a single
service for every required scheme family (including durable close/reopen of
every shard), scatter-gather reads, rebalancing on join/leave with the
minimal-movement and byte-exactness acceptance bounds, per-shard fault
injection (location disasters and a torn-WAL crash image on one shard), and
the durable federation manifest's crash-resume protocol.
"""

from __future__ import annotations

import os
import random
import shutil

import pytest

from repro.exceptions import (
    InvalidParametersError,
    PlacementError,
    ReproError,
    UnknownBlockError,
)
from repro.system.service import StorageConfig, StorageService
from repro.system.sharding import FEDERATION_NAME, ShardedStorageService
from tests.test_schemes import REQUIRED_IDS


def seeded_payload(seed: int, length: int) -> bytes:
    return random.Random(seed).randbytes(length)


def workload(doc_count: int = 12, block_size: int = 256) -> dict:
    """Deterministic documents of varied sizes (sub-block to multi-block)."""
    return {
        f"doc-{index:03d}": seeded_payload(
            index, (index % 7 + 1) * block_size + index * 13 % block_size
        )
        for index in range(doc_count)
    }


def open_federation(scheme_id: str = "ae-3-2-5", shards: int = 3, **overrides):
    config = StorageConfig(
        scheme=scheme_id, location_count=24, block_size=256, seed=5, shards=shards
    )
    return ShardedStorageService.open(config, **overrides)


class TestConfigWiring:
    def test_plain_service_rejects_sharded_configs(self):
        with pytest.raises(InvalidParametersError):
            StorageService.open(StorageConfig(scheme="ae-1", shards=2))
        # shards=1 / None are the unsharded service itself.
        StorageService.open(StorageConfig(scheme="ae-1", shards=1))

    def test_federation_rejects_instances_and_bad_counts(self):
        from repro.schemes import get as get_scheme

        with pytest.raises(InvalidParametersError):
            ShardedStorageService.open(
                StorageConfig(scheme=get_scheme("ae-1"), shards=2)
            )
        with pytest.raises(InvalidParametersError):
            ShardedStorageService.open(StorageConfig(scheme="ae-1", shards=0))

    def test_shards_default_to_one(self):
        federation = ShardedStorageService.open(StorageConfig(scheme="ae-1"))
        assert federation.shard_count == 1
        federation.put("solo", b"payload")
        assert federation.get("solo") == b"payload"


class TestCrossShardEquivalence:
    """Same documents, sharded vs single service: byte-exact through every
    read path, for every required scheme family."""

    @pytest.mark.parametrize("scheme_id", REQUIRED_IDS)
    def test_sharded_reads_match_single_service(self, scheme_id):
        documents = workload()
        single = StorageService.open(
            StorageConfig(scheme=scheme_id, location_count=24, block_size=256, seed=5)
        )
        federation = open_federation(scheme_id)
        for name, payload in documents.items():
            single.put(name, payload)
            federation.put(name, payload)
        for name, payload in documents.items():
            assert federation.get(name) == single.get(name) == payload
            assert b"".join(federation.get_stream(name)) == payload
        # Bulk path too (scatter-gather vs sequential single-service gets).
        names = sorted(documents)
        assert federation.get_many(names) == [documents[n] for n in names]
        federation.close()

    @pytest.mark.parametrize("scheme_id", REQUIRED_IDS)
    def test_durable_federation_survives_close_and_reopen(self, scheme_id, tmp_path):
        documents = workload(doc_count=6)
        root = str(tmp_path / "federation")
        config = StorageConfig(
            scheme=scheme_id,
            location_count=12,
            block_size=256,
            seed=5,
            shards=3,
            backend="disk",
            data_dir=root,
        )
        federation = ShardedStorageService.open(config)
        for name, payload in documents.items():
            federation.put(name, payload)
        placement = {name: federation.shard_for(name) for name in documents}
        federation.close()
        # Reopen adopts the stored membership (no shards= needed).
        reopened = ShardedStorageService.open(
            StorageConfig(
                scheme=scheme_id,
                location_count=12,
                block_size=256,
                seed=5,
                backend="disk",
                data_dir=root,
            )
        )
        assert reopened.shard_count == 3
        for name, payload in documents.items():
            assert reopened.get(name) == payload
            assert b"".join(reopened.get_stream(name)) == payload
            assert reopened.shard_for(name) == placement[name]
        reopened.close()


class TestScatterGather:
    def test_get_many_returns_request_order(self):
        federation = open_federation()
        documents = workload()
        for name, payload in documents.items():
            federation.put(name, payload)
        names = sorted(documents, reverse=True)
        assert federation.get_many(names) == [documents[n] for n in names]
        # The groups genuinely span multiple shards.
        owners = {federation.shard_for(name) for name in names}
        assert len(owners) > 1

    def test_get_many_raises_on_unknown_documents(self):
        federation = open_federation()
        federation.put("known", b"x" * 600)
        with pytest.raises(UnknownBlockError):
            federation.get_many(["known", "missing"])

    def test_scatter_stream_reassembles_every_document(self):
        federation = open_federation()
        documents = workload()
        for name, payload in documents.items():
            federation.put(name, payload)
        reassembled: dict = {}
        for name, chunk in federation.scatter_stream(sorted(documents)):
            reassembled[name] = reassembled.get(name, b"") + chunk
        assert reassembled == documents

    def test_scatter_stream_backpressures_with_a_tiny_buffer(self):
        federation = open_federation()
        documents = workload(doc_count=8)
        for name, payload in documents.items():
            federation.put(name, payload)
        reassembled: dict = {}
        for name, chunk in federation.scatter_stream(
            sorted(documents), buffer_chunks=1
        ):
            reassembled[name] = reassembled.get(name, b"") + chunk
        assert reassembled == documents

    def test_scatter_stream_survives_early_consumer_exit(self):
        federation = open_federation()
        for name, payload in workload().items():
            federation.put(name, payload)
        stream = federation.scatter_stream(sorted(workload()))
        next(stream)
        stream.close()  # producers must unblock and join
        federation.close()

    def test_scatter_stream_propagates_errors(self):
        federation = open_federation()
        federation.put("known", b"x" * 600)
        with pytest.raises(UnknownBlockError):
            for _ in federation.scatter_stream(["known", "missing"]):
                pass


class TestRebalance:
    def test_join_moves_a_bounded_fraction_and_stays_byte_exact(self):
        shards = 4
        federation = open_federation(shards=shards)
        documents = workload(doc_count=60)
        for name, payload in documents.items():
            federation.put(name, payload)
        before = {name: federation.get(name) for name in documents}
        assert before == documents
        report = federation.add_shard()
        # Acceptance bound: a join of an M-shard federation moves at most
        # 1.5/(M+1) of the documents.
        assert report.reason == "join"
        assert 0 < report.moved_fraction <= 1.5 / (shards + 1)
        assert report.total_documents == len(documents)
        # Every move targets the new shard (ring-delta only).
        new_shard = federation.shard_ids[-1]
        for name, (source, target) in report.moves.items():
            assert target == new_shard
            assert source != new_shard
            assert federation.shard_for(name) == new_shard
        for name, payload in documents.items():
            assert federation.get(name) == payload
            assert b"".join(federation.get_stream(name)) == payload

    def test_leave_rehomes_exactly_the_departing_documents(self):
        federation = open_federation(shards=4)
        documents = workload(doc_count=60)
        for name, payload in documents.items():
            federation.put(name, payload)
        victim = federation.shard_ids[1]
        victims_docs = set(federation.shard(victim).documents)
        assert victims_docs, "the departing shard should own some documents"
        report = federation.remove_shard(victim)
        assert set(report.moves) == victims_docs
        assert victim not in federation.shard_ids
        for name, payload in documents.items():
            assert federation.get(name) == payload
        assert len(federation.documents) == len(documents)

    def test_reads_stay_byte_exact_mid_move(self):
        """A document parked on a non-owner shard (the mid-move / crashed
        state) is still served byte-exact, and a resume re-homes it."""
        federation = open_federation(shards=3)
        payload = seeded_payload(99, 2000)
        federation.put("wanderer", payload)
        owner = federation.shard_for("wanderer")
        other = next(s for s in federation.shard_ids if s != owner)
        # Recreate the crash window: copy committed on the wrong shard,
        # owner's copy already gone.
        federation.shard(other).put_stream(
            "wanderer", federation.shard(owner).get_stream("wanderer")
        )
        federation.shard(owner).delete("wanderer")
        assert federation.get("wanderer") == payload  # fallback locate
        report = federation.rebalance(reason="resume")
        assert report.moves == {"wanderer": (other, owner)}
        assert federation.shard(owner).has_document("wanderer")
        assert federation.get("wanderer") == payload

    def test_move_resume_with_both_copies_present(self):
        """Crash after the target committed but before the source deleted:
        the resume drops the stale source copy without re-streaming."""
        federation = open_federation(shards=3)
        payload = seeded_payload(7, 1500)
        federation.put("dup", payload)
        owner = federation.shard_for("dup")
        other = next(s for s in federation.shard_ids if s != owner)
        federation.shard(other).put_stream("dup", iter([payload]))
        report = federation.rebalance(reason="resume")
        assert report.moves == {"dup": (other, owner)}
        assert report.bytes_moved == 0  # no re-stream, just the stale delete
        assert not federation.shard(other).has_document("dup")
        assert federation.get("dup") == payload

    def test_overwrite_drops_stale_copies(self):
        federation = open_federation(shards=3)
        federation.put("doc", b"a" * 600)
        owner = federation.shard_for("doc")
        other = next(s for s in federation.shard_ids if s != owner)
        federation.shard(other).put("doc", b"stale" * 100)
        federation.put("doc", b"b" * 600)
        assert not federation.shard(other).has_document("doc")
        assert federation.get("doc") == b"b" * 600

    def test_delete_removes_every_copy(self):
        federation = open_federation(shards=3)
        federation.put("doc", b"a" * 600)
        owner = federation.shard_for("doc")
        other = next(s for s in federation.shard_ids if s != owner)
        federation.shard(other).put("doc", b"stale" * 100)
        federation.delete("doc")
        assert not federation.has_document("doc")
        with pytest.raises(UnknownBlockError):
            federation.delete("doc")

    def test_cannot_remove_unknown_or_last_shard(self):
        federation = open_federation(shards=2)
        with pytest.raises(InvalidParametersError):
            federation.remove_shard(9)
        federation.remove_shard(1)
        with pytest.raises((InvalidParametersError, PlacementError)):
            federation.remove_shard(0)


class TestFaultInjection:
    def test_one_shards_disaster_never_blocks_the_others(self):
        federation = open_federation(shards=3)
        documents = workload(doc_count=30)
        for name, payload in documents.items():
            federation.put(name, payload)
        victim = federation.shard_ids[0]
        # Kill *every* location of one shard: an unrecoverable disaster.
        location_count = federation.shard(victim).service.cluster.location_count
        federation.fail_locations(range(location_count), victim)
        healthy = {
            name: payload
            for name, payload in documents.items()
            if federation.shard_for(name) != victim
        }
        assert healthy, "some documents should live on healthy shards"
        # Healthy-shard reads stay byte-exact while the victim is down.
        for name, payload in healthy.items():
            assert federation.get(name) == payload
        # Federation-wide repair reports the victim without raising.
        report = federation.repair()
        assert set(report.per_shard) | set(report.errors) == set(
            federation.shard_ids
        )
        if victim in report.errors:
            assert report.errors[victim]
        else:
            assert report.per_shard[victim].unrecovered or (
                report.per_shard[victim].data_loss >= 0
            )
        # The victim recovers independently once its locations return.
        federation.restore_locations(shard=victim)
        federation.repair(shard=victim)
        for name, payload in documents.items():
            assert federation.get(name) == payload

    def test_partial_shard_failure_repairs_independently(self):
        federation = open_federation(shards=3)
        documents = workload(doc_count=30)
        for name, payload in documents.items():
            federation.put(name, payload)
        victim = federation.shard_ids[1]
        federation.fail_locations(range(4), victim)
        status = federation.status()
        assert status.per_shard[victim].unavailable_locations == 4
        assert status.unavailable_locations == 4  # only that shard
        report = federation.repair(shard=victim)
        assert set(report.per_shard) == {victim}
        assert not report.errors
        # Degraded + repaired reads: everything byte-exact, victim included.
        for name, payload in documents.items():
            assert federation.get(name) == payload

    def test_status_aggregates_across_shards(self):
        federation = open_federation(shards=3)
        documents = workload(doc_count=12)
        for name, payload in documents.items():
            federation.put(name, payload)
        status = federation.status()
        assert status.shards == 3
        assert status.documents == len(documents)
        assert status.blocks == sum(
            s.blocks for s in status.per_shard.values()
        )
        assert status.bytes_stored > 0
        assert str(status.shards) in status.summary()

    def test_torn_wal_on_one_shard_reopens_independently(self, tmp_path):
        """A crash image with a torn WAL tail on one shard: the federation
        reopens, healthy shards serve everything byte-exact, and the torn
        shard recovers its committed prefix."""
        root = tmp_path / "live"
        config = StorageConfig(
            scheme="ae-3-2-5",
            location_count=8,
            block_size=256,
            seed=5,
            shards=3,
            backend="disk",
            data_dir=str(root),
        )
        federation = ShardedStorageService.open(config)
        documents = workload(doc_count=18)
        names = sorted(documents)
        base, tail = names[:12], names[12:]
        for name in base:
            federation.put(name, documents[name])
        federation.flush()  # base docs checkpointed into every manifest
        for name in tail:
            federation.put(name, documents[name])
        # Snapshot the directory while the federation is still open: a
        # crash image whose WALs hold the tail documents.
        image = tmp_path / "image"
        shutil.copytree(root, image)
        federation.close()
        # Tear the WAL tail of one shard mid-frame.
        torn_shard = None
        for shard_id in (0, 1, 2):
            wal_path = image / f"shard-{shard_id:02d}" / "wal.log"
            if wal_path.exists() and wal_path.stat().st_size > 0:
                torn_shard = shard_id
                with open(wal_path, "r+b") as handle:
                    handle.truncate(wal_path.stat().st_size - 3)
                break
        assert torn_shard is not None, "some shard must have a WAL tail"
        reopened = ShardedStorageService.open(
            StorageConfig(
                scheme="ae-3-2-5",
                location_count=8,
                block_size=256,
                seed=5,
                backend="disk",
                data_dir=str(image),
            )
        )
        assert reopened.shard_count == 3
        # Base documents survive everywhere; every catalogued document
        # (including any tail doc whose WAL group committed before the
        # tear) reads byte-exact.
        for name in base:
            assert reopened.get(name) == documents[name]
        for name in reopened.documents:
            assert reopened.get(name) == documents[name]
        # Only documents of the torn shard may be missing.
        for name in tail:
            if not reopened.has_document(name):
                assert ShardedStorageService.open(
                    config
                ).shard_for(name) == torn_shard
        reopened.close()


class TestDurableFederation:
    def _config(self, root, **overrides):
        base = dict(
            scheme="ae-1",
            location_count=6,
            block_size=256,
            seed=5,
            backend="disk",
            data_dir=str(root),
        )
        base.update(overrides)
        return StorageConfig(**base)

    def test_reopen_rejects_conflicting_membership(self, tmp_path):
        federation = ShardedStorageService.open(
            self._config(tmp_path / "f", shards=3)
        )
        federation.put("doc", b"x" * 600)
        federation.close()
        with pytest.raises(InvalidParametersError):
            ShardedStorageService.open(self._config(tmp_path / "f", shards=2))
        with pytest.raises(InvalidParametersError):
            ShardedStorageService.open(
                self._config(tmp_path / "f", scheme="ae-2-2-5", shards=3)
            )

    def test_corrupt_federation_manifest_is_refused(self, tmp_path):
        federation = ShardedStorageService.open(
            self._config(tmp_path / "f", shards=2)
        )
        federation.close()
        (tmp_path / "f" / FEDERATION_NAME).write_text("{ torn")
        with pytest.raises(InvalidParametersError):
            ShardedStorageService.open(self._config(tmp_path / "f"))

    def test_reopen_resumes_an_interrupted_join(self, tmp_path):
        """Crash after the join's durable membership write, before any data
        moved: reopening re-homes the ring delta automatically."""
        import json

        root = tmp_path / "f"
        federation = ShardedStorageService.open(self._config(root, shards=2))
        documents = workload(doc_count=40)
        for name, payload in documents.items():
            federation.put(name, payload)
        federation.close()
        # Simulate the crash image: federation.json already lists shard 2,
        # but no documents have moved yet.
        manifest = json.loads((root / FEDERATION_NAME).read_text())
        manifest["shard_ids"] = [0, 1, 2]
        (root / FEDERATION_NAME).write_text(json.dumps(manifest))
        reopened = ShardedStorageService.open(self._config(root))
        assert reopened.shard_ids == (0, 1, 2)
        moved = [
            name
            for name in documents
            if reopened.shard_for(name) == 2
        ]
        assert moved, "the new shard should own part of the namespace"
        for name in moved:
            assert reopened.shard(2).has_document(name)
        for name, payload in documents.items():
            assert reopened.get(name) == payload
        reopened.close()

    def test_reopen_resumes_an_interrupted_leave(self, tmp_path):
        """Crash mid-drain: the manifest still lists the leaving shard, so
        reopening finishes the drain and drops it."""
        import json

        root = tmp_path / "f"
        federation = ShardedStorageService.open(self._config(root, shards=3))
        documents = workload(doc_count=40)
        for name, payload in documents.items():
            federation.put(name, payload)
        federation.close()
        manifest = json.loads((root / FEDERATION_NAME).read_text())
        manifest["leaving"] = [1]
        (root / FEDERATION_NAME).write_text(json.dumps(manifest))
        reopened = ShardedStorageService.open(self._config(root))
        assert reopened.shard_ids == (0, 2)
        for name, payload in documents.items():
            assert reopened.get(name) == payload
            assert reopened.shard_for(name) in (0, 2)
        # The drained shard is gone from the durable membership too.
        manifest = json.loads((root / FEDERATION_NAME).read_text())
        assert manifest["shard_ids"] == [0, 2]
        assert manifest["leaving"] == []
        reopened.close()

    def test_durable_join_and_leave_round_trip(self, tmp_path):
        root = tmp_path / "f"
        federation = ShardedStorageService.open(self._config(root, shards=2))
        documents = workload(doc_count=30)
        for name, payload in documents.items():
            federation.put(name, payload)
        join = federation.add_shard()
        assert 0 < join.moved_fraction <= 1.5 / 3
        assert os.path.isdir(root / "shard-02")
        federation.close()
        reopened = ShardedStorageService.open(self._config(root))
        assert reopened.shard_count == 3
        victims_docs = set(reopened.shard(0).documents)
        leave = reopened.remove_shard(0)
        assert set(leave.moves) == victims_docs
        for name, payload in documents.items():
            assert reopened.get(name) == payload
        reopened.close()
        final = ShardedStorageService.open(self._config(root))
        assert final.shard_ids == (1, 2)
        for name, payload in documents.items():
            assert final.get(name) == payload
        final.close()

    def test_closed_federation_refuses_requests(self):
        federation = open_federation(shards=2)
        federation.close()
        federation.close()  # idempotent
        with pytest.raises(InvalidParametersError):
            federation.put("doc", b"x")
        with pytest.raises(ReproError):
            federation.get("doc")


class TestLoadgenIntegration:
    def test_run_load_drives_a_federation(self):
        from repro.system.loadgen import run_load

        federation = open_federation(shards=2)
        report = run_load(
            federation,
            clients=4,
            ops_per_client=15,
            payload_bytes=600,
            documents=12,
            seed=3,
        )
        assert report.ops == 60
        assert report.overloads == 0
        federation.close()
