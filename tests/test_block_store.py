"""Tests for the single-location block store.

The backend-parametrised tests pin down the invariants every
:class:`~repro.storage.backends.StorageBackend` must preserve behind the
unchanged :class:`BlockStore` API: capacity-full behaviour, ``bytes_stored``
accounting across delete/wipe, all-or-nothing ``put_many`` and counters that
survive a persistent-backend reopen.
"""

from __future__ import annotations

import pytest

from repro.core.blocks import DataId, ParityId
from repro.core.parameters import StrandClass
from repro.exceptions import BlockUnavailableError, StorageFullError, UnknownBlockError
from repro.storage import backends
from repro.storage.block_store import BlockStore

BACKENDS = ["memory", "disk", "segment"]


def make_store(spec, tmp_path, **kwargs):
    backend = backends.get(
        spec, root=str(tmp_path / spec) if spec != "memory" else None
    )
    return BlockStore(0, backend=backend, **kwargs)


class TestBlockStore:
    def test_put_get_roundtrip(self):
        store = BlockStore(0)
        store.put(DataId(1), b"\x01\x02")
        assert store.get(DataId(1)).tolist() == [1, 2]
        assert store.block_count == 1
        assert store.bytes_stored == 2
        assert store.contains(DataId(1))
        assert store.holds(DataId(1))

    def test_missing_block_raises(self):
        store = BlockStore(0)
        with pytest.raises(UnknownBlockError):
            store.get(DataId(1))
        assert store.try_get(DataId(1)) is None

    def test_failed_location_rejects_io(self):
        store = BlockStore(3)
        store.put(DataId(1), b"x")
        store.fail()
        assert not store.available
        with pytest.raises(BlockUnavailableError):
            store.get(DataId(1))
        with pytest.raises(BlockUnavailableError):
            store.put(DataId(2), b"y")
        assert store.try_get(DataId(1)) is None
        assert store.contains(DataId(1))  # data still physically there
        assert not store.holds(DataId(1))
        store.restore()
        assert store.get(DataId(1)).tolist() == [120]

    def test_wipe_loses_content(self):
        store = BlockStore(0)
        store.put(DataId(1), b"x")
        store.wipe()
        assert not store.available
        assert not store.contains(DataId(1))

    def test_capacity_enforced(self):
        store = BlockStore(0, capacity_blocks=1)
        store.put(DataId(1), b"x")
        with pytest.raises(StorageFullError):
            store.put(DataId(2), b"y")
        # Overwriting an existing block is allowed.
        store.put(DataId(1), b"z")

    def test_delete_and_iteration(self):
        store = BlockStore(0)
        store.put(DataId(1), b"a")
        store.put(ParityId(1, StrandClass.HORIZONTAL), b"b")
        assert len(list(store.block_ids())) == 2
        store.delete(DataId(1))
        assert len(store) == 1
        with pytest.raises(UnknownBlockError):
            store.delete(DataId(1))

    def test_read_write_counters(self):
        store = BlockStore(0)
        store.put(DataId(1), b"a")
        store.get(DataId(1))
        store.try_get(DataId(1))
        assert store.write_count == 1
        assert store.read_count == 2


@pytest.mark.parametrize("spec", BACKENDS)
class TestBackendInvariants:
    """The BlockStore contract must hold identically over every backend."""

    def test_roundtrip_and_iteration(self, spec, tmp_path):
        store = make_store(spec, tmp_path)
        store.put(DataId(1), b"\x01\x02")
        store.put(ParityId(1, StrandClass.HORIZONTAL), b"abc")
        assert store.get(DataId(1)).tolist() == [1, 2]
        assert sorted(store.block_ids(), key=repr) == [
            DataId(1),
            ParityId(1, StrandClass.HORIZONTAL),
        ]
        store.close()

    def test_capacity_full_behaviour(self, spec, tmp_path):
        store = make_store(spec, tmp_path, capacity_blocks=2)
        store.put(DataId(1), b"a")
        store.put(DataId(2), b"b")
        with pytest.raises(StorageFullError):
            store.put(DataId(3), b"c")
        # Overwrites never count against the capacity.
        store.put(DataId(1), b"z")
        assert store.get(DataId(1)).tolist() == [122]
        # Deleting frees a slot.
        store.delete(DataId(2))
        store.put(DataId(3), b"c")
        assert store.block_count == 2
        store.close()

    def test_put_many_is_all_or_nothing_on_overflow(self, spec, tmp_path):
        store = make_store(spec, tmp_path, capacity_blocks=3)
        store.put(DataId(1), b"a")
        with pytest.raises(StorageFullError):
            store.put_many([(DataId(i), b"x") for i in range(2, 6)])
        # Nothing from the failed batch may have landed.
        assert store.block_count == 1
        assert not store.contains(DataId(2))
        assert store.write_count == 1
        # A batch that exactly fills the capacity is accepted, overwrites
        # of existing blocks not counting as new.
        assert store.put_many([(DataId(1), b"y"), (DataId(2), b"b"), (DataId(3), b"c")]) == 3
        assert store.block_count == 3
        store.close()

    def test_put_many_unavailable_stores_nothing(self, spec, tmp_path):
        store = make_store(spec, tmp_path)
        store.fail()
        with pytest.raises(BlockUnavailableError):
            store.put_many([(DataId(1), b"a")])
        store.restore()
        assert store.block_count == 0
        store.close()

    def test_bytes_stored_accounting(self, spec, tmp_path):
        store = make_store(spec, tmp_path)
        store.put(DataId(1), b"aaaa")
        store.put(DataId(2), b"bb")
        assert store.bytes_stored == 6
        store.put(DataId(1), b"a")  # overwrite shrinks
        assert store.bytes_stored == 3
        store.delete(DataId(2))
        assert store.bytes_stored == 1
        store.put_many([(DataId(3), b"ccc"), (DataId(4), b"dddd")])
        assert store.bytes_stored == 8
        store.wipe()
        assert store.bytes_stored == 0
        assert store.block_count == 0
        store.close()

    def test_wipe_loses_content_and_stays_down(self, spec, tmp_path):
        store = make_store(spec, tmp_path)
        store.put(DataId(1), b"x")
        store.wipe()
        assert not store.available
        assert not store.contains(DataId(1))
        store.restore()
        with pytest.raises(UnknownBlockError):
            store.get(DataId(1))
        store.close()


@pytest.mark.parametrize("spec", ["disk", "segment"])
class TestPersistentStore:
    def test_content_and_counters_survive_reopen(self, spec, tmp_path):
        store = make_store(spec, tmp_path)
        store.put(DataId(1), b"hello")
        store.put(DataId(2), b"world")
        store.get(DataId(1))
        store.get(DataId(2))
        store.try_get(DataId(1))
        assert (store.read_count, store.write_count) == (3, 2)
        store.close()

        reopened = make_store(spec, tmp_path)
        assert reopened.read_count == 3
        assert reopened.write_count == 2
        assert reopened.block_count == 2
        assert reopened.bytes_stored == 10
        assert bytes(reopened.get(DataId(2)).tobytes()) == b"world"
        reopened.get(DataId(1))
        assert reopened.read_count == 5  # counters keep advancing

    def test_capacity_enforced_against_preexisting_blocks(self, spec, tmp_path):
        store = make_store(spec, tmp_path)
        store.put_many([(DataId(i), b"x") for i in range(1, 4)])
        store.close()
        reopened = make_store(spec, tmp_path, capacity_blocks=3)
        with pytest.raises(StorageFullError):
            reopened.put(DataId(9), b"y")
        reopened.close()


@pytest.mark.parametrize("spec", ["disk", "segment"])
class TestReadCache:
    def test_hit_miss_counters(self, spec, tmp_path):
        store = make_store(spec, tmp_path, cache_blocks=2)
        store.put(DataId(1), b"a")
        store.put(DataId(2), b"b")
        store.get(DataId(1))
        assert (store.cache_hits, store.cache_misses) == (0, 1)
        store.get(DataId(1))
        assert (store.cache_hits, store.cache_misses) == (1, 1)
        store.close()

    def test_lru_eviction(self, spec, tmp_path):
        store = make_store(spec, tmp_path, cache_blocks=2)
        for i in range(1, 4):
            store.put(DataId(i), bytes([i]))
        store.get(DataId(1))
        store.get(DataId(2))
        store.get(DataId(3))  # evicts DataId(1)
        store.get(DataId(2))  # hit
        store.get(DataId(1))  # miss again
        assert store.cache_misses == 4
        assert store.cache_hits == 1
        store.close()

    def test_write_through_keeps_cache_coherent(self, spec, tmp_path):
        store = make_store(spec, tmp_path, cache_blocks=4)
        store.put(DataId(1), b"old")
        store.get(DataId(1))  # cached
        store.put(DataId(1), b"new")  # write-through refresh
        assert bytes(store.get(DataId(1)).tobytes()) == b"new"
        store.delete(DataId(1))
        assert store.try_get(DataId(1)) is None
        store.close()


def test_memory_backend_defaults_to_no_cache():
    store = BlockStore(0)
    store.put(DataId(1), b"a")
    store.get(DataId(1))
    store.get(DataId(1))
    assert (store.cache_hits, store.cache_misses) == (0, 0)


class TestConcurrentAccess:
    """Hammer the store from many threads: the LRU cache's OrderedDict
    re-linking and the hit/miss/read/write counters must stay coherent
    under concurrent mutation (the concurrent front-end drives exactly
    this access pattern during reads-under-repair)."""

    THREADS = 8
    OPS_PER_THREAD = 2000
    BLOCKS = 128

    def test_cache_and_counters_survive_hammering(self):
        import random
        import threading

        # A small cache over the memory backend forces constant eviction
        # and re-linking -- the racy part of an unlocked OrderedDict.
        store = BlockStore(0, backend="memory", cache_blocks=16)
        for number in range(self.BLOCKS):
            store.put(DataId(number), bytes([number % 251]) * 8)

        errors: list = []
        barrier = threading.Barrier(self.THREADS)

        def worker(index: int) -> None:
            rng = random.Random(1000 + index)
            # Each thread is the sole writer of its own block slice, so the
            # final payloads are deterministic; reads roam the whole range.
            own = range(index, self.BLOCKS, self.THREADS)
            try:
                barrier.wait()
                for _ in range(self.OPS_PER_THREAD):
                    roll = rng.random()
                    if roll < 0.25:
                        victim = rng.choice(list(own))
                        store.put(DataId(victim), bytes([index]) * 8)
                    elif roll < 0.35:
                        store.try_get_many(
                            [DataId(rng.randrange(self.BLOCKS)) for _ in range(4)]
                        )
                    else:
                        store.get(DataId(rng.randrange(self.BLOCKS)))
            except Exception as exc:  # noqa: RPR004 - hammer thread collects any failure
                errors.append(exc)  # pragma: no cover - failure path

        threads = [
            threading.Thread(target=worker, args=(index,))
            for index in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        # No blocks lost or duplicated, byte accounting intact.
        assert store.block_count == self.BLOCKS
        assert store.bytes_stored == self.BLOCKS * 8
        # Cache coherence: every read returns the last write of the block's
        # sole writer (either the seed payload or that thread's stamp).
        for number in range(self.BLOCKS):
            writer = number % self.THREADS
            got = bytes(store.get(DataId(number)).tobytes())
            assert got in (bytes([number % 251]) * 8, bytes([writer]) * 8)
            assert len(got) == 8
        # Counter sanity: every completed get/try_get_many hit advanced the
        # read counter; hits + misses never exceeds reads.
        assert store.read_count >= self.THREADS * self.OPS_PER_THREAD * 0.5
        assert store.cache_hits + store.cache_misses <= store.read_count
