"""Tests for the single-location block store."""

from __future__ import annotations

import pytest

from repro.core.blocks import DataId, ParityId
from repro.core.parameters import StrandClass
from repro.exceptions import BlockUnavailableError, StorageFullError, UnknownBlockError
from repro.storage.block_store import BlockStore


class TestBlockStore:
    def test_put_get_roundtrip(self):
        store = BlockStore(0)
        store.put(DataId(1), b"\x01\x02")
        assert store.get(DataId(1)).tolist() == [1, 2]
        assert store.block_count == 1
        assert store.bytes_stored == 2
        assert store.contains(DataId(1))
        assert store.holds(DataId(1))

    def test_missing_block_raises(self):
        store = BlockStore(0)
        with pytest.raises(UnknownBlockError):
            store.get(DataId(1))
        assert store.try_get(DataId(1)) is None

    def test_failed_location_rejects_io(self):
        store = BlockStore(3)
        store.put(DataId(1), b"x")
        store.fail()
        assert not store.available
        with pytest.raises(BlockUnavailableError):
            store.get(DataId(1))
        with pytest.raises(BlockUnavailableError):
            store.put(DataId(2), b"y")
        assert store.try_get(DataId(1)) is None
        assert store.contains(DataId(1))  # data still physically there
        assert not store.holds(DataId(1))
        store.restore()
        assert store.get(DataId(1)).tolist() == [120]

    def test_wipe_loses_content(self):
        store = BlockStore(0)
        store.put(DataId(1), b"x")
        store.wipe()
        assert not store.available
        assert not store.contains(DataId(1))

    def test_capacity_enforced(self):
        store = BlockStore(0, capacity_blocks=1)
        store.put(DataId(1), b"x")
        with pytest.raises(StorageFullError):
            store.put(DataId(2), b"y")
        # Overwriting an existing block is allowed.
        store.put(DataId(1), b"z")

    def test_delete_and_iteration(self):
        store = BlockStore(0)
        store.put(DataId(1), b"a")
        store.put(ParityId(1, StrandClass.HORIZONTAL), b"b")
        assert len(list(store.block_ids())) == 2
        store.delete(DataId(1))
        assert len(store) == 1
        with pytest.raises(UnknownBlockError):
            store.delete(DataId(1))

    def test_read_write_counters(self):
        store = BlockStore(0)
        store.put(DataId(1), b"a")
        store.get(DataId(1))
        store.try_get(DataId(1))
        assert store.write_count == 1
        assert store.read_count == 2
