"""Tests for block keys and deterministic location mapping."""

from __future__ import annotations

import pytest

from repro.core.blocks import DataId, ParityId
from repro.core.parameters import StrandClass
from repro.exceptions import PlacementError
from repro.system.keys import derive_key, location_for_block, location_for_key


class TestKeys:
    def test_keys_are_stable_and_distinct(self):
        key_one = derive_key("alice", DataId(26))
        key_two = derive_key("alice", DataId(26))
        key_other_block = derive_key("alice", DataId(27))
        key_other_owner = derive_key("bob", DataId(26))
        assert key_one == key_two
        assert key_one != key_other_block
        assert key_one != key_other_owner
        assert len(key_one.digest) == 64

    def test_keys_do_not_depend_on_payload(self):
        """Keys derive from owner + lattice position only (paper, Sec. IV-A)."""
        parity = ParityId(26, StrandClass.RIGHT_HANDED)
        assert derive_key("alice", parity) == derive_key("alice", parity)
        assert "p[26,rh]" == derive_key("alice", parity).block_label

    def test_location_mapping_is_in_range(self):
        for index in range(1, 200):
            location = location_for_key(derive_key("alice", DataId(index)), 13)
            assert 0 <= location < 13

    def test_location_mapping_requires_locations(self):
        with pytest.raises(PlacementError):
            location_for_key(derive_key("alice", DataId(1)), 0)

    def test_location_mapping_is_the_ring_digest_convention(self):
        """location_for_key is a thin shim over ShardRing.digest_index; the
        historical mapping (first-12-hex modulo) is pinned byte-for-byte."""
        from repro.system.sharding import ShardRing

        for index in range(1, 50):
            key = derive_key("alice", DataId(index))
            expected = int(key.digest[:12], 16) % 13
            assert location_for_key(key, 13) == expected
            assert ShardRing.digest_index(key.digest, 13) == expected

    def test_exclusion_avoids_owner_node(self):
        for index in range(1, 100):
            parity = ParityId(index, StrandClass.HORIZONTAL)
            home = location_for_block("alice", parity, 10)
            adjusted = location_for_block("alice", parity, 10, exclude=home)
            assert adjusted != home

    def test_short_and_str(self):
        key = derive_key("alice", DataId(1))
        assert key.short() == key.digest[:16]
        assert "alice" in str(key)
