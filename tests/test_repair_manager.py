"""Tests for the cluster-level repair manager and maintenance policies."""

from __future__ import annotations

import pytest

from repro.core.blocks import DataId, ParityId, is_data
from repro.core.encoder import Entangler
from repro.core.parameters import AEParameters
from repro.core.xor import payloads_equal
from repro.storage.cluster import StorageCluster
from repro.storage.maintenance import MaintenanceBudget, MaintenancePolicy
from repro.storage.placement import RandomPlacement
from repro.storage.repair import ClusterRepairManager

from tests.conftest import make_payload

BLOCK_SIZE = 32


def entangled_cluster(params: AEParameters, blocks: int, locations: int, seed: int = 5):
    """Encode ``blocks`` payloads onto a fresh cluster; returns (encoder, cluster, originals)."""
    encoder = Entangler(params, block_size=BLOCK_SIZE)
    cluster = StorageCluster(locations, RandomPlacement(locations, seed=seed))
    originals = {}
    for index in range(1, blocks + 1):
        encoded = encoder.entangle(make_payload(index, BLOCK_SIZE))
        for block in encoded.all_blocks():
            originals[block.block_id] = block.payload
            cluster.put_block(block)
    return encoder, cluster, originals


class TestMaintenancePolicies:
    def test_policy_block_filters(self):
        assert MaintenancePolicy.FULL.repairs_block(DataId(1))
        assert MaintenancePolicy.FULL.repairs_block(ParityId(1, AEParameters.triple(2, 5).strand_classes[1]))
        assert MaintenancePolicy.MINIMAL.repairs_block(DataId(1))
        assert not MaintenancePolicy.MINIMAL.repairs_block(
            ParityId(1, AEParameters.triple(2, 5).strand_classes[1])
        )
        assert not MaintenancePolicy.NONE.repairs_block(DataId(1))
        assert MaintenancePolicy.FULL.repairs_parities()
        assert not MaintenancePolicy.MINIMAL.repairs_parities()

    def test_policy_descriptions(self):
        for policy in MaintenancePolicy:
            assert policy.describe()

    def test_budget(self):
        budget = MaintenanceBudget(max_repairs_per_round=5, max_rounds=2)
        assert budget.allows_round(2)
        assert not budget.allows_round(3)
        assert budget.clip_round(10) == 5
        assert MaintenanceBudget.unlimited().clip_round(10) == 10


class TestClusterRepair:
    def test_full_repair_restores_all_blocks(self, hec_params):
        encoder, cluster, originals = entangled_cluster(hec_params, 60, 25)
        cluster.fail_locations(range(5))
        manager = ClusterRepairManager(encoder.lattice, cluster, BLOCK_SIZE)
        missing_before = manager.missing_blocks()
        assert missing_before
        report = manager.repair()
        assert report.data_loss == 0
        assert not report.unrecovered
        for block_id in missing_before:
            assert payloads_equal(cluster.get_block(block_id), originals[block_id])
            assert cluster.location_of(block_id) >= 5

    def test_minimal_maintenance_skips_parities(self, hec_params):
        encoder, cluster, originals = entangled_cluster(hec_params, 60, 25)
        cluster.fail_locations(range(4))
        manager = ClusterRepairManager(
            encoder.lattice, cluster, BLOCK_SIZE, MaintenancePolicy.MINIMAL
        )
        missing = manager.missing_blocks()
        missing_parities = [b for b in missing if not is_data(b)]
        report = manager.repair()
        assert report.skipped == sorted(missing_parities, key=lambda b: (b.index, 1, b.strand_class.value))
        assert all(is_data(b) for round_ in report.rounds for b in round_.repaired)

    def test_none_policy_repairs_nothing(self, hec_params):
        encoder, cluster, _ = entangled_cluster(hec_params, 40, 20)
        cluster.fail_locations(range(3))
        manager = ClusterRepairManager(
            encoder.lattice, cluster, BLOCK_SIZE, MaintenancePolicy.NONE
        )
        report = manager.repair()
        assert report.repaired_count == 0

    def test_budget_limits_rounds(self, hec_params):
        encoder, cluster, _ = entangled_cluster(hec_params, 80, 20)
        cluster.fail_locations(range(8))
        manager = ClusterRepairManager(
            encoder.lattice,
            cluster,
            BLOCK_SIZE,
            MaintenancePolicy.FULL,
            budget=MaintenanceBudget(max_rounds=1),
        )
        report = manager.repair()
        assert report.round_count <= 1

    def test_single_block_repair_reads_two_blocks(self, hec_params):
        encoder, cluster, originals = entangled_cluster(hec_params, 60, 30)
        victim = DataId(30)
        victim_location = cluster.location_of(victim)
        cluster.fail_locations([victim_location])
        manager = ClusterRepairManager(encoder.lattice, cluster, BLOCK_SIZE)
        payload, reads = manager.repair_single(victim)
        assert payloads_equal(payload, originals[victim])
        assert reads <= 2 * hec_params.alpha  # at most alpha attempts of 2 reads

    def test_report_summary_and_fractions(self, hec_params):
        encoder, cluster, _ = entangled_cluster(hec_params, 60, 25)
        cluster.fail_locations(range(5))
        report = ClusterRepairManager(encoder.lattice, cluster, BLOCK_SIZE).repair()
        assert 0.0 <= report.single_failure_fraction <= 1.0
        assert "policy=full" in report.summary()
