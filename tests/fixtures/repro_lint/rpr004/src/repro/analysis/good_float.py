"""RPR004 must pass: tolerant comparison, int equality, inequalities."""

import math


def converged(overhead):
    return math.isclose(overhead, 1.5)


def enough(count):
    return count == 3  # int equality is exact


def above(fraction):
    return fraction >= 0.5  # ordering comparisons are fine
