"""RPR004 must flag: exact float equality in an analytic model."""


def converged(overhead):
    return overhead == 1.5  # exact float comparison


def not_half(fraction):
    return 0.5 != fraction
