"""RPR004 must flag: mutable defaults and bare/broad exception handlers."""


def collect(item, bucket=[]):  # shared across calls
    bucket.append(item)
    return bucket


def index(key, table={}):  # shared across calls
    return table.setdefault(key, len(table))


def swallow_everything(fn):
    try:
        return fn()
    except:  # bare handler, nothing suppressed here
        return None


def swallow_most(fn):
    try:
        return fn()
    except Exception:
        return None
