"""RPR004 must pass: None defaults, narrow handlers, tuple defaults."""


def collect(item, bucket=None):
    if bucket is None:
        bucket = []
    bucket.append(item)
    return bucket


def frozen(values=()):  # immutable default is fine
    return len(values)


def narrow(fn):
    try:
        return fn()
    except (ValueError, KeyError):
        return None
