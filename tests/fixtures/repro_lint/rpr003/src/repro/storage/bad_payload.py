"""RPR003 must flag: payload bytes treated as text on the storage path."""


def describe(payload):
    return str(payload)  # repr of bytes, not the data


def log_line(payload):
    return f"got {payload}"  # implicit str() in f-string


def as_text(block):
    return block.payload.decode("utf-8")  # payloads are opaque bytes


def banner(payload):
    return "payload: " + payload  # TypeError on the read path


def mixed():
    return "header" + b"body"  # always a TypeError
