"""RPR003 must pass: diagnostics use repr/hex; text fields may decode."""


def describe(payload):
    return f"{payload!r}"  # repr is the intended diagnostic form


def fingerprint(payload):
    return payload.hex()


def size(payload):
    return len(payload)


def header_name(header):
    return header.decode("ascii")  # not a payload variable


def joined(payload, other_payload):
    return payload + other_payload  # bytes + bytes is fine
