"""RPR002 must pass: PEP 562 module ``__getattr__`` binds names lazily."""

from __future__ import annotations

__all__ = [
    "lazy_name",
    "other_lazy_name",
]


def __getattr__(name: str) -> object:
    if name in __all__:
        return object()
    raise AttributeError(name)
