"""RPR002 must flag 'orphan' only: 'covered' appears in the surface test."""


def register(name, factory):
    pass


def make():
    return object()


register("covered", make)
register("orphan", make)
