"""Surface test fixture: mentions the 'covered' registry id, not 'orphan'."""


def test_catalogue():
    assert "covered"
