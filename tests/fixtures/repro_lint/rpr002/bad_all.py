"""RPR002 must flag: ``__all__`` advertises names the module never binds."""

from __future__ import annotations

__all__ = [
    "exported_fn",
    "ghost_name",  # never defined anywhere
    "exported_fn",  # duplicate entry
]


def exported_fn() -> int:
    return 1
