"""RPR002 must pass: every ``__all__`` entry is bound, incl. conditionally."""

from __future__ import annotations

from os import path as renamed_path

try:
    import json as maybe_json
except ImportError:  # pragma: no cover
    maybe_json = None

__all__ = sorted(
    [
        "CONSTANT",
        "SomeClass",
        "exported_fn",
        "maybe_json",
        "renamed_path",
    ]
)

CONSTANT = 42


class SomeClass:
    pass


def exported_fn() -> int:
    return 1
