"""Fixture: every violation here is suppressed inline with # noqa."""


def collect(item, bucket=[]):  # noqa: RPR004  (fixture: suppression test)
    bucket.append(item)
    return bucket


def swallow(fn):
    try:
        return fn()
    except Exception:  # noqa
        return None


def unrelated_code(fn):
    try:
        return fn()
    except Exception:  # noqa: RPR001  (wrong code: must NOT suppress RPR004)
        return None
