"""RPR005 must flag: determinism-sensitive imports buried in functions."""


def pick(seq):
    import random

    return random.Random(0).choice(seq)


def stamp():
    from datetime import datetime

    return datetime(2018, 6, 25)
