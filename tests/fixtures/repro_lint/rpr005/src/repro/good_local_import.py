"""RPR005 must pass: top-level sensitive imports; lazy imports of others."""

import random


def pick(seq, seed):
    return random.Random(seed).choice(seq)


def parse(text):
    import json  # lazy import of a non-sensitive module is allowed

    return json.loads(text)
