"""RPR001 must pass: every RNG receives an explicit seed expression."""

import random

import numpy as np


def sample(seed: int):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 10)


def derived(seed: int, offset: int):
    return np.random.default_rng(seed + 1000 * offset)


def keyword(seed: int):
    return np.random.default_rng(seed=seed)


def legacy(seed: int):
    return random.Random(seed)
