"""RPR001 must flag: unseeded RNGs and wall-clock reads on an engine path."""

import random
import time

import numpy as np


def sample():
    rng = np.random.default_rng()  # argless: non-reproducible
    return rng.integers(0, 10)


def sample_none():
    return np.random.default_rng(None)  # seed=None is still unseeded


def legacy():
    return random.Random()  # argless Mersenne twister


def jitter():
    return time.time()  # wall clock


def roll():
    return random.randint(0, 6)  # global unseeded RNG
