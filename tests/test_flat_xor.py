"""Tests for flat XOR codes (the substrate of the minimal-erasure methodology)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codes.flat_xor import FlatXorCode, geo_xor_code, mirrored_pairs_code, raid5_code
from repro.exceptions import DecodingError, InvalidParametersError


def random_data(k: int, seed: int = 0, size: int = 16):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 256, size=size, dtype=np.uint8) for _ in range(k)]


class TestConstruction:
    def test_equations_validated(self):
        with pytest.raises(InvalidParametersError):
            FlatXorCode(3, [])
        with pytest.raises(InvalidParametersError):
            FlatXorCode(3, [[]])
        with pytest.raises(InvalidParametersError):
            FlatXorCode(3, [[0, 5]])
        with pytest.raises(InvalidParametersError):
            FlatXorCode(0, [[0]])

    def test_standard_constructions(self):
        assert raid5_code(4).m == 1
        assert mirrored_pairs_code(3).m == 3
        assert geo_xor_code().k == 2


class TestCoding:
    def test_raid5_parity_is_xor_of_all(self):
        code = raid5_code(3)
        data = random_data(3)
        parity = code.encode(data)[0]
        assert np.array_equal(parity, data[0] ^ data[1] ^ data[2])

    def test_peeling_decoder_recovers_single_data_failure(self):
        code = raid5_code(4)
        data = random_data(4, seed=3)
        parity = code.encode(data)[0]
        available = {0: data[0], 2: data[2], 3: data[3], 4: parity}
        decoded = code.decode(available)
        assert np.array_equal(decoded[1], data[1])

    def test_peeling_decoder_fails_on_double_failure_raid5(self):
        code = raid5_code(4)
        data = random_data(4, seed=4)
        parity = code.encode(data)[0]
        available = {0: data[0], 3: data[3], 4: parity}
        with pytest.raises(DecodingError):
            code.decode(available)

    def test_mirrored_pairs_tolerate_one_arbitrary_failure(self):
        code = mirrored_pairs_code(3)
        assert code.tolerated_failures() >= 1

    @given(st.integers(min_value=2, max_value=6), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_raid5_tolerates_exactly_one_failure(self, k, seed):
        code = raid5_code(k)
        assert code.tolerated_failures() == 1
        data = random_data(k, seed=seed)
        parity = code.encode(data)[0]
        stripe = {index: payload for index, payload in enumerate(data)}
        stripe[k] = parity
        victim = seed % (k + 1)
        available = {pos: payload for pos, payload in stripe.items() if pos != victim}
        repaired = code.repair(victim, available)
        assert np.array_equal(repaired, stripe[victim])


class TestStructuralDecodability:
    def test_can_decode_structural(self):
        code = FlatXorCode(4, [[0, 1], [2, 3], [0, 2]])
        assert code.can_decode([0, 1, 2, 3])
        assert code.can_decode([1, 3, 4, 5, 6])  # peel everything back
        assert not code.can_decode([4, 5])

    def test_single_failure_cost_uses_smallest_equation(self):
        code = FlatXorCode(4, [[0, 1, 2, 3], [0, 1]])
        assert code.single_failure_cost == 2
