"""Tests for AE(alpha, s, p) parameter validation and derived quantities."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.core.parameters import AEParameters, StrandClass
from repro.exceptions import InvalidParametersError


class TestValidation:
    def test_single_entanglement_requires_s1_p0(self):
        assert AEParameters.single() == AEParameters(1, 1, 0)
        with pytest.raises(InvalidParametersError):
            AEParameters(1, 2, 2)
        with pytest.raises(InvalidParametersError):
            AEParameters(1, 1, 1)

    def test_p_smaller_than_s_is_rejected(self):
        with pytest.raises(InvalidParametersError):
            AEParameters(3, 4, 2)
        with pytest.raises(InvalidParametersError):
            AEParameters(2, 3, 1)

    def test_non_positive_values_rejected(self):
        with pytest.raises(InvalidParametersError):
            AEParameters(0, 1, 0)
        with pytest.raises(InvalidParametersError):
            AEParameters(2, 0, 2)
        with pytest.raises(InvalidParametersError):
            AEParameters(2, 2, -1)

    def test_valid_settings_accepted(self):
        for alpha, s, p in [(2, 1, 1), (2, 2, 5), (3, 2, 5), (3, 5, 5), (3, 1, 4)]:
            params = AEParameters(alpha, s, p)
            assert params.alpha == alpha

    @given(st.integers(min_value=2, max_value=4), st.integers(min_value=1, max_value=6),
           st.integers(min_value=0, max_value=12))
    def test_validation_is_total(self, alpha, s, p):
        """Every input either builds a valid object or raises InvalidParametersError."""
        try:
            params = AEParameters(alpha, s, p)
        except InvalidParametersError:
            assert p < s
        else:
            assert params.p >= params.s


class TestDerivedQuantities:
    def test_code_rate(self):
        assert AEParameters.single().code_rate == Fraction(1, 2)
        assert AEParameters.triple(2, 5).code_rate == Fraction(1, 4)
        assert AEParameters.triple(2, 5).parity_only_rate == Fraction(1, 3)

    def test_storage_overhead_grows_with_alpha(self):
        assert AEParameters.single().storage_overhead == 1.0
        assert AEParameters.double(2, 5).storage_overhead == 2.0
        assert AEParameters.triple(2, 5).storage_overhead == 3.0

    def test_strand_count_formula(self):
        # s + (alpha - 1) * p  (paper, Sec. III-B)
        assert AEParameters(3, 5, 5).strand_count == 15
        assert AEParameters(3, 2, 5).strand_count == 12
        assert AEParameters(2, 2, 5).strand_count == 7
        assert AEParameters.single().strand_count == 1

    def test_single_failure_cost_is_constant_two(self):
        for spec in ["AE(1,-,-)", "AE(2,2,5)", "AE(3,2,5)", "AE(3,5,5)"]:
            assert AEParameters.parse(spec).single_failure_cost == 2

    def test_strand_classes_per_alpha(self):
        assert AEParameters.single().strand_classes == (StrandClass.HORIZONTAL,)
        assert AEParameters.double(2, 5).strand_classes == (
            StrandClass.HORIZONTAL,
            StrandClass.RIGHT_HANDED,
        )
        assert AEParameters.triple(2, 5).strand_classes == (
            StrandClass.HORIZONTAL,
            StrandClass.RIGHT_HANDED,
            StrandClass.LEFT_HANDED,
        )


class TestParsingAndSpec:
    def test_parse_round_trip(self):
        for text in ["AE(1,-,-)", "AE(2,2,5)", "AE(3,2,5)", "AE(3,5,5)"]:
            assert AEParameters.parse(text).spec() == text

    def test_parse_accepts_loose_formats(self):
        assert AEParameters.parse("ae(3, 2, 5)") == AEParameters(3, 2, 5)
        assert AEParameters.parse("1") == AEParameters.single()

    def test_parse_rejects_garbage(self):
        with pytest.raises(InvalidParametersError):
            AEParameters.parse("")
        with pytest.raises(InvalidParametersError):
            AEParameters.parse("AE(3)")

    def test_helical_constructor_matches_phec(self):
        """p-HEC corresponds to AE(3, 2, p) (paper, Sec. II)."""
        assert AEParameters.helical(5) == AEParameters(3, 2, 5)


class TestEvolution:
    def test_with_alpha_upgrade(self):
        upgraded = AEParameters.single().with_alpha(2)
        assert upgraded.alpha == 2
        assert upgraded.p >= upgraded.s

    def test_with_geometry(self):
        changed = AEParameters.triple(2, 5).with_geometry(3, 7)
        assert (changed.s, changed.p) == (3, 7)
        with pytest.raises(InvalidParametersError):
            AEParameters.triple(2, 5).with_geometry(5, 3)
