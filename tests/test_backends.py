"""Tests for the pluggable storage backends and the block-id codec."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.blocks import DataId, ParityId
from repro.core.parameters import StrandClass
from repro.exceptions import InvalidParametersError
from repro.schemes.stripe import StripeBlockId
from repro.storage import backends
from repro.storage.backends import (
    _RECORD_HEADER,
    DiskBackend,
    MemoryBackend,
    SegmentLogBackend,
    decode_block_id,
    encode_block_id,
)

_RECORD_HEADER_SIZE = _RECORD_HEADER.size


def payload(seed: int, size: int = 64) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=size, dtype=np.uint8)


# ----------------------------------------------------------------------
# Codec
# ----------------------------------------------------------------------
class TestBlockIdCodec:
    @pytest.mark.parametrize(
        "block_id",
        [
            DataId(1),
            DataId(123456),
            ParityId(7, StrandClass.HORIZONTAL),
            ParityId(9, StrandClass.RIGHT_HANDED),
            ParityId(11, StrandClass.LEFT_HANDED),
            StripeBlockId(0, 0),
            StripeBlockId(42, 15),
        ],
    )
    def test_roundtrip(self, block_id):
        key = encode_block_id(block_id)
        assert decode_block_id(key) == block_id
        # Keys must be filesystem-safe (used as file names by DiskBackend).
        assert "/" not in key and key == key.strip()

    @pytest.mark.parametrize("key", ["", "x-1", "d-", "d-abc", "p-1", "p-1-zz", "s-1"])
    def test_malformed_keys_raise(self, key):
        with pytest.raises(InvalidParametersError):
            decode_block_id(key)

    def test_unserialisable_type_raises(self):
        with pytest.raises(InvalidParametersError):
            encode_block_id(("not", "a", "block", "id"))


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_available_names(self):
        assert {"memory", "disk", "segment"} <= set(backends.available())

    def test_unknown_backend_raises(self):
        with pytest.raises(InvalidParametersError):
            backends.get("punchcard")

    def test_persistent_backends_require_root(self):
        with pytest.raises(InvalidParametersError):
            backends.get("disk")
        with pytest.raises(InvalidParametersError):
            backends.get("segment")

    def test_memory_ignores_root(self):
        assert isinstance(backends.get("memory", root="/nonexistent"), MemoryBackend)

    def test_factory_options(self, tmp_path):
        backend = backends.get("disk", root=str(tmp_path), fsync=True)
        assert isinstance(backend, DiskBackend)
        backend = backends.get("segment", root=str(tmp_path / "s"), segment_bytes=4096)
        assert isinstance(backend, SegmentLogBackend)
        backend.close()

    def test_unknown_factory_options_are_rejected(self, tmp_path):
        # A misspelled option must fail loudly, not silently disable itself.
        with pytest.raises(InvalidParametersError, match="fsycn"):
            backends.get("disk", root=str(tmp_path), fsycn=True)
        with pytest.raises(InvalidParametersError, match="segment_bytes"):
            backends.get("disk", root=str(tmp_path), segment_bytes=4096)
        # ... but every backend tolerates the shared fsync knob.
        assert isinstance(backends.get("memory", fsync=True), MemoryBackend)


# ----------------------------------------------------------------------
# Shared backend behaviour
# ----------------------------------------------------------------------
def build(spec: str, tmp_path, **options):
    root = str(tmp_path / spec) if spec != "memory" else None
    return backends.get(spec, root=root, **options)


@pytest.mark.parametrize("spec", ["memory", "disk", "segment"])
class TestBackendContract:
    def test_put_get_delete(self, spec, tmp_path):
        backend = build(spec, tmp_path)
        data = payload(1)
        backend.put(DataId(1), data)
        assert np.array_equal(backend.get(DataId(1)), data)
        with pytest.raises(KeyError):
            backend.get(DataId(2))
        backend.delete(DataId(1))
        with pytest.raises(KeyError):
            backend.get(DataId(1))
        with pytest.raises(KeyError):
            backend.delete(DataId(1))
        backend.close()

    def test_overwrite_and_scan(self, spec, tmp_path):
        backend = build(spec, tmp_path)
        backend.put(DataId(1), payload(1, 32))
        backend.put(DataId(1), payload(2, 48))
        backend.put(ParityId(3, StrandClass.HORIZONTAL), payload(3, 16))
        seen = dict(backend.scan())
        assert seen == {DataId(1): 48, ParityId(3, StrandClass.HORIZONTAL): 16}
        backend.close()

    def test_put_many_and_clear(self, spec, tmp_path):
        backend = build(spec, tmp_path)
        items = [(DataId(i), payload(i)) for i in range(1, 9)]
        assert backend.put_many(items) == 8
        assert len(dict(backend.scan())) == 8
        backend.clear()
        assert dict(backend.scan()) == {}
        backend.close()


# ----------------------------------------------------------------------
# Durability
# ----------------------------------------------------------------------
@pytest.mark.parametrize("spec", ["disk", "segment"])
class TestPersistentBackends:
    def test_payloads_survive_reopen(self, spec, tmp_path):
        backend = build(spec, tmp_path)
        items = {DataId(i): payload(i) for i in range(1, 20)}
        backend.put_many(items.items())
        backend.delete(DataId(5))
        backend.save_meta({"reads": 12})
        backend.close()

        reopened = build(spec, tmp_path)
        seen = dict(reopened.scan())
        assert set(seen) == set(items) - {DataId(5)}
        for block_id in seen:
            assert np.array_equal(reopened.get(block_id), items[block_id])
        assert reopened.load_meta() == {"reads": 12}
        reopened.close()

    def test_overwrite_survives_reopen(self, spec, tmp_path):
        backend = build(spec, tmp_path)
        backend.put(DataId(1), payload(1))
        newer = payload(99)
        backend.put(DataId(1), newer)
        backend.close()
        reopened = build(spec, tmp_path)
        assert np.array_equal(reopened.get(DataId(1)), newer)
        reopened.close()


class TestDiskBackend:
    def test_orphan_tmp_files_are_dropped_on_scan(self, tmp_path):
        backend = DiskBackend(str(tmp_path))
        backend.put(DataId(1), payload(1))
        orphan = os.path.join(str(tmp_path), "blocks", "d-2.tmp")
        with open(orphan, "wb") as handle:
            handle.write(b"torn write")
        reopened = DiskBackend(str(tmp_path))
        assert dict(reopened.scan()) == {DataId(1): 64}
        assert not os.path.exists(orphan)


class TestSegmentLogBackend:
    def test_segments_roll_at_cap(self, tmp_path):
        backend = SegmentLogBackend(str(tmp_path), segment_bytes=1024)
        for i in range(1, 20):
            backend.put(DataId(i), payload(i, 256))
        assert backend.segment_count > 1
        for i in range(1, 20):
            assert np.array_equal(backend.get(DataId(i)), payload(i, 256))
        backend.close()

    def test_torn_tail_record_is_discarded_on_reopen(self, tmp_path):
        backend = SegmentLogBackend(str(tmp_path))
        backend.put(DataId(1), payload(1))
        backend.put(DataId(2), payload(2))
        backend.close()
        # Simulate a crash mid-append: a half-written record at the tail.
        log = os.path.join(str(tmp_path), "segments", "seg-00000000.log")
        with open(log, "ab") as handle:
            handle.write(b"RSG1\x03\x00")  # truncated header

        reopened = SegmentLogBackend(str(tmp_path))
        assert set(dict(reopened.scan())) == {DataId(1), DataId(2)}
        assert np.array_equal(reopened.get(DataId(1)), payload(1))
        # The log is usable again: appends after recovery survive a rescan.
        reopened.put(DataId(3), payload(3))
        reopened.close()
        third = SegmentLogBackend(str(tmp_path))
        assert set(dict(third.scan())) == {DataId(1), DataId(2), DataId(3)}
        assert np.array_equal(third.get(DataId(3)), payload(3))
        third.close()

    def test_corrupt_crc_stops_the_scan(self, tmp_path):
        backend = SegmentLogBackend(str(tmp_path))
        backend.put(DataId(1), payload(1))
        offset_after_first = os.path.getsize(
            os.path.join(str(tmp_path), "segments", "seg-00000000.log")
        )
        backend.put(DataId(2), payload(2))
        backend.close()
        log = os.path.join(str(tmp_path), "segments", "seg-00000000.log")
        with open(log, "r+b") as handle:
            handle.seek(offset_after_first + 20)  # inside the second record
            handle.write(b"\xff\xff\xff")
        reopened = SegmentLogBackend(str(tmp_path))
        assert set(dict(reopened.scan())) == {DataId(1)}
        reopened.close()

    def test_compaction_reclaims_dead_bytes(self, tmp_path):
        backend = SegmentLogBackend(
            str(tmp_path), segment_bytes=2048, auto_compact=False
        )
        for i in range(1, 41):
            backend.put(DataId(i), payload(i, 256))
        for i in range(1, 31):
            backend.delete(DataId(i))
        segments_before = backend.segment_count
        size_before = sum(
            os.path.getsize(os.path.join(str(tmp_path), "segments", name))
            for name in os.listdir(os.path.join(str(tmp_path), "segments"))
        )
        backend.compact()
        size_after = sum(
            os.path.getsize(os.path.join(str(tmp_path), "segments", name))
            for name in os.listdir(os.path.join(str(tmp_path), "segments"))
        )
        assert size_after < size_before
        assert backend.segment_count <= segments_before
        for i in range(31, 41):
            assert np.array_equal(backend.get(DataId(i)), payload(i, 256))
        backend.close()
        # Compacted state survives a reopen.
        reopened = SegmentLogBackend(str(tmp_path))
        assert set(dict(reopened.scan())) == {DataId(i) for i in range(31, 41)}
        reopened.close()

    def test_auto_compaction_triggers_on_delete(self, tmp_path):
        backend = SegmentLogBackend(
            str(tmp_path), segment_bytes=2048, compact_ratio=0.3
        )
        for i in range(1, 41):
            backend.put(DataId(i), payload(i, 256))
        size_before = backend._total_bytes
        for i in range(1, 40):
            backend.delete(DataId(i))
        assert backend._total_bytes < size_before
        assert np.array_equal(backend.get(DataId(40)), payload(40, 256))
        backend.close()

    def test_fresh_small_puts_do_not_trigger_compaction(self, tmp_path):
        # Per-record header/key overhead must not count as "dead" bytes:
        # unique tiny puts would otherwise rewrite the whole log every call.
        backend = SegmentLogBackend(str(tmp_path), compact_ratio=0.5)
        for i in range(1, 201):
            backend.put(DataId(i), payload(i, 8))
        # No compaction can have run: every record is still in the log.
        assert backend._total_bytes >= 200 * (8 + _RECORD_HEADER_SIZE)
        assert len(dict(backend.scan())) == 200
        backend.close()

    def test_auto_compaction_triggers_on_overwrite(self, tmp_path):
        backend = SegmentLogBackend(
            str(tmp_path), segment_bytes=4096, compact_ratio=0.5
        )
        # An overwrite-heavy workload must not grow the log unboundedly.
        for round_number in range(30):
            backend.put(DataId(1), payload(round_number, 256))
        live_record = 256 + 64  # payload + generous header/key allowance
        assert backend._total_bytes < 4 * live_record
        assert np.array_equal(backend.get(DataId(1)), payload(29, 256))
        backend.close()
