"""Tests for the streaming entanglement encoder."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.blocks import DataId, ParityId
from repro.core.encoder import Entangler, encode_file_payloads, latest_strand_creators
from repro.core.parameters import AEParameters, StrandClass
from repro.core.xor import payloads_equal, xor_payloads, zero_payload
from repro.exceptions import BlockSizeMismatchError, UnknownBlockError

from tests.conftest import make_payload


class TestEntangle:
    def test_each_block_produces_alpha_parities(self, any_params):
        encoder = Entangler(any_params, block_size=32)
        encoded = encoder.entangle(b"hello")
        assert len(encoded.parities) == any_params.alpha
        assert encoded.data_id == DataId(1)
        assert {parity.block_id.strand_class for parity in encoded.parities} == set(
            any_params.strand_classes
        )

    def test_first_parities_equal_first_data_block(self, hec_params):
        """At a strand start the input is the zero block, so parity == data."""
        encoder = Entangler(hec_params, block_size=16)
        encoded = encoder.entangle(b"\x07" * 16)
        for parity in encoded.parities:
            assert payloads_equal(parity.payload, encoded.data.payload)

    def test_parity_is_xor_of_data_and_previous_parity(self, hec_params):
        encoder = Entangler(hec_params, block_size=16)
        history = {}
        for index in range(1, 30):
            encoded = encoder.entangle(make_payload(index, 16))
            for parity in encoded.parities:
                history[parity.block_id] = parity.payload
            history[encoded.data_id] = encoded.data.payload
        # Verify the entanglement identity p_{i,j} = d_i XOR p_{h,i} for an
        # interior node on every strand class.
        lattice = encoder.lattice
        for strand_class in hec_params.strand_classes:
            index = 25
            output_id = ParityId(index, strand_class)
            input_id = lattice.input_parity(index, strand_class)
            expected = xor_payloads(history[DataId(index)], history[input_id])
            assert payloads_equal(history[output_id], expected)

    def test_payload_padding_and_size_checks(self, hec_params):
        encoder = Entangler(hec_params, block_size=8)
        encoded = encoder.entangle(b"abc")
        assert encoded.data.size == 8
        with pytest.raises(BlockSizeMismatchError):
            encoder.entangle(b"x" * 9)
        with pytest.raises(BlockSizeMismatchError):
            Entangler(hec_params, block_size=0)

    def test_encode_bytes_splits_documents(self, hec_params):
        encoder = Entangler(hec_params, block_size=64)
        blocks, length = encoder.encode_bytes(b"z" * 200)
        assert length == 200
        assert len(blocks) == 4
        assert encoder.blocks_encoded == 4

    def test_encode_stream_is_lazy(self, hec_params):
        encoder = Entangler(hec_params, block_size=16)
        stream = encoder.encode_stream(iter([b"a", b"b", b"c"]))
        first = next(stream)
        assert first.data_id == DataId(1)
        assert encoder.blocks_encoded == 1
        list(stream)
        assert encoder.blocks_encoded == 3


class TestMemoryFootprint:
    @given(st.sampled_from([(1, 1, 0), (2, 2, 5), (3, 2, 5), (3, 5, 5)]))
    @settings(max_examples=10, deadline=None)
    def test_memory_bounded_by_strand_count(self, spec):
        params = AEParameters(*spec)
        encoder = Entangler(params, block_size=8)
        for index in range(3 * params.s * max(params.p, 1) + 10):
            encoder.entangle(bytes([index % 256]) * 8)
        assert encoder.memory_footprint_blocks == params.strand_count

    def test_strand_head_ids_are_recent(self, hec_params):
        encoder = Entangler(hec_params, block_size=8)
        for index in range(40):
            encoder.entangle(bytes([index % 256]) * 8)
        window = hec_params.s * hec_params.p
        for parity in encoder.strand_head_ids():
            assert parity.index > 40 - window


class TestCrashRecovery:
    def test_restore_rebuilds_strand_heads(self, hec_params):
        encoder = Entangler(hec_params, block_size=16)
        store = {}
        for index in range(1, 61):
            encoded = encoder.entangle(make_payload(index, 16))
            for block in encoded.all_blocks():
                store[block.block_id] = block.payload
        expected_heads = {p for p in encoder.strand_head_ids()}

        recovered = Entangler(hec_params, block_size=16)
        recovered.restore(60, lambda parity: store.get(parity))
        assert set(recovered.strand_head_ids()) == expected_heads
        # Continuing the stream after recovery produces identical parities.
        continued_a = encoder.entangle(make_payload(61, 16))
        continued_b = recovered.entangle(make_payload(61, 16))
        for parity_a, parity_b in zip(continued_a.parities, continued_b.parities):
            assert payloads_equal(parity_a.payload, parity_b.payload)

    def test_restore_missing_parity_raises(self, hec_params):
        encoder = Entangler(hec_params, block_size=16)
        with pytest.raises(UnknownBlockError):
            encoder.restore(10, lambda parity: None)

    def test_restore_empty_archive(self, hec_params):
        encoder = Entangler(hec_params, block_size=16)
        encoder.restore(0, lambda parity: None)
        assert encoder.blocks_encoded == 0

    def test_latest_strand_creators_cover_all_strands(self, any_params):
        size = 4 * any_params.s * max(any_params.p, 1)
        creators = latest_strand_creators(any_params, size)
        assert len(creators) == any_params.strand_count
        assert all(1 <= creator <= size for creator in creators.values())


def test_encode_file_payloads_helper():
    blocks, length = encode_file_payloads(AEParameters.single(), b"small file", block_size=4)
    assert length == 10
    assert len(blocks) == 3
