"""Tests for the experiment runner (Figs. 11-13, Tables IV and VI)."""

from __future__ import annotations

import pytest

from repro.core.parameters import AEParameters
from repro.simulation.experiments import (
    ExperimentConfig,
    costs_table,
    data_loss_experiment,
    placement_balance_report,
    repair_rounds_experiment,
    run_all,
    sample_disaster,
    single_failure_experiment,
    vulnerable_data_experiment,
)
from repro.simulation.metrics import describe_scheme, format_table, scheme_costs
from repro.exceptions import InvalidParametersError

CONFIG = ExperimentConfig.quick(20_000)


def by_scheme(rows, disaster):
    return {
        row["scheme"]: row
        for row in rows
        if row["disaster (%)"] == disaster
    }


class TestTable4:
    def test_costs_table_matches_paper(self):
        rows = {row["scheme"]: row for row in costs_table()}
        assert rows["RS(10,4)"]["additional storage (%)"] == 40.0
        assert rows["RS(4,12)"]["additional storage (%)"] == 300.0
        assert rows["AE(3,2,5)"]["additional storage (%)"] == 300.0
        assert rows["AE(3,2,5)"]["single-failure repair (blocks read)"] == 2
        assert rows["RS(10,4)"]["single-failure repair (blocks read)"] == 10
        assert rows["4-way replication"]["single-failure repair (blocks read)"] == 1

    def test_describe_scheme_validation(self):
        assert describe_scheme(AEParameters.single()).kind == "ae"
        assert describe_scheme((10, 4)).kind == "rs"
        assert describe_scheme(3).kind == "replication"
        with pytest.raises(InvalidParametersError):
            describe_scheme((0, 4))
        with pytest.raises(InvalidParametersError):
            describe_scheme(1)
        with pytest.raises(InvalidParametersError):
            describe_scheme("bogus")


class TestDisasterExperiments:
    def test_sample_disaster_size(self):
        assert len(sample_disaster(CONFIG, 0.3)) == 30
        with pytest.raises(InvalidParametersError):
            sample_disaster(CONFIG, 1.5)

    def test_fig11_shape_ae_beats_rs_with_same_overhead(self):
        """The paper's headline: AE(3,2,5) loses no more data than RS(4,12)
        (same 300% overhead), and AE(2,2,5) beats 3-way replication."""
        rows = data_loss_experiment(CONFIG)
        for disaster in (30, 50):
            table = by_scheme(rows, disaster)
            assert (
                table["AE(3,2,5)"]["data loss (blocks)"]
                <= table["RS(4,12)"]["data loss (blocks)"] + CONFIG.data_blocks // 1000
            )
            assert (
                table["AE(2,2,5)"]["data loss (blocks)"]
                < table["3-way replication"]["data loss (blocks)"]
            )
            assert (
                table["AE(1,-,-)"]["data loss (blocks)"]
                < table["RS(8,2)"]["data loss (blocks)"]
            )

    def test_fig11_rs55_degrades_from_4way_to_2way(self):
        """RS(5,5) matches 4-way replication at 10% but approaches 2-way at 50%."""
        rows = data_loss_experiment(CONFIG)
        small = by_scheme(rows, 10)
        large = by_scheme(rows, 50)
        assert small["RS(5,5)"]["data loss (blocks)"] <= small["3-way replication"]["data loss (blocks)"]
        assert large["RS(5,5)"]["data loss (blocks)"] > large["3-way replication"]["data loss (blocks)"]

    def test_fig12_ae_keeps_more_data_protected_than_rs(self):
        rows = vulnerable_data_experiment(CONFIG)
        table = by_scheme(rows, 30)
        assert (
            table["AE(3,2,5)"]["vulnerable data (blocks)"]
            < table["RS(10,4)"]["vulnerable data (blocks)"]
        )
        assert (
            table["AE(2,2,5)"]["vulnerable data (blocks)"]
            < table["RS(8,2)"]["vulnerable data (blocks)"]
        )

    def test_fig13_ae_single_failure_fraction_is_high(self):
        rows = single_failure_experiment(CONFIG)
        ae_rows = [row for row in rows if row["scheme"] == "AE(3,2,5)"]
        assert all(row["single failures (% of repairs)"] > 50 for row in ae_rows)
        rs_rows = [row for row in rows if row["scheme"] == "RS(4,12)"]
        fractions = [row["single failures (% of repairs)"] for row in rs_rows]
        assert fractions[0] > fractions[-1]  # decreases with disaster size

    def test_table6_rounds_grow_with_disaster_size(self):
        rows = repair_rounds_experiment(CONFIG)
        assert {row["code"] for row in rows} == {"AE(1,-,-)", "AE(2,2,5)", "AE(3,2,5)"}
        for row in rows:
            assert row["10%"] <= row["50%"]
            assert 1 <= row["10%"] <= 40

    def test_placement_balance_report(self):
        rows = placement_balance_report(CONFIG)
        assert rows[0]["scheme"] == "RS(10,4)"
        assert rows[0]["blocks"] == rows[0]["stripes"] * 14

    def test_run_all_returns_every_table(self):
        tables = run_all(ExperimentConfig.quick(5_000))
        assert set(tables) == {
            "table4_costs",
            "fig11_data_loss",
            "fig12_vulnerable_data",
            "fig13_single_failures",
            "table6_repair_rounds",
            "placement_balance",
        }
        for rows in tables.values():
            assert rows


class TestFormatting:
    def test_format_table_alignment(self):
        rows = scheme_costs()
        text = format_table(rows)
        assert "scheme" in text.splitlines()[0]
        assert len(text.splitlines()) == len(rows) + 2

    def test_format_empty(self):
        assert format_table([]) == "(no rows)"
