"""Tests for the concurrent thread-pool front-end and the load generator.

Covers the four concurrency contracts of
:class:`~repro.system.frontend.ConcurrentStorageService`:

* request plumbing -- async/sync operations round trip, closing drains;
* backpressure -- a full admission queue bounces with
  :class:`ServiceOverloadedError` *before* any work starts;
* linearizability smoke -- under concurrent mixed put/get/delete traffic,
  every read returns some value that was actually written for that name
  (never a torn or interleaved payload);
* reads-during-repair -- ``get`` proceeds while a repair pass holds the
  maintenance gate, and stays byte-exact throughout.
"""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import (
    InvalidParametersError,
    ServiceOverloadedError,
    UnknownBlockError,
)
from repro.system.frontend import (
    ConcurrentStorageService,
    ReadWriteLock,
    derive_stripe_count,
)
from repro.system.loadgen import run_load
from repro.system.service import StorageConfig


def open_frontend(**kwargs) -> ConcurrentStorageService:
    overrides = {
        "scheme": "ae-3-2-5",
        "location_count": 10,
        "block_size": 256,
    }
    front_kwargs = {
        key: kwargs.pop(key) for key in ("workers", "queue_depth", "stripes") if key in kwargs
    }
    overrides.update(kwargs)
    return ConcurrentStorageService.open(StorageConfig(**overrides), **front_kwargs)


class TestReadWriteLock:
    def test_readers_share_writers_exclude(self):
        lock = ReadWriteLock()
        with lock.read_locked():
            # A second reader enters while the first holds the lock.
            entered = threading.Event()

            def reader() -> None:
                with lock.read_locked():
                    entered.set()

            thread = threading.Thread(target=reader)
            thread.start()
            thread.join(timeout=5)
            assert entered.is_set()

        order: list = []

        def writer(tag: str) -> None:
            with lock.write_locked():
                order.append(tag)

        with lock.write_locked():
            thread = threading.Thread(target=writer, args=("late",))
            thread.start()
            assert not order  # excluded while we hold the write side
        thread.join(timeout=5)
        assert order == ["late"]

    def test_waiting_writer_blocks_new_readers(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        writer_started = threading.Event()
        writer_done = threading.Event()

        def writer() -> None:
            writer_started.set()
            lock.acquire_write()
            lock.release_write()
            writer_done.set()

        reader_entered = threading.Event()

        def late_reader() -> None:
            lock.acquire_read()
            reader_entered.set()
            lock.release_read()

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        writer_started.wait(timeout=5)
        reader_thread = threading.Thread(target=late_reader)
        reader_thread.start()
        # Writer preference: the late reader must not jump the queue.
        assert not reader_entered.wait(timeout=0.1)
        lock.release_read()
        writer_thread.join(timeout=5)
        reader_thread.join(timeout=5)
        assert writer_done.is_set() and reader_entered.is_set()


class TestStripes:
    def test_stripe_count_derives_from_scheme_and_workers(self):
        frontend = open_frontend(workers=2)
        try:
            # ae-3-2-5: s=2, p=5 -> width 7; floor 2 * workers = 4.
            assert derive_stripe_count(frontend.service, 2) == 7
            assert derive_stripe_count(frontend.service, 16) == 32
            assert frontend.stripe_count == 7
        finally:
            frontend.close()

    def test_stripe_choice_is_deterministic(self):
        frontend = open_frontend(workers=2)
        try:
            assert frontend._stripe_for("doc-1") is frontend._stripe_for("doc-1")
        finally:
            frontend.close()


class TestRequestPlumbing:
    def test_round_trip_sync_and_async(self):
        with open_frontend(workers=4) as frontend:
            document = frontend.put("doc", b"payload" * 50)
            assert document.length == 350
            assert frontend.get("doc") == b"payload" * 50
            future = frontend.put_async("other", b"x" * 100)
            assert future.result().length == 100
            assert b"".join(frontend.get_stream("other")) == b"x" * 100
            assert frontend.verify_document("doc", b"payload" * 50)
            frontend.delete("doc")
            with pytest.raises(UnknownBlockError):
                frontend.get("doc")
            assert set(frontend.documents) == {"other"}
            assert frontend.status().documents == 1

    def test_invalid_configuration_rejected(self):
        with open_frontend() as frontend:
            with pytest.raises(InvalidParametersError):
                ConcurrentStorageService(frontend.service, workers=0)
            with pytest.raises(InvalidParametersError):
                ConcurrentStorageService(frontend.service, queue_depth=0)
            with pytest.raises(InvalidParametersError):
                ConcurrentStorageService(frontend.service, stripes=0)

    def test_closed_frontend_refuses_requests(self):
        frontend = open_frontend()
        frontend.close()
        frontend.close()  # idempotent
        with pytest.raises(InvalidParametersError):
            frontend.put("doc", b"x")


class TestBackpressure:
    def test_full_admission_queue_bounces_before_any_work(self):
        frontend = open_frontend(workers=1, queue_depth=1)
        try:
            gate = threading.Event()
            occupied = threading.Event()

            def blocker() -> bool:
                occupied.set()
                return gate.wait(timeout=10)

            future = frontend._submit(blocker)
            assert occupied.wait(timeout=5)
            # The single admission slot is taken: the next request bounces
            # immediately, typed, without touching the service.
            with pytest.raises(ServiceOverloadedError):
                frontend.put("doc", b"x" * 16)
            gate.set()
            assert future.result(timeout=5) is True
            # The slot drained: the retry goes through.
            frontend.put("doc", b"x" * 16)
            assert frontend.get("doc") == b"x" * 16
        finally:
            frontend.close()

    def test_load_generator_counts_overloads_without_failing(self):
        frontend = open_frontend(workers=1, queue_depth=1)
        try:
            report = run_load(
                frontend,
                clients=4,
                ops_per_client=15,
                payload_bytes=128,
                documents=8,
                seed=3,
            )
            assert report.ops == 4 * 15
            assert report.ops_per_sec > 0
        finally:
            frontend.close()


class TestLinearizabilitySmoke:
    THREADS = 4
    OPS = 40
    NAMES = 6

    def test_reads_only_ever_see_written_values(self):
        """Tagged payloads: any get must return a payload some writer put for
        that exact name -- a torn write or cross-document mix-up would
        surface as an unknown payload."""
        with open_frontend(workers=4) as frontend:
            written: dict = {f"n{i}": set() for i in range(self.NAMES)}
            written_lock = threading.Lock()
            errors: list = []
            barrier = threading.Barrier(self.THREADS)

            def worker(index: int) -> None:
                import random

                rng = random.Random(200 + index)
                try:
                    barrier.wait()
                    for counter in range(self.OPS):
                        name = f"n{rng.randrange(self.NAMES)}"
                        roll = rng.random()
                        if roll < 0.5:
                            tag = f"{name}|w{index}|c{counter}|".encode()
                            payload = tag * (256 // len(tag) + 1)
                            with written_lock:
                                written[name].add(payload)
                            frontend.put(name, payload)
                        elif roll < 0.85:
                            try:
                                got = frontend.get(name)
                            except UnknownBlockError:
                                continue
                            with written_lock:
                                ok = got in written[name]
                            if not ok:
                                errors.append((name, got[:40]))
                        else:
                            try:
                                frontend.delete(name)
                            except UnknownBlockError:
                                pass
                except Exception as exc:  # noqa: RPR004 - worker collects any failure
                    errors.append(exc)  # pragma: no cover - failure path

            threads = [
                threading.Thread(target=worker, args=(index,))
                for index in range(self.THREADS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert errors == []
            # Quiescent check: every surviving document holds a written value.
            for name in list(frontend.documents):
                assert frontend.get(name) in written[name]


class TestReadsDuringRepair:
    def test_gets_stay_byte_exact_while_repair_runs(self):
        with open_frontend(workers=4, location_count=12, block_size=512) as frontend:
            payloads = {
                f"doc-{number}": bytes([number + 1]) * (600 + 64 * number)
                for number in range(4)
            }
            for name, payload in payloads.items():
                frontend.put(name, payload)
            frontend.fail_locations([0, 1, 2])

            stop = threading.Event()
            errors: list = []
            reads = [0]

            def reader() -> None:
                import random

                rng = random.Random(99)
                names = sorted(payloads)
                while not stop.is_set():
                    name = names[rng.randrange(len(names))]
                    try:
                        if frontend.get(name) != payloads[name]:
                            errors.append(name)
                    except Exception as exc:  # noqa: RPR004 - reader collects any failure
                        errors.append(exc)  # pragma: no cover - failure path
                    reads[0] += 1

            threads = [threading.Thread(target=reader) for _ in range(3)]
            for thread in threads:
                thread.start()
            try:
                # Repair holds the maintenance write gate; plain gets never
                # touch it and keep streaming throughout.
                report = frontend.repair()
            finally:
                stop.set()
                for thread in threads:
                    thread.join()
            assert errors == []
            assert reads[0] > 0
            assert report.repaired_count >= 0
            frontend.restore_locations()
            for name, payload in payloads.items():
                assert frontend.get(name) == payload

    def test_mutations_wait_for_maintenance_but_complete(self):
        with open_frontend(workers=2) as frontend:
            frontend.put("doc", b"a" * 300)
            frontend.fail_locations([0])
            frontend.repair()
            frontend.restore_locations()
            # After maintenance releases the gate, mutations flow again.
            frontend.put("doc", b"b" * 300)
            assert frontend.get("doc") == b"b" * 300
