"""Integration tests for the geo-replicated cooperative backup use case (Sec. IV-A)."""

from __future__ import annotations

import pytest

from repro.core.blocks import DataId, ParityId
from repro.core.parameters import AEParameters, StrandClass
from repro.exceptions import UnknownBlockError
from repro.system.backup import CooperativeBackupNetwork

from tests.conftest import make_payload


def small_network(nodes: int = 12) -> CooperativeBackupNetwork:
    return CooperativeBackupNetwork(nodes, AEParameters.triple(5, 5), block_size=64)


class TestBackupUpload:
    def test_data_stays_local_parities_go_remote(self):
        network = small_network()
        payload = make_payload(1, 2000)
        document = network.backup(0, "photos.tar", payload)
        owner_node = network.node(0)
        assert all(
            (document.owner, data_id) in owner_node.local_blocks
            for data_id in document.data_ids
        )
        # Parities were uploaded to other nodes.
        lattice = network.lattice_of(document.owner)
        for parity in lattice.parity_ids():
            location = network.parity_location(document.owner, parity)
            assert location != 0
        assert owner_node.hosted.block_count == 0

    def test_multiple_users_have_independent_lattices(self):
        network = small_network()
        doc_a = network.backup(0, "a", make_payload(1, 500))
        doc_b = network.backup(1, "b", make_payload(2, 500))
        assert network.lattice_of(doc_a.owner).size == len(doc_a.data_ids)
        assert network.lattice_of(doc_b.owner).size == len(doc_b.data_ids)

    def test_unknown_backup_raises(self):
        network = small_network()
        with pytest.raises(UnknownBlockError):
            network.restore_file(0, "missing")


class TestFailureModeAndRepair:
    def test_restore_after_local_data_loss(self):
        network = small_network()
        payload = make_payload(3, 3000)
        network.backup(0, "notes", payload)
        network.node(0).lose_local_data()
        assert network.restore_file(0, "notes") == payload

    def test_restore_despite_remote_failures(self):
        network = small_network()
        payload = make_payload(4, 3000)
        network.backup(0, "notes", payload)
        network.node(0).lose_local_data()
        network.fail_nodes([2, 3, 4])
        assert network.restore_file(0, "notes") == payload

    def test_parity_repair_follows_table_three_steps(self):
        """The regenerated parity walkthrough of Table III."""
        network = small_network()
        network.backup(0, "notes", make_payload(5, 4000))
        owner = network.owner_name(0)
        lattice = network.lattice_of(owner)
        # Pick a parity hosted on a node we will fail.
        parity = next(iter(lattice.parity_ids()))
        victim = network.parity_location(owner, parity)
        network.fail_nodes([victim])
        trace = network.repair_parity(0, parity)
        assert trace.succeeded
        descriptions = [step.description for step in trace.steps]
        assert descriptions[:2] == ["Obtain dp-tuple id", "Choose p-block id"]
        assert "Repair block" in descriptions
        assert "Store repaired block" in descriptions
        # The repaired parity now lives on an available node.
        new_home = network.parity_location(owner, parity)
        assert network.node(new_home).available

    def test_repair_lattice_regenerates_all_parities_on_failed_nodes(self):
        network = small_network()
        network.backup(0, "notes", make_payload(6, 5000))
        network.fail_nodes([1, 2])
        traces = network.repair_lattice(0)
        assert traces, "some parities should have lived on the failed nodes"
        assert all(trace.succeeded for trace in traces)

    def test_redundancy_report_degrades_with_failures(self):
        network = small_network()
        network.backup(0, "notes", make_payload(7, 6000))
        healthy = network.redundancy_report(0)
        assert healthy.degraded_blocks() == 0
        network.fail_nodes([2, 3, 4, 5])
        degraded = network.redundancy_report(0)
        assert degraded.degraded_blocks() > 0
        assert degraded.complete < healthy.complete
