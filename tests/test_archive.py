"""Tests for the archival file store (repro.system.archive)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.blocks import DataId
from repro.core.parameters import AEParameters
from repro.exceptions import IntegrityError, UnknownBlockError
from repro.storage.maintenance import MaintenancePolicy
from repro.system.archive import ArchiveEntry, ArchiveStore


def make_archive(spec: str = "AE(3,2,5)", block_size: int = 64, locations: int = 25):
    return ArchiveStore(
        AEParameters.parse(spec),
        location_count=locations,
        block_size=block_size,
        seed=3,
    )


def payload(size: int, seed: int) -> bytes:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()


class TestPutGet:
    def test_roundtrip(self):
        archive = make_archive()
        data = payload(1000, 1)
        entry = archive.put("report.pdf", data)
        assert entry.version == 1
        assert entry.length == 1000
        assert entry.block_count == entry.data_ids.__len__() > 0
        assert archive.get("report.pdf") == data

    def test_multiple_documents(self):
        archive = make_archive()
        first = payload(500, 1)
        second = payload(700, 2)
        archive.put("a", first)
        archive.put("b", second)
        assert archive.names() == ["a", "b"]
        assert archive.get("a") == first
        assert archive.get("b") == second
        assert archive.total_versions() == 2

    def test_unknown_name_raises(self):
        archive = make_archive()
        with pytest.raises(UnknownBlockError):
            archive.get("missing")
        with pytest.raises(UnknownBlockError):
            archive.versions("missing")

    def test_entry_metadata(self):
        archive = make_archive()
        entry = archive.put("x", payload(200, 9))
        assert isinstance(entry, ArchiveEntry)
        assert entry.internal_name == "x@v1"
        assert all(isinstance(data_id, DataId) for data_id in entry.data_ids)

    def test_manifest_records_fingerprints(self):
        archive = make_archive()
        archive.put("x", payload(300, 4))
        # Every data block plus its alpha parities has a fingerprint.
        latest = archive.latest("x")
        expected = latest.block_count * (1 + archive.params.alpha)
        assert len(archive.manifest) >= expected


class TestVersioning:
    def test_new_version_on_overwrite(self):
        archive = make_archive()
        first = payload(400, 1)
        second = payload(400, 2)
        archive.put("doc", first)
        entry = archive.put("doc", second)
        assert entry.version == 2
        assert len(archive.versions("doc")) == 2
        assert archive.latest("doc").version == 2
        # Both versions remain readable (append-only lattice).
        assert archive.get("doc", version=1) == first
        assert archive.get("doc", version=2) == second
        assert archive.get("doc") == second

    def test_missing_version_raises(self):
        archive = make_archive()
        archive.put("doc", payload(100, 1))
        with pytest.raises(UnknownBlockError):
            archive.entry("doc", version=7)


class TestVerification:
    def test_verify_and_verify_all(self):
        archive = make_archive()
        archive.put("a", payload(256, 1))
        archive.put("b", payload(256, 2))
        assert archive.verify("a")
        assert archive.verify_all() == {"a": True, "b": True}

    def test_get_verified_detects_silent_corruption(self):
        archive = make_archive("AE(1,-,-)")
        data = payload(64, 5)  # a single block, easy to corrupt coherently
        entry = archive.put("doc", data)
        target = entry.data_ids[0]
        cluster = archive.system.cluster
        store = cluster.location(cluster.location_of(target))
        corrupted = np.asarray(store.get(target), dtype=np.uint8).copy()
        corrupted[0] ^= 0xFF
        store.put(target, corrupted)
        assert not archive.verify("doc")
        with pytest.raises(IntegrityError):
            archive.get_verified("doc")


class TestFailureRecovery:
    def test_read_survives_location_failures(self):
        archive = make_archive()
        data = payload(3000, 11)
        archive.put("big", data)
        locations = archive.system.cluster.available_locations()
        archive.fail_locations(locations[:5])
        assert archive.get("big") == data
        assert archive.verify("big")

    def test_repair_restores_redundancy(self):
        archive = make_archive()
        archive.put("doc", payload(2000, 12))
        cluster = archive.system.cluster
        failed = cluster.available_locations()[:4]
        archive.fail_locations(failed)
        report = archive.repair(policy=MaintenancePolicy.FULL)
        assert report.data_loss == 0
        assert report.repaired_count > 0
        # After relocation the document is readable even though the failed
        # locations never come back.
        assert archive.verify("doc")

    def test_status_summary_mentions_documents(self):
        archive = make_archive()
        archive.put("doc", payload(128, 1))
        summary = archive.status_summary()
        assert "archived versions" in summary


class TestScrubIntegration:
    def test_scrub_clean_archive(self):
        archive = make_archive()
        archive.put("doc", payload(1500, 7))
        report = archive.scrub()
        assert report.clean

    def test_scrub_and_repair_fixes_tampering(self):
        archive = make_archive()
        data = payload(1500, 8)
        entry = archive.put("doc", data)
        target = entry.data_ids[len(entry.data_ids) // 2]
        cluster = archive.system.cluster
        store = cluster.location(cluster.location_of(target))
        tampered = np.asarray(store.get(target), dtype=np.uint8).copy()
        tampered[:4] ^= 0xAA
        store.put(target, tampered)
        report = archive.scrub_and_repair()
        assert target in report.suspects
        assert archive.scrub().clean
        assert archive.get_verified("doc") == data
