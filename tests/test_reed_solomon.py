"""Tests for the systematic Reed-Solomon implementation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codes.reed_solomon import (
    PAPER_RS_SETTINGS,
    ReedSolomonCode,
    paper_rs_codes,
    systematic_encoding_matrix,
)
from repro.exceptions import DecodingError, InvalidParametersError


def make_stripe(code: ReedSolomonCode, seed: int = 0, size: int = 64):
    rng = np.random.default_rng(seed)
    data = [rng.integers(0, 256, size=size, dtype=np.uint8) for _ in range(code.k)]
    parities = code.encode(data)
    stripe = {index: payload for index, payload in enumerate(data)}
    stripe.update({code.k + index: payload for index, payload in enumerate(parities)})
    return data, stripe


class TestEncoding:
    def test_systematic_matrix_has_identity_top(self):
        matrix = systematic_encoding_matrix(4, 3)
        assert np.array_equal(matrix[:4, :], np.eye(4, dtype=np.uint8))

    def test_paper_settings_construct(self):
        codes = paper_rs_codes()
        assert [(code.k, code.m) for code in codes] == list(PAPER_RS_SETTINGS)

    def test_costs_match_table_four(self):
        code = ReedSolomonCode(10, 4)
        costs = code.costs()
        assert costs.additional_storage_percent == pytest.approx(40.0)
        assert costs.single_failure_cost == 10
        assert ReedSolomonCode(4, 12).costs().additional_storage_percent == pytest.approx(300.0)

    def test_invalid_settings(self):
        with pytest.raises(InvalidParametersError):
            ReedSolomonCode(0, 2)
        with pytest.raises(InvalidParametersError):
            ReedSolomonCode(4, 0)
        with pytest.raises(InvalidParametersError):
            ReedSolomonCode(200, 100)

    def test_stripe_size_checks(self):
        code = ReedSolomonCode(3, 2)
        with pytest.raises(Exception):
            code.encode([np.zeros(4, dtype=np.uint8)] * 2)
        with pytest.raises(Exception):
            code.encode([np.zeros(4, dtype=np.uint8), np.zeros(5, dtype=np.uint8), np.zeros(4, dtype=np.uint8)])


class TestDecoding:
    @given(
        st.sampled_from([(3, 2), (5, 3), (10, 4), (4, 12)]),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_any_m_erasures_are_tolerated(self, setting, seed):
        k, m = setting
        code = ReedSolomonCode(k, m)
        data, stripe = make_stripe(code, seed=seed, size=32)
        rng = np.random.default_rng(seed)
        erased = rng.choice(code.n, size=m, replace=False)
        available = {pos: payload for pos, payload in stripe.items() if pos not in erased}
        decoded = code.decode(available)
        for index in range(k):
            assert np.array_equal(decoded[index], data[index])

    def test_too_many_erasures_fail(self):
        code = ReedSolomonCode(4, 2)
        data, stripe = make_stripe(code)
        available = {pos: stripe[pos] for pos in range(3)}  # only 3 of 6 blocks
        with pytest.raises(DecodingError):
            code.decode(available)

    def test_repair_restores_both_data_and_parity(self):
        code = ReedSolomonCode(5, 3)
        data, stripe = make_stripe(code, seed=42)
        available = dict(stripe)
        del available[2]
        del available[6]
        assert np.array_equal(code.repair(2, available), stripe[2])
        assert np.array_equal(code.repair(6, available), stripe[6])

    def test_repair_of_available_block_is_identity(self):
        code = ReedSolomonCode(4, 2)
        _, stripe = make_stripe(code)
        assert np.array_equal(code.repair(1, stripe), stripe[1])

    def test_single_failure_reads_k_blocks(self):
        """The repair-cost premise of the paper: RS repairs read k blocks."""
        code = ReedSolomonCode(8, 2)
        assert code.single_failure_cost == 8
        assert code.repair_bandwidth(block_size=4096) == 8 * 4096

    def test_can_decode_is_mds(self):
        code = ReedSolomonCode(6, 3)
        assert code.can_decode(range(6))
        assert code.can_decode([0, 2, 4, 6, 7, 8])
        assert not code.can_decode([0, 1, 2, 3, 4])
