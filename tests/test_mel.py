"""Tests for the Minimal Erasures List framework (repro.analysis.mel)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.erasure_patterns import ErasurePattern, is_irrecoverable
from repro.analysis.mel import (
    FaultToleranceVector,
    TannerGraph,
    ae_window_flat_code,
    ae_window_graph,
    gf2_rank,
    gf2_solvable,
)
from repro.codes.flat_xor import mirrored_pairs_code, raid5_code
from repro.core.parameters import AEParameters, StrandClass
from repro.exceptions import InvalidParametersError


# ----------------------------------------------------------------------
# GF(2) linear algebra
# ----------------------------------------------------------------------
class TestGF2:
    def test_rank_of_identity(self):
        assert gf2_rank(np.eye(5, dtype=np.uint8)) == 5

    def test_rank_of_zero_matrix(self):
        assert gf2_rank(np.zeros((3, 4), dtype=np.uint8)) == 0

    def test_rank_with_dependent_rows(self):
        matrix = np.array([[1, 0, 1], [0, 1, 1], [1, 1, 0]], dtype=np.uint8)
        # Third row is the XOR of the first two.
        assert gf2_rank(matrix) == 2

    def test_rank_empty_matrix(self):
        assert gf2_rank(np.zeros((0, 0), dtype=np.uint8)) == 0

    def test_solvable_in_row_space(self):
        matrix = np.array([[1, 1, 0], [0, 1, 1]], dtype=np.uint8)
        assert gf2_solvable(matrix, np.array([1, 0, 1], dtype=np.uint8))

    def test_not_solvable_outside_row_space(self):
        matrix = np.array([[1, 1, 0]], dtype=np.uint8)
        assert not gf2_solvable(matrix, np.array([1, 0, 0], dtype=np.uint8))

    def test_solvable_with_no_rows(self):
        assert gf2_solvable(np.zeros((0, 3), dtype=np.uint8), np.zeros(3, dtype=np.uint8))
        assert not gf2_solvable(np.zeros((0, 3), dtype=np.uint8), np.array([1, 0, 0]))

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=2**20 - 1))
    @settings(max_examples=40, deadline=None)
    def test_rank_never_exceeds_dimensions(self, cols, seed):
        rng = np.random.default_rng(seed)
        rows = int(rng.integers(1, 7))
        matrix = rng.integers(0, 2, size=(rows, cols)).astype(np.uint8)
        rank = gf2_rank(matrix)
        assert 0 <= rank <= min(rows, cols)


# ----------------------------------------------------------------------
# Tanner graph basics
# ----------------------------------------------------------------------
class TestTannerGraph:
    def test_shape_properties(self):
        graph = TannerGraph(k=3, equations=(frozenset({0, 1}), frozenset({1, 2})))
        assert graph.m == 2
        assert graph.n == 5
        assert graph.label(0) == "d0"
        assert graph.label(3) == "p0"

    def test_rejects_bad_equation(self):
        with pytest.raises(InvalidParametersError):
            TannerGraph(k=2, equations=(frozenset({0, 5}),))

    def test_rejects_bad_label_count(self):
        with pytest.raises(InvalidParametersError):
            TannerGraph(k=2, equations=(frozenset({0}),), labels=("a",))

    def test_from_and_to_flat_code_roundtrip(self):
        code = raid5_code(4)
        graph = TannerGraph.from_flat_code(code)
        rebuilt = graph.to_flat_code()
        assert rebuilt.k == code.k
        assert tuple(rebuilt.equations) == tuple(code.equations)

    def test_generator_matrix_is_systematic(self):
        graph = TannerGraph.from_flat_code(raid5_code(3))
        generator = graph.generator_matrix()
        assert generator.shape == (4, 3)
        assert np.array_equal(generator[:3], np.eye(3, dtype=np.uint8))
        assert np.array_equal(generator[3], np.ones(3, dtype=np.uint8))

    def test_lost_data_rejects_out_of_range(self):
        graph = TannerGraph.from_flat_code(raid5_code(3))
        with pytest.raises(InvalidParametersError):
            graph.lost_data([99])


# ----------------------------------------------------------------------
# Erasure analysis on known codes
# ----------------------------------------------------------------------
class TestKnownCodes:
    def test_raid5_tolerates_any_single_erasure(self):
        graph = TannerGraph.from_flat_code(raid5_code(4))
        for position in range(graph.n):
            assert not graph.is_irrecoverable([position])

    def test_raid5_double_data_erasure_is_minimal(self):
        graph = TannerGraph.from_flat_code(raid5_code(4))
        assert graph.is_irrecoverable([0, 1])
        assert graph.is_minimal_erasure([0, 1])

    def test_raid5_parity_plus_data_is_minimal(self):
        graph = TannerGraph.from_flat_code(raid5_code(4))
        assert graph.is_minimal_erasure([0, 4])

    def test_non_minimal_superset_rejected(self):
        graph = TannerGraph.from_flat_code(raid5_code(4))
        assert graph.is_irrecoverable([0, 1, 2])
        assert not graph.is_minimal_erasure([0, 1, 2])

    def test_mirrored_pairs_lose_data_only_when_both_copies_fail(self):
        code = mirrored_pairs_code(3)
        graph = TannerGraph.from_flat_code(code)
        # Losing d0 and its mirror parity p0 loses d0.
        assert graph.lost_data([0, 3]) == [0]
        # Losing two blocks of different pairs is fine.
        assert not graph.is_irrecoverable([0, 4])

    def test_mel_of_raid5(self):
        graph = TannerGraph.from_flat_code(raid5_code(3))
        mel = graph.minimal_erasures(max_size=2)
        # Every pair of symbols is a minimal erasure for RAID5 (k=3, n=4):
        # C(4, 2) = 6 pairs.
        assert len(mel) == 6
        assert mel.smallest().size == 2
        assert all(erasure.size == 2 for erasure in mel)

    def test_mel_histogram_and_me_size(self):
        graph = TannerGraph.from_flat_code(raid5_code(3))
        mel = graph.minimal_erasures(max_size=3)
        histogram = mel.size_histogram()
        assert histogram[2] == 6
        assert mel.minimal_erasure_size(1) == 2
        assert mel.minimal_erasure_size(3) is None

    def test_mel_respects_max_data_loss(self):
        graph = TannerGraph.from_flat_code(raid5_code(3))
        mel = graph.minimal_erasures(max_size=3, max_data_loss=1)
        assert all(erasure.data_loss <= 1 for erasure in mel)

    def test_mel_requires_positive_size(self):
        graph = TannerGraph.from_flat_code(raid5_code(3))
        with pytest.raises(InvalidParametersError):
            graph.minimal_erasures(max_size=0)


# ----------------------------------------------------------------------
# Fault tolerance vector
# ----------------------------------------------------------------------
class TestFaultToleranceVector:
    def test_raid5_vector(self):
        graph = TannerGraph.from_flat_code(raid5_code(3))
        vector = graph.minimal_erasures(max_size=2).fault_tolerance_vector(2)
        assert vector.probability(0) == 0.0
        assert vector.probability(1) == 0.0
        assert vector.probability(2) == 1.0
        assert vector.hamming_distance() == 2

    def test_vector_rows_are_well_formed(self):
        graph = TannerGraph.from_flat_code(raid5_code(3))
        rows = graph.minimal_erasures(max_size=2).fault_tolerance_vector(2).as_rows()
        assert [row["failures"] for row in rows] == [0, 1, 2]
        assert all(0.0 <= row["P(data loss)"] <= 1.0 for row in rows)

    def test_perfect_code_reports_no_loss(self):
        vector = FaultToleranceVector(
            irrecoverable_counts={0: 0, 1: 0}, total_counts={0: 1, 1: 4}, symbols=4
        )
        assert vector.hamming_distance() == 5
        assert vector.probability(3) == 0.0


# ----------------------------------------------------------------------
# AE lattice window flattening and cross-check
# ----------------------------------------------------------------------
class TestAEWindow:
    def test_window_shape(self):
        params = AEParameters.single()
        graph = ae_window_graph(params, 6)
        assert graph.k == 6
        assert graph.m == 6  # one parity per node for alpha = 1
        assert graph.label(6).startswith("p[1,")

    def test_window_rejects_empty(self):
        with pytest.raises(InvalidParametersError):
            ae_window_graph(AEParameters.single(), 0)

    def test_parity_support_is_strand_prefix(self):
        """For AE(1) the parity created by node i is the XOR of d1..di."""
        params = AEParameters.single()
        graph = ae_window_graph(params, 5)
        # Parity created by node 3 (0-based data positions 0..2).
        equation = graph.equations[2]
        assert equation == frozenset({0, 1, 2})

    def test_flat_code_roundtrips_payloads(self):
        params = AEParameters(2, 2, 2)
        code = ae_window_flat_code(params, 6)
        rng = np.random.default_rng(7)
        data = [rng.integers(0, 256, size=32, dtype=np.uint8) for _ in range(code.k)]
        parities = code.encode(data)
        available = {index: payload for index, payload in enumerate(data)}
        available.update(
            {code.k + index: payload for index, payload in enumerate(parities)}
        )
        # Drop two data blocks; the peeling decoder must recover them.
        del available[0]
        del available[3]
        decoded = code.decode(available)
        for index, payload in enumerate(data):
            assert np.array_equal(decoded[index], payload)

    def test_single_entanglement_primitive_form_crosscheck(self):
        """The MEL ground truth agrees with the lattice ME search on Fig. 6-I.

        Primitive form I for AE(1): two adjacent nodes d_i, d_{i+1} and the
        edge between them.  In the flattened window the edge created by node i
        is parity index k + (i - 1).
        """
        params = AEParameters.single()
        nodes = 6
        graph = ae_window_graph(params, nodes)
        # Erase d3, d4 and the parity created by node 3 (edge p3,4).
        erased = [2, 3, nodes + 2]
        assert graph.is_irrecoverable(erased)
        assert graph.is_minimal_erasure(erased)
        # The equivalent lattice pattern is irrecoverable too.
        pattern = ErasurePattern(
            data_nodes=frozenset({3, 4}),
            parity_edges=frozenset({(3, StrandClass.HORIZONTAL)}),
        )
        assert is_irrecoverable(pattern, params)

    def test_double_entanglement_tolerates_primitive_form(self):
        """Fig. 7: with alpha = 2 the primitive form no longer loses data."""
        params = AEParameters(2, 1, 1)
        nodes = 6
        graph = ae_window_graph(params, nodes)
        # Same shape as above: d3, d4 and the horizontal edge between them.
        h_parity_position = nodes + (3 - 1) * 2  # two parities per node, H first
        erased = [2, 3, h_parity_position]
        assert not graph.is_irrecoverable(erased)

    @pytest.mark.parametrize("spec", ["AE(1,-,-)", "AE(2,1,1)", "AE(2,2,2)"])
    def test_single_erasures_never_lose_data(self, spec):
        params = AEParameters.parse(spec)
        graph = ae_window_graph(params, 5)
        for position in range(graph.n):
            assert not graph.is_irrecoverable([position])

    @given(st.integers(min_value=2, max_value=8))
    @settings(max_examples=8, deadline=None)
    def test_window_equation_count_matches_alpha(self, nodes):
        params = AEParameters(2, 1, 1)
        graph = ae_window_graph(params, nodes)
        assert graph.m == params.alpha * nodes

    def test_erasing_everything_loses_everything(self):
        params = AEParameters.single()
        graph = ae_window_graph(params, 4)
        lost = graph.lost_data(range(graph.n))
        assert lost == list(range(graph.k))

    def test_minimal_erasure_descriptions(self):
        graph = ae_window_graph(AEParameters.single(), 4)
        mel = graph.minimal_erasures(max_size=3)
        assert len(mel) > 0
        description = mel.smallest().describe(graph)
        assert "loses" in description
