"""Import-surface test: `repro.simulation.__all__` is complete and importable.

Mirrors the `repro.codes` surface test from the scheme-registry PR: every
name in ``__all__`` resolves, the list is sorted and unique, and every
public class/function defined in the subpackage's modules is exported.
"""

from __future__ import annotations

import inspect

import repro.simulation


class TestSimulationImportSurface:
    def test_all_entries_resolve(self):
        for name in repro.simulation.__all__:
            assert getattr(repro.simulation, name) is not None

    def test_all_is_sorted_and_unique(self):
        exported = list(repro.simulation.__all__)
        assert exported == sorted(exported)
        assert len(exported) == len(set(exported))

    def test_star_import_matches_all(self):
        namespace: dict = {}
        exec("from repro.simulation import *", namespace)
        missing = set(repro.simulation.__all__) - set(namespace)
        assert not missing, f"__all__ entries not importable via *: {sorted(missing)}"

    def test_public_submodule_definitions_are_exported(self):
        import repro.simulation.adaptive
        import repro.simulation.churn
        import repro.simulation.engine
        import repro.simulation.experiments
        import repro.simulation.lattice_model
        import repro.simulation.metrics
        import repro.simulation.replication_model
        import repro.simulation.rs_model
        import repro.simulation.traces
        import repro.simulation.workload

        submodules = [
            repro.simulation.adaptive,
            repro.simulation.churn,
            repro.simulation.engine,
            repro.simulation.experiments,
            repro.simulation.lattice_model,
            repro.simulation.metrics,
            repro.simulation.replication_model,
            repro.simulation.rs_model,
            repro.simulation.traces,
            repro.simulation.workload,
        ]
        exported = set(repro.simulation.__all__)
        for module in submodules:
            for name, value in vars(module).items():
                if name.startswith("_"):
                    continue
                if not (inspect.isclass(value) or inspect.isfunction(value)):
                    continue
                if getattr(value, "__module__", None) != module.__name__:
                    continue
                assert name in exported, (
                    f"{module.__name__}.{name} missing from repro.simulation.__all__"
                )

    def test_engine_is_the_front_door(self):
        """The engine API the docs advertise is part of the surface."""
        for required in (
            "SimulationEngine",
            "SimulatedPlacement",
            "LatticeSimulation",
            "StripeSimulation",
            "build_simulation",
            "simulate_disasters",
            "normalise_events",
            "scheme_id_for",
        ):
            assert required in repro.simulation.__all__
