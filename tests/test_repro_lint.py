"""Tests for the repro-lint static-analysis suite (tools/repro_lint).

Every rule is exercised against a pair of fixtures under
``tests/fixtures/repro_lint``: a ``bad_*.py`` snippet the rule must flag
and a ``good_*.py`` near-miss it must pass.  On top of the per-rule
fixtures we check ``# noqa`` suppression semantics, the project-wide
registry/surface cross-check, the CLI exit codes and JSON report shape,
and -- most importantly -- that the live tree lints clean with a small,
audited suppression budget.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
TOOLS = ROOT / "tools"
FIXTURES = ROOT / "tests" / "fixtures" / "repro_lint"

if str(TOOLS) not in sys.path:
    sys.path.insert(0, str(TOOLS))

from repro_lint.framework import (  # noqa: E402  (path setup above)
    DEFAULT_EXCLUDES,
    all_rules,
    extract_noqa,
    lint_paths,
    rule_for_code,
)
from repro_lint.reporters import JSON_FORMAT_VERSION, render_json, render_text  # noqa: E402

#: Exclusions used when linting the fixture tree itself (lifts the
#: ``fixtures/repro_lint`` entry from DEFAULT_EXCLUDES).
FIXTURE_EXCLUDES = ("__pycache__",)


def lint_fixture(*relative, select=None):
    paths = [FIXTURES.joinpath(part) for part in relative]
    rules = [rule_for_code(code) for code in select] if select else None
    return lint_paths(paths, rules=rules, excludes=FIXTURE_EXCLUDES)


def codes_of(result):
    return [finding.code for finding in result.findings]


# ----------------------------------------------------------------------
# framework basics
# ----------------------------------------------------------------------


def test_rule_catalogue_is_complete_and_stable():
    codes = [rule.code for rule in all_rules()]
    assert codes == ["RPR001", "RPR002", "RPR003", "RPR004", "RPR005"]
    for rule in all_rules():
        assert rule.name
        assert rule.summary


def test_extract_noqa_parses_bare_and_coded_comments():
    source = (
        "x = 1  # noqa\n"
        "y = 2  # noqa: RPR001, RPR004\n"
        "z = 'not a real # noqa comment'\n"
    )
    noqa = extract_noqa(source)
    assert noqa[1] == {"*"}
    assert noqa[2] == {"RPR001", "RPR004"}
    assert 3 not in noqa


def test_syntax_error_reports_rpr000(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def oops(:\n", encoding="utf-8")
    result = lint_paths([broken], excludes=FIXTURE_EXCLUDES)
    assert codes_of(result) == ["RPR000"]
    assert "does not parse" in result.findings[0].message


# ----------------------------------------------------------------------
# RPR001 determinism
# ----------------------------------------------------------------------


def test_rpr001_flags_unseeded_rngs_and_wall_clock():
    result = lint_fixture(
        "rpr001/src/repro/simulation/bad_rng.py", select=["RPR001"]
    )
    assert codes_of(result) == ["RPR001"] * 5
    messages = " | ".join(finding.message for finding in result.findings)
    assert "default_rng" in messages
    assert "random.Random" in messages
    assert "wall clock" in messages
    assert "global unseeded RNG" in messages


def test_rpr001_passes_seeded_rngs():
    result = lint_fixture(
        "rpr001/src/repro/simulation/good_rng.py", select=["RPR001"]
    )
    assert result.ok


def test_rpr001_scoped_to_engine_paths(tmp_path):
    elsewhere = tmp_path / "tooling.py"
    elsewhere.write_text("import time\n\nSTAMP = time.time()\n", encoding="utf-8")
    result = lint_paths(
        [elsewhere], rules=[rule_for_code("RPR001")], excludes=FIXTURE_EXCLUDES
    )
    assert result.ok  # wall clock outside engine paths is allowed


# ----------------------------------------------------------------------
# RPR002 import-surface sync
# ----------------------------------------------------------------------


def test_rpr002_flags_unbound_and_duplicate_all_entries():
    result = lint_fixture("rpr002/bad_all.py", select=["RPR002"])
    messages = sorted(finding.message for finding in result.findings)
    assert len(messages) == 2
    assert "duplicate __all__ entry 'exported_fn'" in messages[1]
    assert "ghost_name" in messages[0]


def test_rpr002_passes_bound_conditional_and_sorted_all():
    result = lint_fixture("rpr002/good_all.py", select=["RPR002"])
    assert result.ok


def test_rpr002_passes_pep562_module_getattr():
    result = lint_fixture("rpr002/good_getattr.py", select=["RPR002"])
    assert result.ok


def test_rpr002_cross_check_flags_uncovered_registry_id(tmp_path):
    # Copy the project fixture out of tests/ -- inside the repo the /tests/
    # prefix would classify registries.py itself as a test file.
    shutil.copy(FIXTURES / "rpr002/proj/registries.py", tmp_path / "registries.py")
    shutil.copy(
        FIXTURES / "rpr002/proj/test_registries_surface.py",
        tmp_path / "test_registries_surface.py",
    )
    result = lint_paths(
        [tmp_path], rules=[rule_for_code("RPR002")], excludes=FIXTURE_EXCLUDES
    )
    assert len(result.findings) == 1
    assert "'orphan'" in result.findings[0].message
    assert "'covered'" not in result.findings[0].message
    assert result.findings[0].path.endswith("registries.py")


def test_rpr002_cross_check_skipped_without_surface_file(tmp_path):
    shutil.copy(FIXTURES / "rpr002/proj/registries.py", tmp_path / "registries.py")
    result = lint_paths(
        [tmp_path], rules=[rule_for_code("RPR002")], excludes=FIXTURE_EXCLUDES
    )
    assert result.ok  # linting src alone must not demand the tests tree


# ----------------------------------------------------------------------
# RPR003 bytes-payload safety
# ----------------------------------------------------------------------


def test_rpr003_flags_stringified_payloads():
    result = lint_fixture(
        "rpr003/src/repro/storage/bad_payload.py", select=["RPR003"]
    )
    assert codes_of(result) == ["RPR003"] * 5
    messages = " | ".join(finding.message for finding in result.findings)
    assert "str(payload)" in messages
    assert ".decode(" in messages
    assert "f-string" in messages
    assert "TypeError" in messages


def test_rpr003_passes_repr_hex_and_bytes_concat():
    result = lint_fixture(
        "rpr003/src/repro/storage/good_payload.py", select=["RPR003"]
    )
    assert result.ok


# ----------------------------------------------------------------------
# RPR004 hygiene
# ----------------------------------------------------------------------


def test_rpr004_flags_mutable_defaults_and_broad_excepts():
    result = lint_fixture("rpr004/plain/bad_hygiene.py", select=["RPR004"])
    messages = [finding.message for finding in result.findings]
    assert len(messages) == 4
    assert sum("mutable default" in message for message in messages) == 2
    assert sum("bare `except:`" in message for message in messages) == 1
    assert sum("broad `except Exception`" in message for message in messages) == 1


def test_rpr004_passes_none_defaults_and_narrow_handlers():
    result = lint_fixture("rpr004/plain/good_hygiene.py", select=["RPR004"])
    assert result.ok


def test_rpr004_flags_float_equality_in_analysis_paths():
    result = lint_fixture(
        "rpr004/src/repro/analysis/bad_float.py", select=["RPR004"]
    )
    assert codes_of(result) == ["RPR004"] * 2
    assert all("float equality" in f.message for f in result.findings)


def test_rpr004_passes_isclose_and_int_equality():
    result = lint_fixture(
        "rpr004/src/repro/analysis/good_float.py", select=["RPR004"]
    )
    assert result.ok


def test_rpr004_float_equality_not_policed_outside_analysis():
    # bad_hygiene.py lives outside repro/analysis/: no float-eq findings even
    # though the rule itself applies (its other checks are global).
    result = lint_fixture("rpr004/plain/bad_hygiene.py", select=["RPR004"])
    assert not any("float equality" in f.message for f in result.findings)


# ----------------------------------------------------------------------
# RPR005 local determinism-sensitive imports
# ----------------------------------------------------------------------


def test_rpr005_flags_function_local_sensitive_imports():
    result = lint_fixture(
        "rpr005/src/repro/bad_local_import.py", select=["RPR005"]
    )
    assert codes_of(result) == ["RPR005"] * 2
    messages = " | ".join(finding.message for finding in result.findings)
    assert "`import random` in pick()" in messages
    assert "`from datetime import ...` in stamp()" in messages


def test_rpr005_passes_top_level_sensitive_and_local_benign_imports():
    result = lint_fixture(
        "rpr005/src/repro/good_local_import.py", select=["RPR005"]
    )
    assert result.ok


# ----------------------------------------------------------------------
# noqa suppression
# ----------------------------------------------------------------------


def test_noqa_suppresses_matching_codes_only():
    result = lint_fixture("noqa/suppressed.py")
    # Line 4: `# noqa: RPR004` suppresses the mutable default.
    # Line 12: bare `# noqa` suppresses the broad except.
    # Line 19: `# noqa: RPR001` names the wrong code -- finding survives.
    assert len(result.suppressed) == 2
    assert {finding.code for finding in result.suppressed} == {"RPR004"}
    assert codes_of(result) == ["RPR004"]
    assert result.findings[0].line == 19


# ----------------------------------------------------------------------
# reporters
# ----------------------------------------------------------------------


def test_text_reporter_summarises_findings():
    result = lint_fixture("rpr004/plain/bad_hygiene.py", select=["RPR004"])
    text = render_text(result)
    assert "4 finding(s)" in text
    assert "RPR004" in text
    clean = lint_fixture("rpr004/plain/good_hygiene.py", select=["RPR004"])
    assert "repro-lint: clean" in render_text(clean)


def test_json_reporter_shape():
    result = lint_fixture("rpr001/src/repro/simulation/bad_rng.py")
    document = json.loads(render_json(result))
    assert document["version"] == JSON_FORMAT_VERSION
    assert document["tool"] == "repro-lint"
    assert document["ok"] is False
    assert set(document["rules"]) == {
        "RPR001", "RPR002", "RPR003", "RPR004", "RPR005"
    }
    for finding in document["findings"]:
        assert set(finding) == {"code", "path", "line", "col", "message"}


# ----------------------------------------------------------------------
# live tree + CLI
# ----------------------------------------------------------------------


def test_live_tree_is_clean_with_at_most_eight_suppressions():
    # The suppression budget keeps `# noqa` scarce and auditable.  The
    # current six: cleanup-and-reraise sites in the WAL group commit and
    # the front-end (a broad except that *re-raises* after releasing a
    # lock/slot is the correct shape), and hammer-test worker threads
    # that collect any failure into an errors list (an uncaught thread
    # exception would otherwise vanish into stderr and pass the test).
    result = lint_paths(
        [ROOT / "src", ROOT / "tests", ROOT / "benchmarks"],
        excludes=DEFAULT_EXCLUDES,
    )
    assert result.findings == [], "\n".join(f.render() for f in result.findings)
    assert len(result.suppressed) <= 8
    assert result.files_checked > 100


def run_cli(*args, cwd=ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(TOOLS)] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    )
    return subprocess.run(
        [sys.executable, "-m", "repro_lint", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
    )


def test_cli_clean_tree_exits_zero():
    proc = run_cli("src", "tests", "benchmarks")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "repro-lint: clean" in proc.stdout


def test_cli_findings_exit_one_with_json_artifact(tmp_path):
    # Copy the fixture out of fixtures/repro_lint: the CLI always applies
    # DEFAULT_EXCLUDES, which hides the fixture tree from normal runs.
    bad = tmp_path / "bad_hygiene.py"
    shutil.copy(FIXTURES / "rpr004" / "plain" / "bad_hygiene.py", bad)
    artifact = tmp_path / "report" / "repro-lint.json"
    proc = run_cli(
        str(bad),
        "--format",
        "json",
        "--json-output",
        str(artifact),
    )
    assert proc.returncode == 1
    document = json.loads(proc.stdout)
    assert document["ok"] is False
    assert artifact.is_file()
    assert json.loads(artifact.read_text(encoding="utf-8")) == document


def test_cli_select_restricts_rules(tmp_path):
    target = tmp_path / "repro" / "simulation" / "bad_rng.py"
    target.parent.mkdir(parents=True)
    shutil.copy(
        FIXTURES / "rpr001" / "src" / "repro" / "simulation" / "bad_rng.py", target
    )
    all_rules_proc = run_cli(str(target))
    assert all_rules_proc.returncode == 1  # RPR001 fires on the engine path
    proc = run_cli(str(target), "--select", "RPR004")
    assert proc.returncode == 0  # RPR001 violations invisible to RPR004


def test_cli_list_rules():
    proc = run_cli("--list-rules")
    assert proc.returncode == 0
    for code in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005"):
        assert code in proc.stdout


@pytest.mark.parametrize(
    "args", [(), ("--select", "RPR999", "src")], ids=["no-paths", "unknown-code"]
)
def test_cli_usage_errors_exit_two(args):
    proc = run_cli(*args)
    assert proc.returncode == 2
