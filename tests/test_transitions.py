"""Live scheme transitions: classification, migration, crash resume, sharding.

Acceptance tests of the dynamic-redundancy subsystem
(:mod:`repro.system.transitions`): a live service migrates
``rep-3 -> ae-3-2-5 -> rs-10-4`` end to end with byte-exact reads at every
stage, an alpha raise rewrites zero data blocks, puncturing round-trips,
and a crash image taken at any document or stage boundary resumes to
completion on reopen -- under either endpoint's scheme id.
"""

from __future__ import annotations

import random
import shutil
import threading

import pytest

import repro.schemes as schemes
from repro.core.blocks import DataId, ParityId
from repro.exceptions import InvalidParametersError, ReproError
from repro.system.frontend import ConcurrentStorageService
from repro.system.service import StorageConfig, StorageService
from repro.system.transitions import (
    KIND_ALPHA_RAISE,
    KIND_REENCODE,
    KIND_REPUNCTURE,
    TRANSITION_NAME,
    TransitionPlan,
    classify,
)

BLOCK_SIZE = 512


def mem_config(scheme, **overrides):
    base = dict(scheme=scheme, location_count=24, block_size=BLOCK_SIZE, seed=5)
    base.update(overrides)
    return StorageConfig(**base)


def disk_config(scheme, root, **overrides):
    return mem_config(scheme, backend="disk", data_dir=str(root), **overrides)


def make_docs(count=5, size=3000, seed=3):
    rng = random.Random(seed)
    return {f"doc-{index:02d}": rng.randbytes(size) for index in range(count)}


def fill(service, payloads):
    for name, payload in payloads.items():
        service.put(name, payload)


def assert_byte_exact(service, payloads):
    for name, payload in payloads.items():
        assert service.get(name) == payload, f"{name} corrupted"


def resolve(scheme_id):
    return schemes.get(scheme_id, block_size=BLOCK_SIZE)


class TestClassify:
    @pytest.mark.parametrize(
        "source,target,kind",
        [
            ("rep-3", "ae-3-2-5", KIND_REENCODE),
            ("ae-3-2-5", "rs-10-4", KIND_REENCODE),
            ("rep-3", "rs-10-4", KIND_REENCODE),
            ("ae-2-2-5", "ae-3-2-5", KIND_ALPHA_RAISE),
            ("ae-2-3-7", "ae-3-3-7", KIND_ALPHA_RAISE),
            ("ae-3-2-5", "ae-3-2-5-p75", KIND_REPUNCTURE),
            ("ae-3-2-5-p75", "ae-3-2-5", KIND_REPUNCTURE),
            ("ae-3-2-5-p75", "ae-3-2-5-p50", KIND_REPUNCTURE),
        ],
    )
    def test_kinds(self, source, target, kind):
        assert classify(resolve(source), resolve(target)) == kind

    def test_raising_past_alpha_three_is_rejected(self):
        """AE(4,2,5) duplicates a strand class: no new protection, so no raise."""
        with pytest.raises(InvalidParametersError, match="alpha=3"):
            classify(resolve("ae-3-2-5"), resolve("ae-4-2-5"))

    def test_lowering_alpha_points_at_puncturing(self):
        with pytest.raises(InvalidParametersError, match="punctur"):
            classify(resolve("ae-3-2-5"), resolve("ae-2-2-5"))

    def test_geometry_changes_are_rejected(self):
        with pytest.raises(InvalidParametersError):
            classify(resolve("ae-3-2-5"), resolve("ae-3-3-7"))

    def test_raising_a_punctured_lattice_is_rejected(self):
        with pytest.raises(InvalidParametersError, match="unpunctured"):
            classify(resolve("ae-2-2-5-p75"), resolve("ae-3-2-5-p75"))


class TestLiveChain:
    def test_rep_to_ae_to_rs_end_to_end(self):
        payloads = make_docs()
        service = StorageService.open(mem_config("rep-3"))
        fill(service, payloads)

        report = service.transition_to("ae-3-2-5")
        assert report.kind == KIND_REENCODE
        assert report.documents_migrated == len(payloads)
        assert service.scheme.scheme_id == "ae-3-2-5"
        assert service.transition is None
        assert service.epoch_history is not None
        assert_byte_exact(service, payloads)

        report = service.transition_to("rs-10-4")
        assert report.kind == KIND_REENCODE
        assert service.scheme.scheme_id == "rs-10-4"
        assert_byte_exact(service, payloads)

        # The shared AE namespace must be fully reclaimed after leaving AE.
        leftover = [
            block_id
            for block_id in service.cluster.block_ids()
            if isinstance(block_id, (DataId, ParityId))
        ]
        assert leftover == []

    def test_alpha_raise_rewrites_zero_data_blocks(self):
        payloads = make_docs()
        service = StorageService.open(mem_config("ae-2-2-5"))
        fill(service, payloads)
        data_ids_before = {
            data_id for doc in service.documents.values() for data_id in doc.data_ids
        }

        report = service.transition_to("ae-3-2-5")
        assert report.kind == KIND_ALPHA_RAISE
        assert report.data_blocks_rewritten == 0
        assert report.documents_migrated == 0
        assert report.parities_written > 0
        data_ids_after = {
            data_id for doc in service.documents.values() for data_id in doc.data_ids
        }
        assert data_ids_after == data_ids_before
        assert_byte_exact(service, payloads)

        history = service.epoch_history
        assert history is not None
        assert [epoch.params.alpha for epoch in history.epochs] == [2, 3]
        assert history.params_at(1).alpha == 2

    def test_puncture_round_trip(self):
        payloads = make_docs()
        service = StorageService.open(mem_config("ae-3-2-5"))
        fill(service, payloads)

        demoted = service.transition_to("ae-3-2-5-p75")
        assert demoted.kind == KIND_REPUNCTURE
        assert demoted.blocks_deleted > 0
        assert service.scheme.scheme_id == "ae-3-2-5-p75"
        assert_byte_exact(service, payloads)

        restored = service.transition_to("ae-3-2-5")
        assert restored.kind == KIND_REPUNCTURE
        assert restored.parities_written == demoted.blocks_deleted
        assert_byte_exact(service, payloads)

    def test_no_op_transition_returns_none(self):
        service = StorageService.open(mem_config("ae-3-2-5"))
        fill(service, make_docs(count=1))
        assert service.transition_to("ae-3-2-5") is None

    def test_block_size_mismatch_is_rejected(self):
        service = StorageService.open(mem_config("ae-3-2-5"))
        with pytest.raises(InvalidParametersError, match="block size"):
            service.transition_to(schemes.get("rs-10-4", block_size=BLOCK_SIZE * 2))

    def test_raise_past_three_is_rejected_live(self):
        service = StorageService.open(mem_config("ae-3-2-5"))
        fill(service, make_docs(count=1))
        with pytest.raises(InvalidParametersError, match="alpha=3"):
            service.transition_to("ae-4-2-5")
        assert service.transition is None
        assert service.scheme.scheme_id == "ae-3-2-5"


class _CrashGuard:
    """Doc guard that raises once ``allow`` documents have been migrated."""

    def __init__(self, allow):
        self.allow = allow
        self.entered = 0

    def __call__(self, name):
        if self.entered >= self.allow:
            raise RuntimeError("injected crash")
        self.entered += 1
        return _NullContext()


class _NullContext:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


def crash_image(root, tmp_path, tag):
    image = tmp_path / f"image-{tag}"
    shutil.copytree(root, image)
    return image


class TestDurableCrashResume:
    """Crash images at every document/stage boundary resume to completion."""

    @pytest.mark.parametrize("crash_after", range(0, 4))
    @pytest.mark.parametrize("reopen_as", ["source", "target"])
    def test_reencode_crash_sweep(self, crash_after, reopen_as, tmp_path):
        payloads = make_docs(count=4, size=2000)
        root = tmp_path / "live"
        service = StorageService.open(disk_config("rep-3", root))
        fill(service, payloads)

        guard = _CrashGuard(crash_after)
        with pytest.raises(RuntimeError, match="injected crash"):
            service.transition_to("ae-3-2-5", doc_guard=guard)
        assert service.transition is not None
        del service  # crash: no close(), no checkpoint

        image = crash_image(root, tmp_path, f"{crash_after}-{reopen_as}")
        scheme_id = "rep-3" if reopen_as == "source" else "ae-3-2-5"
        reopened = StorageService.open(disk_config(scheme_id, image))
        assert reopened.transition is None
        assert reopened.scheme.scheme_id == "ae-3-2-5"
        assert not (image / TRANSITION_NAME).exists()
        assert_byte_exact(reopened, payloads)
        reopened.close()

        # Resume is idempotent: a second reopen finds a settled service.
        again = StorageService.open(disk_config("ae-3-2-5", image))
        assert again.transition is None
        assert_byte_exact(again, payloads)
        again.close()

    def test_crash_before_any_migration_restarts_from_scratch(self, tmp_path):
        """Plan file saved, manifest untouched: the durable-intent window."""
        payloads = make_docs(count=3, size=2000)
        root = tmp_path / "live"
        service = StorageService.open(disk_config("rep-3", root))
        fill(service, payloads)
        service.close()

        source = schemes.get("rep-3", block_size=BLOCK_SIZE)
        target = schemes.get("ae-3-2-5", block_size=BLOCK_SIZE)
        plan = TransitionPlan(
            source=source.scheme_id,
            target=target.scheme_id,
            kind=classify(source, target),
            pending=set(payloads),
        )
        plan.save(str(root))

        reopened = StorageService.open(disk_config("rep-3", root))
        assert reopened.scheme.scheme_id == "ae-3-2-5"
        assert reopened.transition is None
        assert not (root / TRANSITION_NAME).exists()
        assert_byte_exact(reopened, payloads)
        reopened.close()

    def test_crash_after_cleanup_before_plan_removal(self, tmp_path, monkeypatch):
        """The last window: everything migrated, only transition.json left."""
        payloads = make_docs(count=3, size=2000)
        root = tmp_path / "live"
        service = StorageService.open(disk_config("rep-3", root))
        fill(service, payloads)

        def refuse_remove(data_dir):
            raise RuntimeError("injected crash before plan removal")

        monkeypatch.setattr(TransitionPlan, "remove", staticmethod(refuse_remove))
        with pytest.raises(RuntimeError, match="plan removal"):
            service.transition_to("ae-3-2-5")
        monkeypatch.undo()
        del service
        assert (root / TRANSITION_NAME).exists()

        reopened = StorageService.open(disk_config("ae-3-2-5", root))
        assert reopened.transition is None
        assert not (root / TRANSITION_NAME).exists()
        assert_byte_exact(reopened, payloads)
        reopened.close()

    @pytest.mark.parametrize("reopen_as", ["source", "target"])
    def test_alpha_raise_crash_before_walk_resumes(
        self, reopen_as, tmp_path, monkeypatch
    ):
        """Crash after the plan is durable but before any parity is written."""
        from repro.system.transitions import TransitionEngine

        payloads = make_docs(count=3, size=2000)
        root = tmp_path / "live"
        service = StorageService.open(disk_config("ae-2-2-5", root))
        fill(service, payloads)

        def refuse_walk(self, plan, report):
            raise RuntimeError("injected crash before the parity walk")

        monkeypatch.setattr(TransitionEngine, "_run_alpha_raise", refuse_walk)
        with pytest.raises(RuntimeError, match="parity walk"):
            service.transition_to("ae-3-2-5")
        monkeypatch.undo()
        del service

        scheme_id = "ae-2-2-5" if reopen_as == "source" else "ae-3-2-5"
        reopened = StorageService.open(disk_config(scheme_id, root))
        assert reopened.scheme.scheme_id == "ae-3-2-5"
        assert reopened.transition is None
        assert_byte_exact(reopened, payloads)
        history = reopened.epoch_history
        assert history is not None
        assert history.epochs[-1].params.alpha == 3
        reopened.close()

    def test_repuncture_crash_resumes(self, tmp_path, monkeypatch):
        """Crash between the plan save and the additions pass of a repuncture."""
        from repro.system.transitions import TransitionEngine

        payloads = make_docs(count=3, size=2000)
        root = tmp_path / "live"
        service = StorageService.open(disk_config("ae-3-2-5", root))
        fill(service, payloads)

        def refuse_repuncture(self, plan, report):
            raise RuntimeError("injected crash before repuncture")

        monkeypatch.setattr(TransitionEngine, "_run_repuncture", refuse_repuncture)
        with pytest.raises(RuntimeError, match="before repuncture"):
            service.transition_to("ae-3-2-5-p75")
        monkeypatch.undo()
        del service

        reopened = StorageService.open(disk_config("ae-3-2-5-p75", root))
        assert reopened.scheme.scheme_id == "ae-3-2-5-p75"
        assert reopened.transition is None
        assert_byte_exact(reopened, payloads)
        reopened.close()


class TestConcurrentFrontend:
    def test_reads_keep_streaming_through_a_transition_chain(self):
        payloads = make_docs(count=6, size=2500)
        frontend = ConcurrentStorageService.open(mem_config("rep-3"), workers=3)
        for name, payload in payloads.items():
            frontend.put(name, payload)

        errors = []
        mismatches = []
        stop = threading.Event()

        def reader():
            names = sorted(payloads)
            position = 0
            while not stop.is_set():
                name = names[position % len(names)]
                position += 1
                try:
                    if frontend.get(name) != payloads[name]:
                        mismatches.append(name)
                except (ReproError, ValueError, KeyError, OSError) as exc:
                    errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            for target in ("ae-3-2-5", "rs-10-4"):
                report = frontend.transition_to(target)
                assert report is not None and report.target == target
        finally:
            stop.set()
            for thread in threads:
                thread.join()

        assert errors == []
        assert mismatches == []
        for name, payload in payloads.items():
            assert frontend.get(name) == payload
        # The service keeps accepting writes after the chain.
        frontend.put("after", b"x" * 2048)
        assert frontend.get("after") == b"x" * 2048
        frontend.close()


class TestShardedTransitions:
    def test_federation_migrates_every_shard(self, tmp_path):
        from repro.system.sharding import ShardedStorageService

        payloads = make_docs(count=6, size=2000)
        root = tmp_path / "fed"
        config = disk_config("rep-3", root, shards=2)
        federation = ShardedStorageService.open(config)
        fill(federation, payloads)

        reports = federation.transition_to("ae-3-2-5")
        assert set(reports) == set(federation.shard_ids)
        migrated = sum(r.documents_migrated for r in reports.values() if r)
        assert migrated == len(payloads)
        assert_byte_exact(federation, payloads)
        federation.close()

        reopened = ShardedStorageService.open(disk_config("ae-3-2-5", root, shards=2))
        assert_byte_exact(reopened, payloads)
        reopened.close()

    def test_crash_between_shards_resumes_on_reopen(self, tmp_path, monkeypatch):
        from repro.system.sharding import ShardedStorageService

        payloads = make_docs(count=6, size=2000)
        root = tmp_path / "fed"
        federation = ShardedStorageService.open(disk_config("rep-3", root, shards=2))
        fill(federation, payloads)

        original = ConcurrentStorageService.transition_to
        calls = {"count": 0}

        def crash_on_second(self, scheme):
            calls["count"] += 1
            if calls["count"] >= 2:
                raise RuntimeError("injected crash between shards")
            return original(self, scheme)

        monkeypatch.setattr(ConcurrentStorageService, "transition_to", crash_on_second)
        with pytest.raises(RuntimeError, match="between shards"):
            federation.transition_to("ae-3-2-5")
        monkeypatch.undo()
        del federation  # crash: no close()

        reopened = ShardedStorageService.open(disk_config("rep-3", root, shards=2))
        assert_byte_exact(reopened, payloads)
        for shard_id in reopened.shard_ids:
            assert reopened.shard(shard_id).service.scheme.scheme_id == "ae-3-2-5"
        status_scheme = reopened.transition_to("ae-3-2-5")
        assert status_scheme == {}  # already settled on the target
        reopened.close()
