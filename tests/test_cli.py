"""Tests for the repro-experiments command line interface."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_default_arguments(self):
        args = build_parser().parse_args([])
        assert args.experiment == "all"
        assert args.blocks == 100_000
        assert not args.paper_scale

    def test_experiment_catalogue(self):
        assert {"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "table4", "table6"} <= set(
            EXPERIMENTS
        )


class TestMain:
    def test_list_option(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig11" in out
        assert "table6" in out

    def test_table4(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "RS(10,4)" in out
        assert "AE(3,2,5)" in out

    def test_fig10(self, capsys):
        assert main(["fig10"]) == 0
        out = capsys.readouterr().out
        assert "AE(3,10,10)" in out

    def test_fig6_7_family_method(self, capsys):
        assert main(["fig6-7", "--method", "family"]) == 0
        out = capsys.readouterr().out
        assert "AE(3,4,4)" in out
        assert "14" in out

    def test_small_fig11_run(self, capsys):
        assert main(["fig11", "--blocks", "5000"]) == 0
        out = capsys.readouterr().out
        assert "data loss (blocks)" in out
        assert "AE(3,2,5)" in out

    def test_table6_small_run(self, capsys):
        assert main(["table6", "--blocks", "5000"]) == 0
        out = capsys.readouterr().out
        assert "AE(2,2,5)" in out

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["does-not-exist"])


class TestIngest:
    def test_ingest_file_with_verify(self, tmp_path, capsys):
        source = tmp_path / "payload.bin"
        source.write_bytes(b"entangle me " * 1000)
        assert (
            main(
                [
                    "ingest",
                    str(source),
                    "--block-size",
                    "256",
                    "--batch-blocks",
                    "4",
                    "--locations",
                    "20",
                    "--verify",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "AE(3,2,5)" in out
        assert "throughput" in out
        assert "OK (byte-exact round trip)" in out

    def test_ingest_empty_file(self, tmp_path, capsys):
        source = tmp_path / "empty.bin"
        source.write_bytes(b"")
        assert main(["ingest", str(source), "--verify"]) == 0
        out = capsys.readouterr().out
        assert "0 bytes in 0 blocks" in out

    def test_ingest_custom_spec(self, tmp_path, capsys):
        source = tmp_path / "payload.bin"
        source.write_bytes(bytes(range(256)) * 8)
        assert main(["ingest", str(source), "--spec", "AE(2,2,5)", "--block-size", "128"]) == 0
        assert "AE(2,2,5)" in capsys.readouterr().out


class TestIngestScheme:
    def test_ingest_with_stripe_scheme(self, tmp_path, capsys):
        source = tmp_path / "payload.bin"
        source.write_bytes(b"stripe me " * 500)
        assert (
            main(
                [
                    "ingest",
                    str(source),
                    "--scheme",
                    "rs-10-4",
                    "--block-size",
                    "256",
                    "--locations",
                    "20",
                    "--verify",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "RS(10,4)" in out
        assert "scheme       : rs-10-4" in out
        assert "OK (byte-exact round trip)" in out

    def test_ingest_unknown_scheme_errors(self, tmp_path):
        source = tmp_path / "payload.bin"
        source.write_bytes(b"x" * 100)
        with pytest.raises(SystemExit):
            main(["ingest", str(source), "--scheme", "not-a-scheme"])


class TestRepairSubcommand:
    def test_repair_roundtrip(self, capsys):
        assert (
            main(
                [
                    "repair",
                    "--scheme",
                    "lrc-azure",
                    "--blocks",
                    "48",
                    "--block-size",
                    "256",
                    "--locations",
                    "30",
                    "--fail",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "LRC(12,2,2)" in out
        assert "OK (byte-exact round trip)" in out

    def test_repair_rejects_bad_fail_count(self):
        with pytest.raises(SystemExit):
            main(["repair", "--fail", "99", "--locations", "10"])


class TestCompareSubcommand:
    def test_compare_smoke_table(self, capsys):
        assert main(["compare", "--smoke"]) == 0
        out = capsys.readouterr().out
        # One row per default scheme, measured next to analytic.
        for scheme_id in ("ae-3-2-5", "rs-10-4", "lrc-azure", "lrc-xorbas", "rep-3", "xor-geo"):
            assert scheme_id in out
        assert "1-failure reads (analytic)" in out
        assert "1-failure reads (measured)" in out
        assert "measured single-failure reads match the analytic Table IV costs" in out

    def test_compare_custom_scheme_list(self, capsys):
        assert (
            main(
                [
                    "compare",
                    "--schemes",
                    "ae-2-2-5,rep-2",
                    "--blocks",
                    "30",
                    "--block-size",
                    "256",
                    "--locations",
                    "20",
                    "--fail",
                    "1",
                    "--victims",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "ae-2-2-5" in out
        assert "2-way replication" in out

    def test_compare_rejects_empty_scheme_list(self):
        with pytest.raises(SystemExit):
            main(["compare", "--schemes", ","])

    def test_list_includes_subcommands(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "compare" in out
        assert "repair" in out
        assert "ingest" in out


class TestIngestSpecErrors:
    def test_malformed_spec_exits_2(self, tmp_path):
        source = tmp_path / "payload.bin"
        source.write_bytes(b"x" * 100)
        with pytest.raises(SystemExit) as excinfo:
            main(["ingest", str(source), "--spec", "AE(9,9)"])
        assert excinfo.value.code == 2

    def test_invalid_spec_parameters_exit_2(self, tmp_path):
        source = tmp_path / "payload.bin"
        source.write_bytes(b"x" * 100)
        with pytest.raises(SystemExit) as excinfo:
            main(["ingest", str(source), "--spec", "AE(2,5,2)"])  # p < s invalid
        assert excinfo.value.code == 2


class TestSimulateSubcommand:
    def test_simulate_smoke_table(self, capsys):
        assert main(["simulate", "--smoke"]) == 0
        out = capsys.readouterr().out
        # One row per scheme per disaster fraction, engine metrics columns.
        for name in ("AE(3,2,5)", "RS(10,4)", "3-way replication",
                     "LRC(12,2,2)", "LRC(10,2,4)", "FlatXOR(2,1)"):
            assert name in out
        assert "data loss (blocks)" in out
        assert "repair rounds" in out

    def test_simulate_custom_schemes_and_fractions(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--schemes",
                    "ae-2-2-5,xor-geo",
                    "--disaster",
                    "0.3",
                    "--blocks",
                    "1000",
                    "--locations",
                    "30",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        for name in ("AE(2,2,5)", "FlatXOR(2,1)"):
            row = next(line for line in out.splitlines() if line.startswith(name))
            assert row.split()[1] == "30"  # the disaster (%) column

    def test_simulate_minimal_policy(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--schemes",
                    "rs-10-4",
                    "--disaster",
                    "0.3",
                    "--blocks",
                    "1000",
                    "--policy",
                    "minimal",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "policy       : minimal" in out

    def test_simulate_churn_replay(self, tmp_path, capsys):
        from repro.storage.failures import ChurnTrace

        trace_path = tmp_path / "trace.json"
        ChurnTrace.poisson(30, 6, 0.2, 0.5, seed=4).save(str(trace_path))
        assert (
            main(
                [
                    "simulate",
                    "--schemes",
                    "rs-10-4,rep-3",
                    "--disaster",
                    "0.1",
                    "--blocks",
                    "1000",
                    "--locations",
                    "30",
                    "--churn",
                    str(trace_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "churn replay" in out
        assert "mean availability" in out

    def test_simulate_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["simulate", "--schemes", "not-a-scheme", "--blocks", "100"])
        assert excinfo.value.code == 2

    def test_simulate_rejects_bad_fraction(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--schemes", "rs-10-4", "--disaster", "1.5", "--blocks", "100"])

    def test_simulate_listed(self, capsys):
        assert main(["--list"]) == 0
        assert "simulate" in capsys.readouterr().out


class TestIngestWorkers:
    def test_parallel_ingest_with_verify(self, tmp_path, capsys):
        source = tmp_path / "input.bin"
        source.write_bytes(bytes(range(256)) * 400)
        assert (
            main(
                [
                    "ingest",
                    str(source),
                    "--workers",
                    "3",
                    "--block-size",
                    "512",
                    "--chunk-size",
                    "16384",
                    "--verify",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "workers      : 3" in out
        assert "part documents" in out
        assert "verify       : OK (byte-exact round trip)" in out

    def test_workers_must_be_positive(self, tmp_path):
        source = tmp_path / "input.bin"
        source.write_bytes(b"x")
        with pytest.raises(SystemExit) as excinfo:
            main(["ingest", str(source), "--workers", "0"])
        assert excinfo.value.code == 2


class TestLoadSubcommand:
    def test_bounded_ops_run(self, capsys):
        assert (
            main(
                [
                    "load",
                    "--clients",
                    "2",
                    "--ops",
                    "10",
                    "--payload-bytes",
                    "256",
                    "--documents",
                    "8",
                    "--block-size",
                    "256",
                    "--locations",
                    "12",
                    "--seed",
                    "5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "front-end    :" in out
        assert "ops/s" in out
        assert "p50" in out and "p99" in out
        assert "operations   : 20" in out

    def test_persistent_backend_run(self, tmp_path, capsys):
        assert (
            main(
                [
                    "load",
                    "--clients",
                    "2",
                    "--ops",
                    "5",
                    "--payload-bytes",
                    "128",
                    "--documents",
                    "4",
                    "--block-size",
                    "128",
                    "--locations",
                    "10",
                    "--backend",
                    "disk",
                    "--data-dir",
                    str(tmp_path / "store"),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "persisted    :" in out

    def test_ops_and_duration_conflict(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["load", "--ops", "5", "--duration", "1"])
        assert excinfo.value.code == 2

    def test_load_listed(self, capsys):
        assert main(["--list"]) == 0
        assert "load" in capsys.readouterr().out.split()
