"""Equivalence and accounting tests for the batched repair pipeline.

The batched cluster repair path (``ClusterRepairManager.repair``, the
default) plans each round, bulk-fetches the surviving inputs and rebuilds
every target in one matrix XOR pass.  These tests pin the contract that makes
the speedup safe to ship:

* batched and per-block repair recover bit-identical payloads onto identical
  locations, across code settings, seeds and failure patterns (including a
  whole ``site:0`` disaster under ``spread-domains`` placement);
* the read accounting matches the analytic costs of
  :mod:`repro.analysis.repair_cost`, and a surviving block feeding several
  dependent repairs is fetched and counted once per run;
* segment-log bulk reads stay zero-copy (mmap-backed views), and a torn log
  tail still round-trips documents through the degraded read path after
  reopen.
"""

from __future__ import annotations

import glob
import mmap
import os

import numpy as np
import pytest

from repro.analysis.repair_cost import repair_model_for
from repro.core.blocks import DataId
from repro.core.encoder import Entangler
from repro.core.parameters import AEParameters
from repro.core.xor import payloads_equal
from repro.storage.backends import SegmentLogBackend
from repro.storage.block_store import BlockStore
from repro.storage.cluster import StorageCluster
from repro.storage.failures import disaster_for_target
from repro.storage.placement import RandomPlacement
from repro.storage.repair import ClusterRepairManager
from repro.system.service import StorageConfig, StorageService

from tests.conftest import make_payload
from tests.test_schemes import REQUIRED_IDS

BLOCK_SIZE = 64


def entangled_cluster(params: AEParameters, blocks: int, locations: int, seed: int):
    """Encode ``blocks`` payloads onto a fresh cluster; returns (encoder, cluster, originals)."""
    encoder = Entangler(params, block_size=BLOCK_SIZE)
    cluster = StorageCluster(locations, RandomPlacement(locations, seed=seed))
    originals = {}
    for index in range(1, blocks + 1):
        encoded = encoder.entangle(make_payload(index, BLOCK_SIZE))
        for block in encoded.all_blocks():
            originals[block.block_id] = block.payload
            cluster.put_block(block)
    return encoder, cluster, originals


def repaired_ids(report):
    return {block_id for round_ in report.rounds for block_id in round_.repaired}


class TestBatchedSequentialEquivalence:
    """``repair(batched=True)`` must be indistinguishable from the per-block loop."""

    @pytest.mark.parametrize("spec", ["AE(1,-,-)", "AE(2,2,5)", "AE(3,2,5)"])
    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_identical_payloads_and_locations(self, spec, seed):
        params = AEParameters.parse(spec)
        runs = {}
        for batched in (False, True):
            encoder, cluster, originals = entangled_cluster(params, 80, 24, seed=seed)
            cluster.fail_locations(range(4))
            manager = ClusterRepairManager(encoder.lattice, cluster, BLOCK_SIZE)
            missing = manager.missing_blocks()
            report = manager.repair(batched=batched)
            runs[batched] = (cluster, missing, report, originals)
        seq_cluster, missing, seq_report, originals = runs[False]
        bat_cluster, bat_missing, bat_report, _ = runs[True]

        # Same placement seed, same disaster: both paths saw the same work
        # list and must agree on what was recoverable.
        assert bat_missing == missing
        assert repaired_ids(bat_report) == repaired_ids(seq_report)
        assert bat_report.unrecovered == seq_report.unrecovered

        for block_id in repaired_ids(bat_report):
            assert payloads_equal(bat_cluster.get_block(block_id), originals[block_id])
            assert payloads_equal(seq_cluster.get_block(block_id), originals[block_id])
            # Relocation targets are a pure function of the block and the
            # healthy candidate set, so the paths land on the same location.
            assert bat_cluster.location_of(block_id) == seq_cluster.location_of(block_id)

        # Deduplicated bulk fetches can only reduce the read bill.
        assert bat_report.blocks_read <= seq_report.blocks_read

    def test_agreement_on_unrecoverable_blocks(self):
        """A disaster beyond the code's strength: both paths report the same loss."""
        params = AEParameters.single()
        runs = {}
        for batched in (False, True):
            encoder, cluster, _ = entangled_cluster(params, 60, 10, seed=13)
            cluster.fail_locations(range(6))
            manager = ClusterRepairManager(encoder.lattice, cluster, BLOCK_SIZE)
            runs[batched] = manager.repair(batched=batched)
        assert runs[True].unrecovered == runs[False].unrecovered
        assert repaired_ids(runs[True]) == repaired_ids(runs[False])
        assert runs[True].data_loss == runs[False].data_loss


class TestServiceRepairAcrossSchemes:
    """The batched fetch/relocate path behind ``StorageService.repair``."""

    @staticmethod
    def document(block_size: int, blocks: int = 24) -> bytes:
        return bytes((7 * i + 3) % 251 for i in range(block_size * blocks))

    @pytest.mark.parametrize("scheme_id", REQUIRED_IDS)
    @pytest.mark.parametrize("seed", [3, 11])
    def test_single_location_disaster_round_trip(self, scheme_id, seed):
        service = StorageService.open(
            StorageConfig(
                scheme=scheme_id,
                location_count=20,
                block_size=256,
                # Never co-locate a stripe's blocks: one lost location then
                # costs every stripe at most one position, which every
                # registered code tolerates.
                placement="spread-domains",
                seed=seed,
            )
        )
        payload = self.document(256)
        service.put("doc", payload)
        service.fail_locations([0])
        report = service.repair()
        assert report.data_loss == 0
        assert service.status().unavailable_blocks == 0
        assert service.get("doc") == payload

    #: One setting per family that provably survives the loss of one of
    #: seven sites when every stripe (or AE neighbourhood) is spread across
    #: domains: each site holds at most ceil(width / 7) blocks per stripe,
    #: within every code's parity budget.
    SITE_LOSS_SCHEMES = ["ae-2-2-5", "ae-3-2-5", "rs-10-4", "rs-8-2", "lrc-azure", "rep-3", "xor-raid5-5"]

    @pytest.mark.parametrize("scheme_id", SITE_LOSS_SCHEMES)
    def test_site_zero_loss_under_spread_domains(self, scheme_id):
        service = StorageService.open(
            StorageConfig(
                scheme=scheme_id,
                block_size=256,
                topology="sites=7,racks=2,nodes=2",
                placement="spread-domains",
                seed=5,
            )
        )
        payload = self.document(256)
        service.put("doc", payload)
        disaster = disaster_for_target(service.topology, "site:0")
        service.fail_locations(disaster.failed_locations)
        report = service.repair()
        assert report.data_loss == 0, f"{scheme_id}: site loss must not lose data"
        assert service.status().unavailable_blocks == 0
        assert service.get("doc") == payload

    @pytest.mark.parametrize("scheme_id", ["ae-3-2-5", "rs-10-4"])
    def test_degraded_read_without_repair(self, scheme_id):
        service = StorageService.open(
            StorageConfig(scheme=scheme_id, location_count=20, block_size=256, seed=9)
        )
        payload = self.document(256)
        service.put("doc", payload)
        service.fail_locations([0, 1])
        # No repair: the read path reconstructs the missing blocks in flight.
        assert service.get("doc") == payload
        assert b"".join(service.get_stream("doc")) == payload


class TestReadAccounting:
    """Measured reads versus the analytic model of ``analysis.repair_cost``."""

    @staticmethod
    def isolated_block_cluster(params: AEParameters, victim, blocks=60, locations=12):
        """A cluster where ``victim`` is the only block at location 0."""
        encoder = Entangler(params, block_size=BLOCK_SIZE)
        cluster = StorageCluster(locations, RandomPlacement(locations, seed=2))
        spot = 1
        for index in range(1, blocks + 1):
            encoded = encoder.entangle(make_payload(index, BLOCK_SIZE))
            for block in encoded.all_blocks():
                if block.block_id == victim:
                    cluster.put_block(block, location_id=0)
                else:
                    cluster.put_block(block, location_id=1 + spot % (locations - 1))
                    spot += 1
        return encoder, cluster

    def test_single_failure_reads_match_analytic_cost(self):
        params = AEParameters.triple(2, 5)
        victim = DataId(30)
        encoder, cluster = self.isolated_block_cluster(params, victim)
        cluster.fail_locations([0])
        manager = ClusterRepairManager(encoder.lattice, cluster, BLOCK_SIZE)
        assert manager.missing_blocks() == {victim}

        before = sum(store.read_count for store in cluster.locations())
        report = manager.repair()
        after = sum(store.read_count for store in cluster.locations())

        analytic = repair_model_for("ae-3-2-5").single_failure_cost(BLOCK_SIZE).blocks_read
        assert analytic == 2
        assert report.blocks_read == analytic
        # The report's read bill is exactly what the stores served.
        assert after - before == report.blocks_read

    def test_shared_input_is_fetched_once(self):
        """AE(1): d2 and d3 both consume p(2,3); batched repair reads it once.

        Per-block repair pays ``2 + 2`` reads (each target re-fetches its own
        inputs); the batched round gathers the union ``{p(1,2), p(2,3),
        p(3,4)}`` in one bulk read.
        """
        params = AEParameters.single()
        encoder = Entangler(params, block_size=BLOCK_SIZE)
        cluster = StorageCluster(12, RandomPlacement(12, seed=2))
        spot = 1
        victims = {DataId(2), DataId(3)}
        for index in range(1, 41):
            encoded = encoder.entangle(make_payload(index, BLOCK_SIZE))
            for block in encoded.all_blocks():
                if block.block_id in victims:
                    cluster.put_block(block, location_id=0)
                else:
                    cluster.put_block(block, location_id=1 + spot % 11)
                    spot += 1
        cluster.fail_locations([0])

        sequential_cluster = StorageCluster(12, RandomPlacement(12, seed=2))
        # Re-run the same layout for the per-block reference.
        encoder_seq = Entangler(params, block_size=BLOCK_SIZE)
        spot = 1
        for index in range(1, 41):
            encoded = encoder_seq.entangle(make_payload(index, BLOCK_SIZE))
            for block in encoded.all_blocks():
                if block.block_id in victims:
                    sequential_cluster.put_block(block, location_id=0)
                else:
                    sequential_cluster.put_block(block, location_id=1 + spot % 11)
                    spot += 1
        sequential_cluster.fail_locations([0])

        batched_report = ClusterRepairManager(
            encoder.lattice, cluster, BLOCK_SIZE
        ).repair(batched=True)
        sequential_report = ClusterRepairManager(
            encoder_seq.lattice, sequential_cluster, BLOCK_SIZE
        ).repair(batched=False)

        assert repaired_ids(batched_report) == victims
        assert repaired_ids(sequential_report) == victims
        per_block = repair_model_for("ae-1").single_failure_cost(BLOCK_SIZE).blocks_read
        assert sequential_report.blocks_read == per_block * len(victims)
        # The shared parity p(2,3) is counted once, so one read is saved.
        assert batched_report.blocks_read == per_block * len(victims) - 1
        for block_id in victims:
            assert payloads_equal(
                cluster.get_block(block_id), sequential_cluster.get_block(block_id)
            )


class TestSegmentLogZeroCopy:
    """Bulk segment-log reads hand out mmap-backed views, not copies."""

    def test_get_many_returns_mmap_backed_views(self, tmp_path):
        store = BlockStore(0, backend=SegmentLogBackend(str(tmp_path)), cache_blocks=0)
        blocks = {DataId(i): make_payload(i, 256) for i in range(1, 9)}
        store.put_many(blocks.items())

        def backing_map(payload: np.ndarray) -> mmap.mmap:
            base = payload.base
            if isinstance(base, memoryview):
                base = base.obj
            assert isinstance(base, mmap.mmap)
            return base

        payloads = store.get_many(list(blocks))
        for block_id, payload in zip(blocks, payloads):
            assert isinstance(payload, np.ndarray)
            assert not payload.flags.owndata
            assert not payload.flags.writeable
            backing_map(payload)
            assert payload.tobytes() == blocks[block_id]
        # All eight records landed in the same segment: one shared map.
        assert len({id(backing_map(payload)) for payload in payloads}) == 1

        # The batched-repair entry point rides the same zero-copy path.
        maybe = store.try_get_many([DataId(1), DataId(99)])
        assert backing_map(maybe[0]) is backing_map(payloads[0])
        assert maybe[1] is None
        store.close()

    def test_torn_tail_reopen_round_trips_via_batched_repair(self, tmp_path):
        config = StorageConfig(
            scheme="ae-3-2-5",
            location_count=12,
            block_size=512,
            backend="segment",
            data_dir=str(tmp_path),
            seed=7,
        )
        payload = bytes((5 * i + 1) % 251 for i in range(512 * 30))
        service = StorageService.open(config)
        service.put("doc", payload)
        blocks_before = sum(len(store) for store in service.cluster.locations())
        service.close()

        # Simulate a crash mid-append: tear the tail record of one location's
        # newest segment.  Recovery must drop exactly that record.
        logs = sorted(glob.glob(os.path.join(str(tmp_path), "loc-*", "segments", "*.log")))
        victim_log = max(logs, key=os.path.getsize)
        with open(victim_log, "r+b") as handle:
            handle.truncate(os.path.getsize(victim_log) - 3)

        reopened = StorageService.open(config)
        blocks_after = sum(len(store) for store in reopened.cluster.locations())
        assert blocks_after == blocks_before - 1
        # The torn block is rebuilt in flight by the batched degraded-read
        # path; the document stays byte-exact.
        assert reopened.get("doc") == payload
        assert b"".join(reopened.get_stream("doc")) == payload
        # The service keeps accepting writes after recovery.
        reopened.put("more", payload[:1024])
        assert reopened.get("more") == payload[:1024]
        reopened.close()


def test_required_ids_cover_every_family():
    """The equivalence matrix spans all registered scheme families."""
    families = {scheme_id.split("-", 1)[0] for scheme_id in REQUIRED_IDS}
    assert {"ae", "rs", "lrc", "rep", "xor"} <= families
