"""Tests for the Markov-chain reliability models (repro.analysis.markov)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.markov import (
    HOURS_PER_YEAR,
    MarkovModel,
    array_loss_probability,
    five_year_loss_table,
    kofn_chain,
    loss_probability,
    mirrored_pair_chain,
    mttdl,
    raid5_chain,
    raid6_chain,
    single_entanglement_chain,
)
from repro.analysis.reliability import DriveModel, simulate_layout
from repro.exceptions import InvalidParametersError

MTTF = 50_000.0
MTTR = 168.0


class TestModelConstruction:
    def test_mirrored_pair_shape(self):
        model = mirrored_pair_chain(MTTF, MTTR)
        assert model.states == 3
        assert model.transient_states == 2
        q = np.asarray(model.generator)
        assert np.allclose(q.sum(axis=1), 0.0)
        assert np.allclose(q[-1], 0.0)

    def test_raid5_requires_three_disks(self):
        with pytest.raises(InvalidParametersError):
            raid5_chain(2, MTTF, MTTR)

    def test_raid6_requires_four_disks(self):
        with pytest.raises(InvalidParametersError):
            raid6_chain(3, MTTF, MTTR)

    def test_invalid_times_rejected(self):
        with pytest.raises(InvalidParametersError):
            mirrored_pair_chain(0.0, MTTR)
        with pytest.raises(InvalidParametersError):
            kofn_chain(4, 2, MTTF, -1.0)

    def test_kofn_state_count(self):
        model = kofn_chain(10, 4, MTTF, MTTR)
        # states: 0..4 failed + data loss
        assert model.states == 6

    def test_generator_validation(self):
        bad = np.array([[0.0, 0.0], [1.0, -1.0]])
        with pytest.raises(InvalidParametersError):
            MarkovModel(name="bad", generator=bad, state_labels=("a", "b"))

    def test_entanglement_chain_needs_two_pairs(self):
        with pytest.raises(InvalidParametersError):
            single_entanglement_chain(1, MTTF, MTTR)


class TestQuantities:
    def test_mirrored_pair_mttdl_matches_closed_form(self):
        """Classic result: MTTDL of RAID1 ~ (2*lambda^2/mu)^-1 + lower order."""
        model = mirrored_pair_chain(MTTF, MTTR)
        lam = 1.0 / MTTF
        mu = 1.0 / MTTR
        expected = (3.0 * lam + mu) / (2.0 * lam * lam)
        assert mttdl(model) == pytest.approx(expected, rel=1e-9)

    def test_raid5_mttdl_matches_closed_form(self):
        disks = 8
        model = raid5_chain(disks, MTTF, MTTR)
        lam = 1.0 / MTTF
        mu = 1.0 / MTTR
        expected = ((2 * disks - 1) * lam + mu) / (disks * (disks - 1) * lam * lam)
        assert mttdl(model) == pytest.approx(expected, rel=1e-9)

    def test_raid6_outlives_raid5(self):
        raid5 = raid5_chain(8, MTTF, MTTR)
        raid6 = raid6_chain(8, MTTF, MTTR)
        assert mttdl(raid6) > 10 * mttdl(raid5)

    def test_more_parity_means_longer_mttdl(self):
        previous = 0.0
        for m in (1, 2, 3, 4):
            current = mttdl(kofn_chain(10, m, MTTF, MTTR))
            assert current > previous
            previous = current

    def test_loss_probability_bounds_and_monotonicity(self):
        model = mirrored_pair_chain(MTTF, MTTR)
        p1 = loss_probability(model, HOURS_PER_YEAR)
        p5 = loss_probability(model, 5 * HOURS_PER_YEAR)
        assert 0.0 <= p1 <= p5 <= 1.0
        assert loss_probability(model, 0.0) == 0.0

    def test_loss_probability_rejects_negative_horizon(self):
        with pytest.raises(InvalidParametersError):
            loss_probability(mirrored_pair_chain(MTTF, MTTR), -1.0)

    def test_loss_probability_approaches_one(self):
        model = mirrored_pair_chain(1000.0, 10_000.0)  # terrible drives, slow repair
        assert loss_probability(model, 1e7) > 0.99

    def test_array_scaling(self):
        model = mirrored_pair_chain(MTTF, MTTR)
        one = loss_probability(model, 5 * HOURS_PER_YEAR)
        ten = array_loss_probability(model, 5 * HOURS_PER_YEAR, 10)
        assert ten == pytest.approx(1.0 - (1.0 - one) ** 10)
        with pytest.raises(InvalidParametersError):
            array_loss_probability(model, 1.0, 0)

    def test_exponential_approximation_of_mttdl(self):
        """Past the chain's relaxation time, P(loss by t) ~ t / MTTDL."""
        model = mirrored_pair_chain(MTTF, MTTR)
        horizon = 20_000.0  # many repair windows, still far below the MTTDL
        assert loss_probability(model, horizon) == pytest.approx(
            horizon / mttdl(model), rel=0.05
        )

    @given(st.floats(min_value=10_000, max_value=2_000_000), st.floats(min_value=1, max_value=720))
    @settings(max_examples=25, deadline=None)
    def test_mttdl_always_positive_and_exceeds_mttf(self, mttf, mttr):
        model = mirrored_pair_chain(mttf, mttr)
        value = mttdl(model)
        assert value > mttf


class TestEntangledMirrorComparison:
    def test_entangled_chain_beats_mirroring(self):
        """Section IV-B1 shape: the entangled mirror cuts the 5-year loss
        probability by roughly an order of magnitude versus mirroring."""
        rows = five_year_loss_table(mttf_hours=MTTF, mttr_hours=MTTR, drive_pairs=10)
        by_layout = {row["layout"]: row for row in rows}
        mirror_loss = by_layout["mirroring"]["5-year loss probability"]
        entangled_loss = by_layout["entangled mirror (open chain)"]["5-year loss probability"]
        assert entangled_loss < mirror_loss
        reduction = 1.0 - entangled_loss / mirror_loss
        assert reduction > 0.5  # paper quotes ~90% for open chains

    def test_analytic_agrees_with_monte_carlo_ordering(self):
        """The Markov model and the Monte-Carlo simulator must agree on which
        layout is more reliable (absolute numbers differ by model detail)."""
        drive = DriveModel(mttf_hours=20_000.0, repair_hours=500.0)
        mirror_mc = simulate_layout("mirroring", 8, 5.0, drive, trials=400, seed=3)
        entangled_mc = simulate_layout("entangled-open", 8, 5.0, drive, trials=400, seed=3)
        assert entangled_mc.loss_probability <= mirror_mc.loss_probability
        rows = five_year_loss_table(20_000.0, 500.0, 8)
        assert (
            rows[1]["5-year loss probability"] < rows[0]["5-year loss probability"]
        )

    def test_table_contains_mttdl_in_years(self):
        rows = five_year_loss_table()
        for row in rows:
            assert row["MTTDL (years)"] > 0.0
