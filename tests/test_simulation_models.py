"""Tests for the vectorised simulation models (AE lattice, RS stripes, replication)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.parameters import AEParameters
from repro.core.rules import input_index, output_index
from repro.exceptions import InvalidParametersError
from repro.simulation.lattice_model import (
    AELatticeModel,
    vectorised_input_indices,
    vectorised_output_indices,
)
from repro.simulation.replication_model import ReplicationModel
from repro.simulation.rs_model import RSStripeModel


class TestVectorisedRules:
    @given(st.sampled_from([(1, 1, 0), (2, 2, 5), (3, 2, 5), (3, 5, 5), (3, 1, 4), (3, 3, 4)]))
    @settings(max_examples=12, deadline=None)
    def test_vectorised_rules_match_scalar_rules(self, spec):
        params = AEParameters(*spec)
        n = 200
        inputs = vectorised_input_indices(params, n)
        outputs = vectorised_output_indices(params, n)
        for index in range(1, n + 1):
            for position, strand_class in enumerate(params.strand_classes):
                assert inputs[index - 1, position] == max(
                    input_index(index, strand_class, params), 0
                )
                assert outputs[index - 1, position] == output_index(
                    index, strand_class, params
                )


class TestAELatticeModel:
    def test_shapes_and_counts(self):
        model = AELatticeModel(AEParameters.triple(2, 5), 1000, location_count=50, seed=1)
        assert model.data_blocks == 1000
        assert model.parity_blocks == 3000
        assert model.total_blocks == 4000
        assert model.blocks_per_location().sum() == 4000

    def test_no_disaster_means_no_loss(self):
        model = AELatticeModel(AEParameters.triple(2, 5), 2000, seed=2)
        outcome = model.run_repair(np.array([], dtype=np.int64))
        assert outcome.data_loss == 0
        assert outcome.rounds == 0
        assert outcome.vulnerable_data == 0

    def test_total_location_failure_loses_everything(self):
        model = AELatticeModel(AEParameters.triple(2, 5), 2000, location_count=20, seed=3)
        outcome = model.run_repair(np.arange(20))
        assert outcome.data_loss == 2000

    def test_small_disasters_are_fully_repaired(self):
        model = AELatticeModel(AEParameters.triple(2, 5), 20_000, location_count=100, seed=4)
        outcome = model.run_repair(np.arange(10))  # 10% disaster
        assert outcome.data_loss == 0
        assert outcome.repaired_data == outcome.initially_missing_data
        assert outcome.rounds >= 1

    def test_minimal_maintenance_repairs_no_parities(self):
        model = AELatticeModel(AEParameters.triple(2, 5), 20_000, location_count=100, seed=5)
        outcome = model.run_repair(np.arange(20), repair_parities=False)
        assert outcome.repaired_parities == 0
        assert outcome.vulnerable_data > 0

    def test_higher_alpha_loses_less_data(self):
        disaster = np.arange(40)  # 40% of 100 locations
        losses = {}
        for params in [AEParameters.single(), AEParameters.double(2, 5), AEParameters.triple(2, 5)]:
            model = AELatticeModel(params, 30_000, location_count=100, seed=6)
            losses[params.alpha] = model.run_repair(disaster).data_loss
        assert losses[3] <= losses[2] <= losses[1]
        assert losses[1] > 0

    def test_invalid_construction(self):
        with pytest.raises(InvalidParametersError):
            AELatticeModel(AEParameters.single(), 0)
        with pytest.raises(InvalidParametersError):
            AELatticeModel(AEParameters.single(), 10, location_count=0)


class TestRSStripeModel:
    def test_stripe_counts_match_paper_examples(self):
        """RS(10,4) on 1M blocks -> 400k encoded; RS(8,2) -> 250k; RS(5,5) -> 200k stripes."""
        assert RSStripeModel(10, 4, 1_000_000, seed=1).encoded_blocks == 400_000
        assert RSStripeModel(8, 2, 1_000_000, seed=1).encoded_blocks == 250_000
        assert RSStripeModel(8, 2, 1_000_000, seed=1).stripes == 125_000
        assert RSStripeModel(5, 5, 1_000_000, seed=1).stripes == 200_000

    def test_no_disaster_no_loss(self):
        model = RSStripeModel(10, 4, 10_000, seed=2)
        outcome = model.run_repair(np.array([], dtype=np.int64))
        assert outcome.data_loss == 0
        assert outcome.vulnerable_data == 0

    def test_total_failure_loses_everything(self):
        model = RSStripeModel(10, 4, 10_000, location_count=20, seed=3)
        outcome = model.run_repair(np.arange(20))
        assert outcome.data_loss == 10_000

    def test_more_parities_lose_less(self):
        disaster = np.arange(30)
        weak = RSStripeModel(8, 2, 50_000, seed=4).run_repair(disaster)
        strong = RSStripeModel(4, 12, 50_000, seed=4).run_repair(disaster)
        assert strong.data_loss < weak.data_loss

    def test_single_failure_fraction_decreases_with_disaster_size(self):
        """Fig. 13: RS repair efficiency improves (fewer single failures) for
        larger disasters."""
        model = RSStripeModel(4, 12, 50_000, seed=5)
        small = model.run_repair(np.arange(10)).single_failure_fraction
        large = model.run_repair(np.arange(40)).single_failure_fraction
        assert small > large

    def test_placement_skew_observation(self):
        """Only a fraction of RS(10,4) stripes spread their 14 blocks over 14
        distinct locations when n = 100 (Sec. V-C reports 38,429 of 100,000)."""
        model = RSStripeModel(10, 4, 100_000, location_count=100, seed=6)
        spread = model.stripes_fully_spread()
        assert 0.30 * model.stripes < spread < 0.48 * model.stripes

    def test_repair_bandwidth_is_k_per_stripe(self):
        model = RSStripeModel(5, 5, 5_000, seed=7)
        outcome = model.run_repair(np.arange(10))
        assert outcome.blocks_read_for_repair % 5 == 0


class TestReplicationModel:
    def test_loss_requires_all_copies_down(self):
        model = ReplicationModel(3, 20_000, location_count=100, seed=8)
        outcome = model.run_repair(np.arange(10))
        expected_rate = 0.1**3
        assert outcome.data_loss <= 3 * expected_rate * 20_000 + 20

    def test_more_copies_lose_less(self):
        disaster = np.arange(40)
        two = ReplicationModel(2, 50_000, seed=9).run_repair(disaster)
        four = ReplicationModel(4, 50_000, seed=9).run_repair(disaster)
        assert four.data_loss < two.data_loss
        assert four.vulnerable_data < two.vulnerable_data

    def test_single_failure_fraction_is_one(self):
        model = ReplicationModel(2, 5_000, seed=10)
        assert model.run_repair(np.arange(20)).single_failure_fraction == 1.0

    def test_invalid_construction(self):
        with pytest.raises(InvalidParametersError):
            ReplicationModel(1, 100)
