"""Import-surface test: `repro.core.__all__` is complete and importable.

Mirrors the schemes/simulation/storage surface tests and anchors the code
extensions of the dynamic-redundancy subsystem: the dynamic-upgrade and
puncturing helpers the transition engine builds on must stay exported.
"""

from __future__ import annotations

import inspect

import repro.core


class TestCoreImportSurface:
    def test_all_entries_resolve(self):
        for name in repro.core.__all__:
            assert getattr(repro.core, name) is not None

    def test_all_is_sorted_and_unique(self):
        exported = list(repro.core.__all__)
        assert exported == sorted(exported)
        assert len(exported) == len(set(exported))

    def test_star_import_matches_all(self):
        namespace: dict = {}
        exec("from repro.core import *", namespace)
        missing = set(repro.core.__all__) - set(namespace)
        assert not missing, f"__all__ entries not importable via *: {sorted(missing)}"

    def test_public_submodule_definitions_are_exported(self):
        import repro.core.dynamic
        import repro.core.puncturing

        exported = set(repro.core.__all__)
        for module in (repro.core.dynamic, repro.core.puncturing):
            for name, value in vars(module).items():
                if name.startswith("_"):
                    continue
                if not (inspect.isclass(value) or inspect.isfunction(value)):
                    continue
                if getattr(value, "__module__", None) != module.__name__:
                    continue
                assert name in exported, (
                    f"{module.__name__}.{name} missing from repro.core.__all__"
                )

    def test_transition_building_blocks_are_exported(self):
        """The symbols the transition engine composes stay on the surface."""
        for required in (
            "AlphaUpgrader",
            "DataFetcher",
            "EpochHistory",
            "ParameterEpoch",
            "PuncturedCode",
            "PuncturingPolicy",
            "UpgradePlan",
            "parity_survivors",
            "plan_alpha_upgrade",
            "puncture_rate",
        ):
            assert required in repro.core.__all__
