"""Import-surface test: `repro.schemes.__all__` and the family registry.

Mirrors the storage/simulation surface tests, and doubles as the
repro-lint RPR002 coverage anchor for the scheme-family registry: every
family id registered in :mod:`repro.schemes` must appear literally below,
so dropping or renaming a family breaks this test instead of silently
shrinking the public catalogue.
"""

from __future__ import annotations

import pytest

import repro.schemes as schemes

#: Registered family -> the example id the registry advertises for it.
FAMILY_CATALOGUE = {
    "ae": "ae-3-2-5",
    "rs": "rs-10-4",
    "lrc": "lrc-azure",
    "rep": "rep-3",
    "xor": "xor-geo",
}


class TestSchemesImportSurface:
    def test_all_entries_resolve(self):
        for name in schemes.__all__:
            assert getattr(schemes, name) is not None

    def test_all_is_sorted_and_unique(self):
        exported = list(schemes.__all__)
        assert exported == sorted(exported)
        assert len(exported) == len(set(exported))

    def test_star_import_matches_all(self):
        namespace: dict = {}
        exec("from repro.schemes import *", namespace)
        missing = set(schemes.__all__) - set(namespace)
        assert not missing, f"__all__ entries not importable via *: {sorted(missing)}"


class TestSchemeFamilyRegistry:
    def test_registry_covers_the_catalogue(self):
        assert set(schemes.available()) >= set(FAMILY_CATALOGUE)

    def test_advertised_examples_match(self):
        available = schemes.available()
        for family, example in FAMILY_CATALOGUE.items():
            assert available[family] == example

    @pytest.mark.parametrize("family,example", sorted(FAMILY_CATALOGUE.items()))
    def test_every_example_id_resolves(self, family, example):
        scheme = schemes.get(example)
        assert scheme.scheme_id == example

    def test_default_scheme_resolves(self):
        assert schemes.DEFAULT_SCHEME in ("ae-3-2-5",)
        assert schemes.get(schemes.DEFAULT_SCHEME) is not None


class TestPuncturedSchemeIds:
    """Punctured lattices are first-class registry ids: ``ae-3-2-5-p75``."""

    @pytest.mark.parametrize("scheme_id,keep", [("ae-3-2-5-p75", 0.75), ("ae-2-2-5-p50", 0.5)])
    def test_punctured_ids_resolve(self, scheme_id, keep):
        from repro.codes.entanglement import PuncturedEntanglementScheme

        scheme = schemes.get(scheme_id)
        assert isinstance(scheme, PuncturedEntanglementScheme)
        assert scheme.scheme_id == scheme_id
        assert scheme.keep_fraction == pytest.approx(keep)

    def test_punctured_id_round_trips_through_the_helper(self):
        from repro.codes.entanglement import punctured_scheme_id
        from repro.core.parameters import AEParameters

        scheme_id = punctured_scheme_id(AEParameters(3, 2, 5), 0.75)
        assert scheme_id == "ae-3-2-5-p75"
        assert schemes.get(scheme_id).scheme_id == scheme_id

    @pytest.mark.parametrize("bad", ["ae-3-2-5-p0", "ae-3-2-5-p101", "ae-3-2-5-px"])
    def test_invalid_puncture_rates_are_rejected(self, bad):
        from repro.exceptions import InvalidParametersError

        with pytest.raises(InvalidParametersError):
            schemes.get(bad)
