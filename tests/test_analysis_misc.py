"""Tests for write-performance analysis, reliability models and workloads."""

from __future__ import annotations

import pytest

from repro.analysis.reliability import (
    DriveModel,
    analytic_mirror_loss,
    closed_chain_survives,
    five_year_comparison,
    mirroring_survives,
    open_chain_survives,
    simulate_layout,
)
from repro.analysis.write_performance import (
    compare_settings,
    evaluate_setting,
    figure10_comparison,
    full_write_memory,
)
from repro.core.parameters import AEParameters
from repro.exceptions import InvalidParametersError
from repro.simulation.workload import WorkloadSpec, document_bytes, mixed_file_sizes, payload_stream


class TestWritePerformance:
    def test_figure10_comparison_shape(self):
        """s = p seals every bucket; p > s does not (Fig. 10)."""
        unequal, equal = figure10_comparison(columns=40)
        assert equal.params.spec() == "AE(3,10,10)"
        assert equal.sealed_fraction == pytest.approx(1.0)
        assert unequal.sealed_fraction < 1.0
        assert unequal.deferred_parities_per_column > 0

    def test_compare_settings_skips_invalid_p(self):
        points = compare_settings(3, 5, [3, 5, 10], columns=30)
        assert [point.params.p for point in points] == [5, 10]

    def test_memory_model(self):
        assert full_write_memory(AEParameters(3, 5, 10)) == 5 + 2 * 10
        point = evaluate_setting(AEParameters(3, 5, 5), columns=30)
        assert point.strand_head_memory_blocks == 15
        assert point.as_row()["setting"] == "AE(3,5,5)"

    def test_invalid_arguments(self):
        with pytest.raises(InvalidParametersError):
            compare_settings(0, 5, [5])


class TestReliabilityPredicates:
    def test_mirroring_loses_only_when_a_pair_dies(self):
        assert mirroring_survives({0, 2, 5}, pairs=4)
        assert not mirroring_survives({2, 3}, pairs=4)

    def test_open_chain_survives_scattered_failures(self):
        # Data drives are even indexes, parity drives odd.
        assert open_chain_survives({0, 4, 8}, pairs=6)
        assert open_chain_survives({1, 5, 9}, pairs=6)

    def test_open_chain_primitive_form_is_fatal(self):
        """d_i, p_i, d_{i+1} simultaneously down kills an open chain."""
        failed = {4, 5, 6}  # d2, p2, d3
        assert not open_chain_survives(failed, pairs=6)

    def test_closed_chain_handles_the_extremity(self):
        """The last data drive plus its parity is fatal for open, fine for closed."""
        pairs = 6
        failed = {2 * (pairs - 1), 2 * (pairs - 1) + 1}
        assert not open_chain_survives(failed, pairs)
        assert closed_chain_survives(failed, pairs)

    def test_single_drive_failures_never_lose_data(self):
        for drive in range(12):
            assert open_chain_survives({drive}, pairs=6)
            assert closed_chain_survives({drive}, pairs=6)
            assert mirroring_survives({drive}, pairs=6)


class TestReliabilitySimulation:
    def test_entanglement_beats_mirroring(self):
        """Sec. IV-B1: entangled mirrors cut the 5-year loss probability."""
        results = five_year_comparison(drive_pairs=8, trials=400, seed=11)
        assert results["entangled-open"].loss_probability <= results["mirroring"].loss_probability
        assert results["entangled-closed"].loss_probability <= results["entangled-open"].loss_probability
        assert results["mirroring"].loss_probability > 0

    def test_simulate_layout_validation(self):
        with pytest.raises(InvalidParametersError):
            simulate_layout("raid42", trials=10)

    def test_result_accessors(self):
        result = simulate_layout("mirroring", drive_pairs=4, trials=50, seed=1)
        assert 0.0 <= result.loss_probability <= 1.0
        assert result.reliability == pytest.approx(1.0 - result.loss_probability)

    def test_analytic_mirror_loss_is_monotonic_in_repair_time(self):
        fast = analytic_mirror_loss(10, 5.0, DriveModel(50_000, 24.0))
        slow = analytic_mirror_loss(10, 5.0, DriveModel(50_000, 500.0))
        assert slow > fast


class TestWorkloads:
    def test_payload_stream_counts_and_sizes(self):
        spec = WorkloadSpec(block_count=10, block_size=128, seed=1)
        payloads = list(payload_stream(spec))
        assert len(payloads) == 10
        assert all(len(payload) == 128 for payload in payloads)
        assert spec.total_bytes() == 1280

    def test_compressible_payloads_are_runs(self):
        spec = WorkloadSpec(block_count=3, block_size=64, compressible=True)
        payloads = list(payload_stream(spec))
        assert all(len(set(payload)) == 1 for payload in payloads)

    def test_document_bytes_deterministic(self):
        assert document_bytes(100, seed=5) == document_bytes(100, seed=5)
        assert document_bytes(100, seed=5) != document_bytes(100, seed=6)

    def test_mixed_file_sizes_bounds(self):
        sizes = mixed_file_sizes(50, seed=2)
        assert len(sizes) == 50
        assert all(256 <= size <= 4096 * 1024 for size in sizes)

    def test_invalid_workloads(self):
        with pytest.raises(InvalidParametersError):
            list(payload_stream(WorkloadSpec(block_count=-1)))
        with pytest.raises(InvalidParametersError):
            document_bytes(-1)
        with pytest.raises(InvalidParametersError):
            mixed_file_sizes(-1)
