"""Tests for the XOR payload kernels."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.xor import (
    as_payload,
    payload_to_bytes,
    payloads_equal,
    xor_many,
    xor_payloads,
    zero_payload,
)
from repro.exceptions import BlockSizeMismatchError

binary = st.binary(min_size=1, max_size=256)


class TestConversions:
    def test_as_payload_from_bytes(self):
        payload = as_payload(b"\x01\x02\x03")
        assert payload.dtype == np.uint8
        assert payload.tolist() == [1, 2, 3]

    def test_as_payload_pads_to_block_size(self):
        payload = as_payload(b"\x01\x02", block_size=5)
        assert payload.tolist() == [1, 2, 0, 0, 0]

    def test_as_payload_rejects_oversized(self):
        with pytest.raises(BlockSizeMismatchError):
            as_payload(b"\x01\x02\x03", block_size=2)

    def test_payload_to_bytes_strips_padding(self):
        payload = as_payload(b"abc", block_size=8)
        assert payload_to_bytes(payload, 3) == b"abc"
        assert payload_to_bytes(payload) == b"abc" + b"\x00" * 5

    def test_zero_payload(self):
        assert zero_payload(4).tolist() == [0, 0, 0, 0]


class TestXorAlgebra:
    @given(binary)
    def test_xor_with_zero_is_identity(self, data):
        payload = as_payload(data)
        assert payloads_equal(xor_payloads(payload, zero_payload(payload.size)), payload)

    @given(binary)
    def test_xor_self_is_zero(self, data):
        payload = as_payload(data)
        assert payloads_equal(xor_payloads(payload, payload), zero_payload(payload.size))

    @given(binary, binary)
    def test_xor_is_commutative(self, left, right):
        size = max(len(left), len(right))
        a = as_payload(left, size)
        b = as_payload(right, size)
        assert payloads_equal(xor_payloads(a, b), xor_payloads(b, a))

    @given(binary, binary, binary)
    def test_xor_is_associative(self, one, two, three):
        size = max(len(one), len(two), len(three))
        a, b, c = (as_payload(value, size) for value in (one, two, three))
        assert payloads_equal(
            xor_payloads(xor_payloads(a, b), c), xor_payloads(a, xor_payloads(b, c))
        )

    @given(binary, binary)
    def test_xor_roundtrip_recovers_data(self, data, key):
        """The entanglement primitive: parity XOR old parity recovers the data."""
        size = max(len(data), len(key))
        d = as_payload(data, size)
        p_old = as_payload(key, size)
        p_new = xor_payloads(d, p_old)
        assert payloads_equal(xor_payloads(p_new, p_old), d)

    def test_size_mismatch_raises(self):
        with pytest.raises(BlockSizeMismatchError):
            xor_payloads(b"\x00\x01", b"\x00")

    def test_xor_many(self):
        parts = [b"\x01\x01", b"\x02\x02", b"\x04\x04"]
        assert xor_many(parts).tolist() == [7, 7]
        with pytest.raises(BlockSizeMismatchError):
            xor_many([])
        with pytest.raises(BlockSizeMismatchError):
            xor_many([b"\x01", b"\x02\x03"])
