"""Tests for the synthetic failure/availability trace generators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import InvalidParametersError
from repro.simulation.traces import (
    LifetimeModel,
    NodeSession,
    SessionTrace,
    TraceStatistics,
    datacenter_disk_trace,
    exponential_lifetimes,
    p2p_session_trace,
    weibull_lifetimes,
)


class TestLifetimes:
    def test_exponential_mean(self):
        samples = exponential_lifetimes(20_000, mttf_hours=1000.0, seed=1)
        assert samples.shape == (20_000,)
        assert np.mean(samples) == pytest.approx(1000.0, rel=0.05)

    def test_weibull_mean_matches_request(self):
        samples = weibull_lifetimes(20_000, mttf_hours=1000.0, shape=0.7, seed=2)
        assert np.mean(samples) == pytest.approx(1000.0, rel=0.05)

    def test_weibull_is_heavier_tailed_than_exponential(self):
        """Shape < 1 concentrates more mass at small lifetimes (infant mortality)."""
        exponential = exponential_lifetimes(50_000, 1000.0, seed=3)
        weibull = weibull_lifetimes(50_000, 1000.0, shape=0.7, seed=3)
        early_exp = np.mean(exponential < 100.0)
        early_weib = np.mean(weibull < 100.0)
        assert early_weib > early_exp

    def test_invalid_model(self):
        with pytest.raises(InvalidParametersError):
            LifetimeModel("lognormal", 1000.0)
        with pytest.raises(InvalidParametersError):
            LifetimeModel("weibull", -5.0)
        with pytest.raises(InvalidParametersError):
            LifetimeModel("weibull", 100.0, weibull_shape=0.0)
        with pytest.raises(InvalidParametersError):
            LifetimeModel("exponential", 100.0).sample(0)

    @given(st.integers(min_value=1, max_value=500), st.floats(min_value=1.0, max_value=1e6))
    @settings(max_examples=20, deadline=None)
    def test_lifetimes_are_positive(self, count, mttf):
        assert (exponential_lifetimes(count, mttf, seed=0) >= 0).all()
        assert (weibull_lifetimes(count, mttf, seed=0) >= 0).all()


class TestSessionTrace:
    def test_session_validation(self):
        with pytest.raises(InvalidParametersError):
            NodeSession(node=0, start=10.0, end=5.0)
        with pytest.raises(InvalidParametersError):
            SessionTrace(node_count=0, horizon_hours=10.0)
        with pytest.raises(InvalidParametersError):
            SessionTrace(node_count=5, horizon_hours=0.0)

    def test_online_and_availability(self):
        trace = SessionTrace(
            node_count=2,
            horizon_hours=10.0,
            sessions=[
                NodeSession(node=0, start=0.0, end=10.0),
                NodeSession(node=1, start=0.0, end=5.0),
            ],
        )
        assert trace.online_at(2.0) == [0, 1]
        assert trace.online_at(7.0) == [0]
        assert trace.availability(0) == pytest.approx(1.0)
        assert trace.availability(1) == pytest.approx(0.5)
        assert trace.mean_availability() == pytest.approx(0.75)

    def test_offline_mask(self):
        trace = SessionTrace(
            node_count=3,
            horizon_hours=4.0,
            sessions=[NodeSession(node=1, start=0.0, end=4.0)],
        )
        mask = trace.offline_mask_at(1.0)
        assert mask.tolist() == [True, False, True]

    def test_to_churn_trace_emits_state_changes(self):
        trace = SessionTrace(
            node_count=2,
            horizon_hours=4.0,
            sessions=[
                NodeSession(node=0, start=0.0, end=4.0),
                NodeSession(node=1, start=0.0, end=1.0),
                NodeSession(node=1, start=3.0, end=4.0),
            ],
        )
        churn = trace.to_churn_trace(step_hours=1.0)
        assert len(churn.events) == 4
        # Node 1 departs at step 1 or 2 and returns at step 3.
        departures = [event.departures for event in churn.events]
        arrivals = [event.arrivals for event in churn.events]
        assert any(1 in d for d in departures)
        assert any(1 in a for a in arrivals)

    def test_to_churn_trace_rejects_bad_step(self):
        trace = SessionTrace(node_count=1, horizon_hours=2.0)
        with pytest.raises(InvalidParametersError):
            trace.to_churn_trace(step_hours=0.0)


class TestGenerators:
    def test_p2p_trace_shape_and_determinism(self):
        first = p2p_session_trace(20, 240.0, seed=7)
        second = p2p_session_trace(20, 240.0, seed=7)
        assert first.node_count == 20
        assert len(first.sessions) == len(second.sessions)
        assert first.mean_availability() == pytest.approx(second.mean_availability())

    def test_p2p_trace_availability_tracks_duty_cycle(self):
        """Mean availability should approximate session / (session + downtime)."""
        trace = p2p_session_trace(
            60, 2_000.0, mean_session_hours=8.0, mean_downtime_hours=24.0, seed=11
        )
        expected = 8.0 / (8.0 + 24.0)
        assert trace.mean_availability() == pytest.approx(expected, abs=0.08)

    def test_p2p_trace_permanent_departures_reduce_availability(self):
        stable = p2p_session_trace(40, 1_000.0, seed=5)
        leaving = p2p_session_trace(
            40, 1_000.0, permanent_departure_probability=0.5, seed=5
        )
        assert leaving.mean_availability() < stable.mean_availability()

    def test_p2p_trace_pareto_sessions(self):
        trace = p2p_session_trace(10, 500.0, distribution="pareto", seed=3)
        assert trace.sessions
        assert all(session.duration >= 0 for session in trace.sessions)

    def test_p2p_trace_invalid_arguments(self):
        with pytest.raises(InvalidParametersError):
            p2p_session_trace(0, 100.0)
        with pytest.raises(InvalidParametersError):
            p2p_session_trace(5, -1.0)
        with pytest.raises(InvalidParametersError):
            p2p_session_trace(5, 100.0, mean_session_hours=0.0)
        with pytest.raises(InvalidParametersError):
            p2p_session_trace(5, 100.0, distribution="uniform")
        with pytest.raises(InvalidParametersError):
            p2p_session_trace(5, 100.0, permanent_departure_probability=2.0)

    def test_datacenter_trace_high_availability(self):
        """Disks with long lifetimes and short rebuilds stay mostly online."""
        trace = datacenter_disk_trace(
            30, 8760.0, mttf_hours=100_000.0, repair_hours=72.0, seed=9
        )
        assert trace.mean_availability() > 0.95

    def test_datacenter_trace_invalid_repair(self):
        with pytest.raises(InvalidParametersError):
            datacenter_disk_trace(10, 100.0, repair_hours=0.0)

    def test_statistics_row(self):
        trace = p2p_session_trace(15, 300.0, seed=2)
        stats = TraceStatistics.of(trace)
        row = stats.as_row()
        assert row["nodes"] == 15
        assert 0.0 <= row["mean availability"] <= 1.0
        assert row["sessions / node"] > 0
