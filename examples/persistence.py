#!/usr/bin/env python3
"""Persistence walkthrough: ingest to disk, "kill" the process, reopen.

This is the runnable version of ``docs/persistence.md``:

1. open a durable :class:`StorageService` (``backend="segment"`` here — an
   append-only segment log per location) on a fresh ``data_dir``;
2. store a document and *close* the service (simulating process exit; the
   manifest is synced after every put, so even a hard kill keeps the
   catalogue);
3. reopen the same root from scratch: placements, documents and the AE
   encoder's strand heads are restored from storage;
4. verify the document byte-exact, run a disaster + repair over the
   reopened blocks, and keep writing — the lattice continues where the
   first process stopped.

Run with::

    python examples/persistence.py
"""

from __future__ import annotations

import os
import random
import shutil
import tempfile

from repro import StorageConfig, StorageService


def main() -> None:
    data_dir = tempfile.mkdtemp(prefix="repro-archive-")
    config = StorageConfig(
        scheme="ae-3-2-5",
        backend="segment",
        data_dir=data_dir,
        location_count=30,
        block_size=1024,
    )
    payload = random.Random(7).randbytes(200_000)

    # ------------------------------------------------------------------
    # 1-2. First "process": ingest, then die.
    # ------------------------------------------------------------------
    service = StorageService.open(config)
    document = service.put("backup", payload)
    status = service.status()
    print(f"data dir        : {data_dir}")
    print(f"scheme          : {service.scheme.scheme_id} ({service.capabilities.name})")
    print(f"stored          : {document.length} bytes in {document.block_count} data blocks")
    print(f"cluster         : {status.blocks} blocks / {status.locations} locations")
    service.close()
    print("closed          : counters + manifest persisted; process 'exits'\n")

    # ------------------------------------------------------------------
    # 3. Second "process": reopen the same root.
    # ------------------------------------------------------------------
    service = StorageService.open(config)
    print(f"reopened        : {len(service.documents)} document(s), "
          f"{service.status().blocks} blocks re-indexed from the backends")
    assert service.get("backup") == payload
    print("verify          : byte-exact round trip after reopen")

    # ------------------------------------------------------------------
    # 4. The reopened archive is fully operational: disaster, repair, write.
    # ------------------------------------------------------------------
    service.fail_locations(range(5))
    report = service.repair()
    print(f"disaster repair : {report.summary()}")
    assert service.get("backup") == payload
    service.restore_locations()

    more = random.Random(11).randbytes(50_000)
    service.put("more", more)          # AE strands continue where they stopped
    assert service.get("more") == more
    hits, misses = service.status().cache_hits, service.status().cache_misses
    print(f"kept writing    : new document entangled into the reopened lattice")
    print(f"read cache      : {hits} hits / {misses} misses")
    service.close()

    shutil.rmtree(data_dir)
    print("\ndurable archive survived a process exit: OK")


if __name__ == "__main__":
    main()
