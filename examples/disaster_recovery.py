#!/usr/bin/env python3
"""Disaster-recovery comparison (paper, Sec. V-C, Figs. 11-13 and Table VI).

Runs a reduced-scale version of the paper's simulation -- 100,000 data blocks
over 100 locations by default -- and prints the regenerated tables: data loss
after repairs, vulnerable data under minimal maintenance, the share of
single-failure repairs and the number of AE repair rounds.

It then swaps the anonymous 100 locations for an explicit geo topology
(``Topology.parse("sites=4,nodes=25")``) and replays *deterministic
full-site disasters* (``engine.run_disaster("site:0")``) across schemes --
the correlated-failure scenario of Sec. V-C expressed as a first-class
event rather than a random draw (see ``docs/topology.md``).

Run with::

    python examples/disaster_recovery.py [data_blocks]

Setting ``REPRO_SMOKE=1`` (as CI does for every example) drops the default
scale so the run finishes in about a second.
"""

from __future__ import annotations

import os
import sys

from repro.simulation.engine import SimulationEngine
from repro.simulation.experiments import (
    ExperimentConfig,
    costs_table,
    data_loss_experiment,
    repair_rounds_experiment,
    single_failure_experiment,
    vulnerable_data_experiment,
)
from repro.simulation.metrics import format_table
from repro.storage.topology import Topology


def main() -> None:
    default_blocks = 20_000 if os.environ.get("REPRO_SMOKE") else 100_000
    blocks = int(sys.argv[1]) if len(sys.argv) > 1 else default_blocks
    config = ExperimentConfig.quick(blocks)
    print(f"disaster-recovery simulation: {blocks} data blocks, "
          f"{config.location_count} locations, disasters of 10-50%\n")

    print("Table IV - redundancy scheme costs")
    print(format_table(costs_table()))

    print("\nFig. 11 - data blocks the decoder failed to repair")
    print(format_table(data_loss_experiment(config)))

    print("\nFig. 12 - data blocks left without redundancy (minimal maintenance)")
    print(format_table(vulnerable_data_experiment(config)))

    print("\nFig. 13 - single-failure repairs as a share of all repairs")
    print(format_table(single_failure_experiment(config)))

    print("\nTable VI - AE repair rounds")
    print(format_table(repair_rounds_experiment(config)))

    # ------------------------------------------------------------------
    # Geo scenario: deterministic full-site disasters over a topology.
    # ------------------------------------------------------------------
    topology = Topology.parse("sites=4,nodes=25")
    print(f"\nGeo scenario - {topology.describe()}, one full site lost at once")
    rows = []
    for scheme_id in ("ae-3-2-5", "rs-10-4", "lrc-azure", "rep-3"):
        engine = SimulationEngine(
            scheme_id, data_blocks=min(blocks, 50_000), topology=topology, seed=7
        )
        for target in ("site:0", "site:2"):
            metrics = engine.run_disaster(target)
            rows.append(
                {
                    "scheme": metrics.scheme,
                    "disaster": target,
                    "data loss": metrics.data_loss,
                    "vulnerable": metrics.vulnerable_data,
                    "repair rounds": metrics.repair_rounds,
                }
            )
    print(format_table(rows))


if __name__ == "__main__":
    main()
