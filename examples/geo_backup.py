#!/usr/bin/env python3
"""Use case 1 (paper, Sec. IV-A): a geo-replicated cooperative backup network.

A small community of twelve nodes shares storage: every user keeps their own
files locally and uploads entanglement parities to the other nodes.  The
script walks through the paper's failure-mode narrative (Fig. 5, Table III):

* three storage nodes become unavailable at once;
* one user additionally loses their local disk;
* the user restores every file from the surviving remote parities;
* the lattices damaged by the outage are regenerated, parity by parity,
  following the five steps of Table III.

It then rebuilds the community as an explicit *geo topology* (three sites of
four nodes, ``Topology.parse("sites=3,racks=2,nodes=2")``) and stores a
backup under the ``spread-domains`` placement policy, so that an entire site
going dark -- the correlated failure the anonymous-locations model cannot
even express -- is survived and repaired with every rebuilt block re-placed
outside the dead site (see ``docs/topology.md``).

Run with::

    python examples/geo_backup.py
"""

from __future__ import annotations

from repro.core.parameters import AEParameters
from repro.simulation.workload import document_bytes, mixed_file_sizes
from repro.system.backup import CooperativeBackupNetwork
from repro.system.service import StorageConfig, StorageService


def main() -> None:
    params = AEParameters.triple(5, 5)  # the AE(3,5,5) lattice of Fig. 4
    network = CooperativeBackupNetwork(node_count=12, params=params, block_size=1024)
    print(f"cooperative backup network: 12 nodes, per-user lattices, {params.spec()}\n")

    # ------------------------------------------------------------------
    # 1. Two users back up a handful of files each.
    # ------------------------------------------------------------------
    files = {}
    for user_node, user_seed in ((0, 10), (1, 20)):
        for file_index, size in enumerate(mixed_file_sizes(4, median_kib=16, seed=user_seed)):
            name = f"user{user_node}-file{file_index}"
            payload = document_bytes(size, seed=user_seed + file_index)
            network.backup(user_node, name, payload)
            files[(user_node, name)] = payload
    for node_id in (0, 1):
        lattice = network.lattice_of(network.owner_name(node_id))
        print(f"node {node_id}: {lattice.describe()}")

    # ------------------------------------------------------------------
    # 2. Disaster: three remote nodes leave, and node 0 loses its disk.
    # ------------------------------------------------------------------
    network.fail_nodes([4, 5, 6])
    network.node(0).lose_local_data()
    print("\nfailure mode: nodes 4, 5, 6 unavailable; node 0 lost its local data")
    degraded = network.redundancy_report(0)
    print(
        f"node 0 lattice degradation: {degraded.complete} blocks fully protected, "
        f"{degraded.missing_one_tuple} missing one pp-tuple, "
        f"{degraded.missing_two_tuples} missing two, "
        f"{degraded.missing_three_tuples} missing three"
    )

    # ------------------------------------------------------------------
    # 3. The user restores every file from the surviving parities.
    # ------------------------------------------------------------------
    for (node_id, name), payload in files.items():
        if node_id != 0:
            continue
        recovered = network.restore_file(node_id, name)
        assert recovered == payload
        print(f"restored {name}: {len(recovered)} bytes, intact")

    # ------------------------------------------------------------------
    # 4. Repair the lattice parities hosted on the failed nodes (Table III).
    # ------------------------------------------------------------------
    traces = network.repair_lattice(0)
    repaired = [trace for trace in traces if trace.succeeded]
    print(f"\nregenerated {len(repaired)}/{len(traces)} parities hosted on failed nodes")
    if repaired:
        print("Table III walkthrough for the first regenerated parity:")
        for step in repaired[0].steps:
            print(f"  {step}")

    healthy_again = network.redundancy_report(0)
    print(
        f"\nafter repairs: {healthy_again.complete} blocks fully protected, "
        f"{healthy_again.degraded_blocks()} still degraded"
    )

    # ------------------------------------------------------------------
    # 5. The same community as an explicit geo topology: three sites of
    #    two racks, spread-domains placement, and a full-site disaster.
    # ------------------------------------------------------------------
    service = StorageService.open(
        StorageConfig(
            scheme="ae-3-2-5",
            topology="sites=3,racks=2,nodes=2",
            placement="spread-domains",
            block_size=1024,
        )
    )
    print(f"\ngeo topology: {service.topology.describe()}")
    archive = document_bytes(48 * 1024, seed=99)
    service.put("community-archive", archive)
    print(f"stored archive: {service.cluster.stats().summary()}")

    failed_site = service.topology.locations_for_target("site:0")
    service.fail_locations(failed_site)
    report = service.repair()
    print(f"site-0 disaster ({len(failed_site)} nodes): {report.summary()}")
    assert service.get("community-archive") == archive
    relocated_sites = {
        service.topology.site_of(service.cluster.location_of(block_id))
        for block_id in report.repaired
    }
    print(
        "archive intact after losing an entire site; rebuilt blocks live on "
        + ", ".join(sorted(relocated_sites))
    )


if __name__ == "__main__":
    main()
