#!/usr/bin/env python3
"""Dynamic fault tolerance: raising alpha without re-encoding the archive.

One of the distinguishing properties of entanglement codes (paper, Sec. I and
III-B) is that reliability requirements can change after the fact: an archive
encoded with AE(2,2,5) can later be upgraded to AE(3,2,5) by computing only
the new left-handed parities -- no stored block is rewritten.  This script
also shows the anti-tampering property: how many blocks an attacker would
need to rewrite to modify one block silently.

Run with::

    python examples/dynamic_fault_tolerance.py
"""

from __future__ import annotations

from repro.core.dynamic import plan_alpha_upgrade, upgrade_alpha
from repro.core.lattice import HelicalLattice
from repro.core.parameters import AEParameters
from repro.core.tamper import detection_probability, tamper_cost
from repro.simulation.workload import document_bytes
from repro.storage.maintenance import MaintenancePolicy
from repro.system.entangled_store import EntangledStorageSystem


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Archive data with a double entanglement (200% overhead).
    # ------------------------------------------------------------------
    old_params = AEParameters.double(2, 5)
    system = EntangledStorageSystem(old_params, location_count=50, block_size=1024, seed=4)
    payload = document_bytes(200_000, seed=7)
    system.put("archive-2019", payload)
    print(f"archive encoded with {old_params.spec()}: "
          f"{system.lattice.size} data blocks, {system.lattice.parity_count} parities")

    # ------------------------------------------------------------------
    # 2. Years later the archive must tolerate harsher failure scenarios:
    #    plan and execute the upgrade to alpha = 3.
    # ------------------------------------------------------------------
    plan = plan_alpha_upgrade(old_params, 3, system.lattice.size)
    print(f"\nupgrade plan: {plan.summary()}")
    new_parities = upgrade_alpha(
        old_params, 3, system.lattice.size,
        lambda data_id: system.get_block(data_id),
        system.block_size,
    )
    print(f"computed {len(new_parities)} new parities; existing blocks untouched")

    # Store the new parities alongside the old ones.
    for block in new_parities:
        system.cluster.put_block(block)

    # ------------------------------------------------------------------
    # 3. The upgraded archive still reads back correctly after a disaster.
    # ------------------------------------------------------------------
    system.fail_locations(range(0, 15))  # 30% of the locations
    assert system.read("archive-2019") == payload
    report = system.repair(MaintenancePolicy.FULL)
    print(f"after a 30% disaster: data loss = {report.data_loss}, "
          f"{report.repaired_count} blocks repaired in {report.round_count} rounds")

    # ------------------------------------------------------------------
    # 4. Anti-tampering: the price of an undetected modification.
    # ------------------------------------------------------------------
    new_params = plan.new_params
    lattice = HelicalLattice(new_params, system.lattice.size)
    victim = system.lattice.size // 2
    cost = tamper_cost(lattice, victim)
    print(f"\nanti-tampering: {cost.summary()}")
    for audited in (0.05, 0.20, 0.50):
        print(f"  auditing {audited:.0%} of parities detects a naive tamper with "
              f"probability {detection_probability(new_params, audited):.2f}")


if __name__ == "__main__":
    main()
