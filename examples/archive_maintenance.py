#!/usr/bin/env python3
"""Archive maintenance: versioning, disasters, scrubbing and analytic reliability.

A long-term archive is not a single write -- it is years of maintenance.
This example runs one maintenance cycle end to end on an
:class:`~repro.system.archive.ArchiveStore`:

1. archive several versions of a growing dataset;
2. lose a fifth of the storage locations and repair the lattice;
3. run an integrity scrub to confirm every entanglement equation holds;
4. compare the repair traffic this cycle would cost under AE(3,2,5) versus
   RS codes of the same overhead;
5. close with the analytic (Markov) view: how rare data loss becomes when
   this maintenance loop runs on schedule.

Run with::

    python examples/archive_maintenance.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.markov import HOURS_PER_YEAR, five_year_loss_table, kofn_chain, mttdl
from repro.analysis.repair_cost import disaster_traffic_table
from repro.core.parameters import AEParameters
from repro.simulation.metrics import format_table
from repro.storage.maintenance import MaintenancePolicy
from repro.system.archive import ArchiveStore


def dataset(version: int) -> bytes:
    rng = np.random.default_rng(1000 + version)
    return rng.integers(0, 256, size=20_000 + 5_000 * version, dtype=np.uint8).tobytes()


def main() -> None:
    params = AEParameters.triple(s=2, p=5)
    archive = ArchiveStore(params, location_count=50, block_size=1024, seed=11)

    # ------------------------------------------------------------------
    # 1. Three snapshots of the same dataset: the lattice only ever grows.
    # ------------------------------------------------------------------
    for version in range(1, 4):
        entry = archive.put("measurements.bin", dataset(version))
        print(f"archived v{entry.version}: {entry.length} bytes "
              f"({entry.block_count} blocks, digest {entry.digest[:12]}...)")
    print(f"\n{archive.status_summary()}")

    # ------------------------------------------------------------------
    # 2. Disaster: 10 of the 50 locations fail; repair relocates the blocks.
    # ------------------------------------------------------------------
    failed = archive.system.cluster.available_locations()[:10]
    archive.fail_locations(failed)
    report = archive.repair(policy=MaintenancePolicy.FULL)
    print(f"\ndisaster repair    : {report.summary()}")
    print(f"all versions intact: {all(archive.verify('measurements.bin', v) for v in (1, 2, 3))}")

    # ------------------------------------------------------------------
    # 3. Integrity scrub.
    # ------------------------------------------------------------------
    scrub = archive.scrub()
    print(f"integrity scrub    : {scrub.summary()}")

    # ------------------------------------------------------------------
    # 4. What did this repair cycle cost, and what would RS have cost?
    # ------------------------------------------------------------------
    missing = report.repaired_count
    rows = disaster_traffic_table(
        [params, (4, 12), (10, 4)], missing_blocks=missing, block_size=1024
    )
    print("\nrepair traffic for this cycle")
    print(format_table(rows))

    # ------------------------------------------------------------------
    # 5. The analytic long view.
    # ------------------------------------------------------------------
    print("\nanalytic reliability (Markov models, 50k-hour MTTF, 1-week MTTR)")
    print(format_table(five_year_loss_table(50_000.0, 168.0, 10)))
    rs = kofn_chain(4, 12, 50_000.0, 168.0)
    print(f"for reference, a single RS(4,12) stripe has an MTTDL of "
          f"{mttdl(rs) / HOURS_PER_YEAR:.1e} years")


if __name__ == "__main__":
    main()
