#!/usr/bin/env python3
"""Anti-tampering: detect and undo a silent modification of archived data.

Section III-B of the paper argues that tampering with an entangled block is
hard to hide: the block's value propagates into ``alpha`` strands, so a silent
modification leaves every entanglement equation it participates in
inconsistent.  This example demonstrates the full loop:

1. archive a document with AE(3,2,5) in an :class:`ArchiveStore`;
2. tamper with one data block directly on its storage location (bypassing the
   API, like an attacker with device access);
3. run the integrity scrubber: the equation checks attribute the tampering to
   the exact block even without consulting the checksum manifest;
4. show what the attacker *would* have had to rewrite to stay hidden (the
   strand suffixes of Sec. III-B), then repair the block from its neighbours.

Run with::

    python examples/anti_tampering.py
"""

from __future__ import annotations

import numpy as np

from repro.core.blocks import DataId
from repro.core.parameters import AEParameters
from repro.core.tamper import tamper_cost
from repro.storage.scrub import Scrubber
from repro.system.archive import ArchiveStore


def main() -> None:
    params = AEParameters.triple(s=2, p=5)
    archive = ArchiveStore(params, location_count=30, block_size=256, seed=7)

    # ------------------------------------------------------------------
    # 1. Archive a document.
    # ------------------------------------------------------------------
    document = ("Minutes of the standards committee, season 12. "
                "Approved unanimously. " * 120).encode()
    entry = archive.put("minutes.txt", document)
    print(f"archived          : {entry.name} v{entry.version}, "
          f"{entry.length} bytes in {entry.block_count} blocks")
    print(f"digest            : {entry.digest[:16]}...")

    # ------------------------------------------------------------------
    # 2. Tamper with a block behind the system's back.
    # ------------------------------------------------------------------
    victim = entry.data_ids[len(entry.data_ids) // 2]
    cluster = archive.system.cluster
    store = cluster.location(cluster.location_of(victim))
    payload = np.asarray(store.get(victim), dtype=np.uint8).copy()
    payload[:16] ^= 0x5A  # flip bytes silently
    store.put(victim, payload)
    print(f"\ntampered block    : {victim!r} (on location {store.location_id})")

    # What would a *careful* attacker have to do to go unnoticed?  Rewrite
    # every parity from the block's position to the end of its alpha strands.
    cost = tamper_cost(archive.system.lattice, victim.index)
    print(f"to stay hidden    : rewrite {cost.total_parities} parities "
          f"across {params.alpha} strands ({cost.summary()})")

    # ------------------------------------------------------------------
    # 3. Scrub: equation checks pinpoint the tampered block.
    # ------------------------------------------------------------------
    # First without the manifest -- pure entanglement-equation forensics.
    plain_scrubber = Scrubber(
        archive.system.lattice, cluster, archive.system.block_size, manifest=None
    )
    report = plain_scrubber.scrub()
    print(f"\nscrub (no manifest): {report.summary()}")
    print(f"suspects           : {report.suspects}")
    assert victim in report.suspects

    # With the manifest the verdict is corroborated by the stored fingerprints.
    full_report = archive.scrub()
    print(f"scrub (manifest)   : {full_report.summary()}")

    # ------------------------------------------------------------------
    # 4. Repair the tampered block from consistent neighbours.
    # ------------------------------------------------------------------
    archive.scrubber().repair_suspects(full_report)
    print(f"\nafter repair       : {archive.scrub().summary()}")
    restored = archive.get_verified("minutes.txt")
    print(f"document intact    : {restored == document}")


if __name__ == "__main__":
    main()
