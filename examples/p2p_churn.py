#!/usr/bin/env python3
"""Peer-to-peer churn: availability of AE codes vs RS and replication.

The paper's motivating environment is a cooperative storage network whose
nodes join and leave continuously (Sec. IV-A and V-C).  This example builds a
synthetic peer-availability trace, replays it over the availability models of
several redundancy schemes and prints, per scheme, the achieved availability
(in nines), the outage volume and the data that would be lost if the nodes
offline at the end never came back.

Run with::

    python examples/p2p_churn.py
"""

from __future__ import annotations

from repro.core.parameters import AEParameters
from repro.simulation.churn import ChurnConfig, ChurnSimulator
from repro.simulation.metrics import format_table
from repro.simulation.traces import TraceStatistics, p2p_session_trace


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A community of 50 peers, observed for ten days.  Sessions last
    #    ~18 hours, downtimes ~6 hours, and 5% of departures are permanent.
    # ------------------------------------------------------------------
    trace = p2p_session_trace(
        node_count=50,
        horizon_hours=240.0,
        mean_session_hours=18.0,
        mean_downtime_hours=6.0,
        permanent_departure_probability=0.05,
        seed=42,
    )
    print("peer availability trace")
    print(format_table([TraceStatistics.of(trace).as_row()]))

    # ------------------------------------------------------------------
    # 2. Replay the trace over the schemes of Table IV (plus replication).
    # ------------------------------------------------------------------
    schemes = [
        AEParameters.single(),
        AEParameters.double(2, 5),
        AEParameters.triple(2, 5),
        (10, 4),
        (5, 5),
        (4, 12),
        2,
        3,
    ]
    simulator = ChurnSimulator(
        trace, ChurnConfig(data_blocks=10_000, sample_every_hours=12.0, seed=1)
    )
    results = simulator.run_many(schemes)
    print("\navailability under churn (10,000 data blocks)")
    print(format_table([result.as_row() for result in results]))

    # ------------------------------------------------------------------
    # 3. The headline comparisons.
    # ------------------------------------------------------------------
    by_scheme = {result.scheme: result for result in results}
    ae = by_scheme["AE(2,2,5)"]
    replication = by_scheme["2-way replication"]
    print("\nat ~100-200% additional storage:")
    print(f"  AE(2,2,5)          : {ae.mean_nines:.2f} nines, "
          f"{ae.final_data_loss} blocks lost if the final offline set never returns")
    print(f"  2-way replication  : {replication.mean_nines:.2f} nines, "
          f"{replication.final_data_loss} blocks lost")
    strongest = max(results, key=lambda result: result.mean_nines)
    print(f"\nmost available scheme on this trace: {strongest.scheme} "
          f"({strongest.mean_nines:.2f} nines)")


if __name__ == "__main__":
    main()
