#!/usr/bin/env python3
"""Use case 2 (paper, Sec. IV-B): entangled mirrors and RAID-AE disk arrays.

The script demonstrates the two array organisations:

* an **entangled mirror** (simple entanglement, AE(1)) with the same storage
  overhead as mirroring but far better survivability, including the
  open-vs-closed chain difference at the extremities;
* a **RAID-AE** array protected by AE(3,2,5): never-ending stripe, two-block
  single-failure rebuilds, degraded reads through alternative lattice paths
  and online growth (adding a disk without re-encoding).

Run with::

    python examples/raid_ae.py
"""

from __future__ import annotations

from repro.core.parameters import AEParameters
from repro.simulation.workload import document_bytes
from repro.system.raid import EntangledMirrorArray, RAIDAEArray, SimpleEntanglementChain


def entangled_mirror_demo() -> None:
    print("== entangled mirror (AE(1), same overhead as mirroring) ==")
    array = EntangledMirrorArray(drive_pairs=5, layout=EntangledMirrorArray.FULL_PARTITION)
    blocks = [document_bytes(4096, seed=index) for index in range(20)]
    for block in blocks:
        array.write(block)
    print(f"array: {array.drive_count} drives, overhead {array.storage_overhead:.0%}")

    array.fail_drives(data_drives=[1], parity_drives=[3])
    print("failed: data drive 1 and parity drive 3")
    print(f"all data still recoverable: {array.data_survives()}")
    recovered = array.read(1)
    assert bytes(recovered) == blocks[1]
    print("read of block 1 (on the failed drive) served through the chain\n")

    # Open vs closed chains: the weakness at the extremity (Sec. IV-B1).
    open_chain, closed_chain = SimpleEntanglementChain(False), SimpleEntanglementChain(True)
    for index in range(8):
        payload = document_bytes(1024, seed=100 + index)
        open_chain.append(payload)
        closed_chain.append(payload)
    tail_failure = {"d7", "p7"}
    print("losing the last data block and its parity:")
    print(f"  open chain survives  : {open_chain.survives(tail_failure)}")
    print(f"  closed chain survives: {closed_chain.survives(tail_failure)}\n")


def raid_ae_demo() -> None:
    print("== RAID-AE (AE(3,2,5) over 8 disks) ==")
    raid = RAIDAEArray(AEParameters.triple(2, 5), disk_count=8, block_size=4096)
    payloads = [document_bytes(4096, seed=1000 + index) for index in range(48)]
    ids = [raid.write(payload) for payload in payloads]
    print(f"wrote {len(ids)} blocks; write penalty = {raid.write_penalty} device writes per block")

    raid.fail_disk(2)
    print("disk 2 failed: serving degraded reads through alternative lattice paths")
    for index in (2, 10, 26):
        assert bytes(raid.read(ids[index])) == payloads[index]
    print("degraded reads OK")

    report = raid.rebuild()
    print(
        f"rebuild: {report.repaired_count} blocks restored in {report.round_count} round(s), "
        f"{report.blocks_read} block reads, data loss = {report.data_loss}"
    )
    estimate = raid.rebuild_cost_estimate(report.repaired_count)
    print(f"analytic rebuild cost: {estimate['blocks_read']} reads "
          f"(2 per block, vs k per block for RS)")

    new_disk = raid.add_disk()
    for index in range(48, 60):
        raid.write(document_bytes(4096, seed=1000 + index))
    print(f"grew the array online to {raid.disk_count} disks; "
          f"new disk {new_disk} now holds {len(raid.cluster.blocks_at(new_disk))} blocks "
          "(no re-encoding of existing data)")


def main() -> None:
    entangled_mirror_demo()
    raid_ae_demo()


if __name__ == "__main__":
    main()
