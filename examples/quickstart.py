#!/usr/bin/env python3
"""Quickstart: encode a document, lose blocks, repair everything.

This walks through the primary API of the library:

1. pick a code setting AE(alpha, s, p);
2. entangle a document into data and parity blocks;
3. simulate failures by dropping blocks;
4. repair single failures with two-block XORs and read the document back.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import AEParameters, DataId, Decoder, Entangler
from repro.core.blocks import join_blocks


def main() -> None:
    # AE(3,2,5) is the paper's flagship setting (the 5-HEC code): three
    # parities per block, two horizontal strands, five helical strands.
    params = AEParameters.triple(s=2, p=5)
    print(f"code setting      : {params.spec()}")
    print(f"storage overhead  : {params.storage_overhead:.0%}")
    print(f"code rate         : {params.code_rate}")
    print(f"strands           : {params.strand_count}")
    print(f"single-failure fix: XOR of {params.single_failure_cost} blocks\n")

    # ------------------------------------------------------------------
    # 1. Encode a document.
    # ------------------------------------------------------------------
    document = ("All along the helical lattice, every new block is tangled "
                "with old parities, weaving a mesh of interdependent content. "
                * 40).encode()
    encoder = Entangler(params, block_size=256)
    encoded_blocks, original_length = encoder.encode_bytes(document)
    print(f"document bytes    : {original_length}")
    print(f"data blocks       : {len(encoded_blocks)}")
    print(f"parity blocks     : {sum(len(block.parities) for block in encoded_blocks)}")

    # A flat payload store stands in for real storage devices.
    store = {}
    for encoded in encoded_blocks:
        for block in encoded.all_blocks():
            store[block.block_id] = block.payload

    # ------------------------------------------------------------------
    # 2. Damage the archive: drop several data blocks and some parities.
    # ------------------------------------------------------------------
    victims = [DataId(3), DataId(4), DataId(11)]
    for victim in victims:
        del store[victim]
    # Drop one parity too, to show parities are repaired the same way.
    some_parity = encoded_blocks[5].parity_ids[0]
    del store[some_parity]
    print(f"\ndropped blocks    : {victims + [some_parity]}")

    # ------------------------------------------------------------------
    # 3. Repair through the lattice.
    # ------------------------------------------------------------------
    decoder = Decoder(encoder.lattice, store.get, block_size=256)
    for victim in victims + [some_parity]:
        store[victim] = decoder.repair(victim)
        print(f"repaired          : {victim}")

    # ------------------------------------------------------------------
    # 4. Read the document back and verify it.
    # ------------------------------------------------------------------
    payloads = [store[encoded.data_id] for encoded in encoded_blocks]
    recovered = join_blocks(payloads, original_length)
    assert recovered == document
    print("\ndocument recovered bit-for-bit: OK")


if __name__ == "__main__":
    main()
