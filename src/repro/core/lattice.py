"""The helical lattice: a growing graph of entangled data and parity blocks.

The lattice is a *virtual* layer placed on top of the physical storage
(paper, Sec. III-B, "Implementation Details").  Nodes are data blocks and
edges are parity blocks; the wiring is fully determined by the code
parameters through the rules of Tables I and II, so the lattice never has to
be materialised -- this class answers adjacency questions (which blocks
repair which) from the position arithmetic alone.

The lattice is append-only: it knows how many data blocks have been entangled
(``size``) and every query is answered relative to that bound.  This mirrors
the paper's only assumption, that data are stored permanently and deletions
happen only at the beginning of the mesh.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.blocks import BlockId, DataId, ParityId, is_data
from repro.core.parameters import AEParameters, NodeCategory, StrandClass
from repro.core.position import (
    LatticePosition,
    column_count,
    node_category,
    node_column,
    node_row,
    nodes_in_column,
)
from repro.core.rules import input_index, output_index
from repro.core.strands import StrandId, strand_of, strands_of
from repro.exceptions import LatticeBoundsError


@dataclass(frozen=True)
class DataRepairOption:
    """One way to rebuild a data block: XOR of the two adjacent parities of a strand.

    ``input_parity`` is ``None`` when the strand starts at the node (the input
    is the virtual zero block) -- in that case the data block equals its
    output parity.  ``output_parity`` is always a real parity because every
    entangled node created its output parities.
    """

    strand_class: StrandClass
    input_parity: Optional[ParityId]
    output_parity: ParityId

    def required_blocks(self) -> List[ParityId]:
        blocks = [self.output_parity]
        if self.input_parity is not None:
            blocks.insert(0, self.input_parity)
        return blocks


@dataclass(frozen=True)
class ParityRepairOption:
    """One way to rebuild a parity block: XOR of an incident data block and the
    adjacent parity on the same strand (a dp-tuple, paper Sec. IV-A)."""

    data: DataId
    parity: Optional[ParityId]

    def required_blocks(self) -> List[BlockId]:
        blocks: List[BlockId] = [self.data]
        if self.parity is not None:
            blocks.append(self.parity)
        return blocks


class HelicalLattice:
    """Adjacency oracle for an AE(alpha, s, p) lattice with ``size`` data nodes."""

    def __init__(self, params: AEParameters, size: int = 0) -> None:
        if size < 0:
            raise LatticeBoundsError("lattice size cannot be negative")
        self._params = params
        self._size = size
        # Memoised repair options (batched planning asks for the same node's
        # options once per round).  Data options depend only on the node index
        # and the fixed parameters; parity options also depend on the lattice
        # size (the right dp-tuple appears once node ``j`` is entangled), so
        # that cache is dropped whenever the lattice grows.
        self._data_options_cache: Dict[int, List["DataRepairOption"]] = {}
        self._parity_options_cache: Dict[ParityId, List["ParityRepairOption"]] = {}

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def params(self) -> AEParameters:
        return self._params

    @property
    def size(self) -> int:
        """Number of data blocks entangled so far."""
        return self._size

    @property
    def parity_count(self) -> int:
        """Number of parity blocks (``alpha`` per data block)."""
        return self._size * self._params.alpha

    @property
    def total_blocks(self) -> int:
        return self._size + self.parity_count

    @property
    def columns(self) -> int:
        return column_count(self._size, self._params.s)

    def grow(self, count: int = 1) -> List[DataId]:
        """Append ``count`` new data positions and return their identifiers."""
        if count < 0:
            raise LatticeBoundsError("cannot grow by a negative amount")
        new_ids = [DataId(self._size + offset + 1) for offset in range(count)]
        self._size += count
        if count:
            self._parity_options_cache.clear()
        return new_ids

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def has_block(self, block_id: BlockId) -> bool:
        if is_data(block_id):
            return 1 <= block_id.index <= self._size
        return 1 <= block_id.index <= self._size and (
            block_id.strand_class in self._params.strand_classes
        )

    def _check_node(self, index: int) -> None:
        if not 1 <= index <= self._size:
            raise LatticeBoundsError(
                f"node {index} outside the encoded lattice (size {self._size})"
            )

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------
    def data_ids(self) -> Iterator[DataId]:
        for index in range(1, self._size + 1):
            yield DataId(index)

    def parity_ids(self) -> Iterator[ParityId]:
        for index in range(1, self._size + 1):
            for strand_class in self._params.strand_classes:
                yield ParityId(index, strand_class)

    def block_ids(self) -> Iterator[BlockId]:
        yield from self.data_ids()
        yield from self.parity_ids()

    def column_nodes(self, column: int) -> List[DataId]:
        nodes = [
            DataId(index)
            for index in nodes_in_column(column, self._params.s)
            if index <= self._size
        ]
        return nodes

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def position(self, index: int) -> LatticePosition:
        self._check_node(index)
        return LatticePosition.of(index, self._params)

    def category(self, index: int) -> NodeCategory:
        return node_category(index, self._params.s)

    def row(self, index: int) -> int:
        return node_row(index, self._params.s)

    def column(self, index: int) -> int:
        return node_column(index, self._params.s)

    def strands_through(self, index: int) -> List[StrandId]:
        """The alpha strands a data node participates in."""
        return strands_of(index, self._params)

    def strand_of_parity(self, parity: ParityId) -> StrandId:
        return strand_of(parity.index, parity.strand_class, self._params)

    # ------------------------------------------------------------------
    # Edges (parities)
    # ------------------------------------------------------------------
    def output_parity(self, index: int, strand_class: StrandClass) -> ParityId:
        """The parity created when node ``index`` was entangled on ``strand_class``."""
        return ParityId(index, strand_class)

    def input_parity(self, index: int, strand_class: StrandClass) -> Optional[ParityId]:
        """The parity ``p_{h,index}`` consumed when entangling ``index``.

        Returns ``None`` when the strand starts at ``index`` (virtual zero input).
        """
        h = input_index(index, strand_class, self._params)
        if h < 1:
            return None
        return ParityId(h, strand_class)

    def edge_endpoints(self, parity: ParityId) -> Tuple[int, int]:
        """Return ``(i, j)`` for the edge ``p_{i,j}`` named by ``parity``."""
        j = output_index(parity.index, parity.strand_class, self._params)
        return parity.index, j

    def parity_label(self, parity: ParityId) -> str:
        i, j = self.edge_endpoints(parity)
        return f"p{i},{j}"

    def output_parities(self, index: int) -> List[ParityId]:
        """All alpha parities created by node ``index``."""
        return [ParityId(index, cls) for cls in self._params.strand_classes]

    def input_parities(self, index: int) -> List[Optional[ParityId]]:
        """Input parities of node ``index``, one per class (``None`` at strand starts)."""
        return [self.input_parity(index, cls) for cls in self._params.strand_classes]

    def incident_parities(self, index: int) -> List[ParityId]:
        """Every existing parity adjacent to node ``index`` in the lattice graph."""
        incident: List[ParityId] = []
        for strand_class in self._params.strand_classes:
            input_parity = self.input_parity(index, strand_class)
            if input_parity is not None:
                incident.append(input_parity)
            incident.append(self.output_parity(index, strand_class))
        return incident

    def one_hop_neighbours(self, index: int) -> List[int]:
        """Data nodes at one hop of ``index`` along any strand (paper, Fig. 4)."""
        self._check_node(index)
        neighbours: List[int] = []
        for strand_class in self._params.strand_classes:
            h = input_index(index, strand_class, self._params)
            j = output_index(index, strand_class, self._params)
            if h >= 1:
                neighbours.append(h)
            if j <= self._size:
                neighbours.append(j)
        return sorted(set(neighbours))

    # ------------------------------------------------------------------
    # Repair structure
    # ------------------------------------------------------------------
    def data_repair_options(self, index: int) -> List[DataRepairOption]:
        """The alpha ways to rebuild ``d_index`` (one pp-tuple per strand).

        The returned list is memoised -- callers must not mutate it.
        """
        cached = self._data_options_cache.get(index)
        if cached is not None:
            return cached
        self._check_node(index)
        options: List[DataRepairOption] = []
        for strand_class in self._params.strand_classes:
            options.append(
                DataRepairOption(
                    strand_class=strand_class,
                    input_parity=self.input_parity(index, strand_class),
                    output_parity=self.output_parity(index, strand_class),
                )
            )
        self._data_options_cache[index] = options
        return options

    def parity_repair_options(self, parity: ParityId) -> List[ParityRepairOption]:
        """The (up to) two ways to rebuild a parity block (dp-tuples).

        ``p_{i,j} = d_i XOR p_{h,i}`` (left option, always defined -- the input
        may be the virtual zero block) and ``p_{i,j} = d_j XOR p_{j,k}`` (right
        option, defined only once node ``j`` has been entangled).

        The returned list is memoised -- callers must not mutate it.
        """
        cached = self._parity_options_cache.get(parity)
        if cached is not None:
            return cached
        if not self.has_block(parity):
            raise LatticeBoundsError(f"parity {parity!r} is not part of the lattice")
        i = parity.index
        strand_class = parity.strand_class
        options = [
            ParityRepairOption(
                data=DataId(i), parity=self.input_parity(i, strand_class)
            )
        ]
        j = output_index(i, strand_class, self._params)
        if j <= self._size:
            options.append(
                ParityRepairOption(
                    data=DataId(j), parity=self.output_parity(j, strand_class)
                )
            )
        self._parity_options_cache[parity] = options
        return options

    def repair_dependencies(self, block_id: BlockId) -> Sequence:
        """Uniform access to the repair options of any block."""
        if is_data(block_id):
            return self.data_repair_options(block_id.index)
        return self.parity_repair_options(block_id)

    # ------------------------------------------------------------------
    # Strand segments (used by analysis and long-path reads)
    # ------------------------------------------------------------------
    def strand_segment(
        self, start: int, strand_class: StrandClass, hops: int
    ) -> List[int]:
        """Walk ``hops`` hops forward from ``start`` along ``strand_class``.

        The walk is clipped at the lattice boundary.
        """
        self._check_node(start)
        nodes = [start]
        current = start
        for _ in range(hops):
            current = output_index(current, strand_class, self._params)
            if current > self._size:
                break
            nodes.append(current)
        return nodes

    def describe(self) -> str:
        """One-line human readable summary of the lattice."""
        return (
            f"{self._params.spec()} lattice: {self._size} data blocks, "
            f"{self.parity_count} parities, {self._params.strand_count} strands, "
            f"{self.columns} columns"
        )
