"""Dynamic fault tolerance: changing code parameters without re-encoding.

One of the distinguishing properties of alpha entanglement codes is that the
parameters can evolve over the lifetime of an archive (paper, Sec. I and
III-B):

* **raising alpha** adds strand classes.  The existing parities stay valid --
  the upgrade only computes the parities of the new classes by re-walking the
  stored data blocks, so no stored block is rewritten;
* **changing s and/or p** re-wires the helical geometry.  Existing parities
  remain valid for the region of the lattice encoded under the old setting;
  new data is entangled under the new setting.  The library models this with
  *parameter epochs*: a position-indexed history of settings.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Tuple

from repro.core.blocks import Block, DataId, ParityId
from repro.core.parameters import AEParameters, StrandClass
from repro.core.strands import StrandHeadRegistry, strand_of
from repro.core.xor import Payload, as_payload, xor_payloads, zero_payload
from repro.exceptions import InvalidParametersError, UnknownBlockError

#: Fetches the payload of a stored data block during an upgrade.
DataFetcher = Callable[[DataId], Optional[Payload]]


@dataclass(frozen=True)
class ParameterEpoch:
    """A contiguous region of the lattice encoded with one parameter setting."""

    first_index: int
    params: AEParameters

    def contains(self, index: int) -> bool:
        return index >= self.first_index


@dataclass
class EpochHistory:
    """Position-indexed history of parameter settings for one archive."""

    epochs: List[ParameterEpoch] = field(default_factory=list)

    @classmethod
    def starting_with(cls, params: AEParameters) -> "EpochHistory":
        return cls([ParameterEpoch(1, params)])

    def params_at(self, index: int) -> AEParameters:
        """The parameters in force at lattice position ``index``."""
        if not self.epochs:
            raise InvalidParametersError("epoch history is empty")
        starts = [epoch.first_index for epoch in self.epochs]
        slot = bisect_right(starts, index) - 1
        if slot < 0:
            raise InvalidParametersError(
                f"no parameter epoch covers position {index}"
            )
        return self.epochs[slot].params

    def change(self, first_index: int, params: AEParameters) -> None:
        """Switch to ``params`` starting at lattice position ``first_index``."""
        if self.epochs and first_index <= self.epochs[-1].first_index:
            raise InvalidParametersError(
                "parameter changes must use strictly increasing start positions"
            )
        self.epochs.append(ParameterEpoch(first_index, params))

    def __iter__(self) -> Iterator[ParameterEpoch]:
        return iter(self.epochs)


@dataclass
class UpgradePlan:
    """Description of an alpha upgrade: which parities must be created."""

    old_params: AEParameters
    new_params: AEParameters
    lattice_size: int
    new_classes: Tuple[StrandClass, ...]

    @property
    def new_parity_count(self) -> int:
        return self.lattice_size * len(self.new_classes)

    @property
    def additional_overhead(self) -> float:
        return float(self.new_params.alpha - self.old_params.alpha)

    def summary(self) -> str:
        classes = ", ".join(cls.value for cls in self.new_classes)
        return (
            f"upgrade {self.old_params.spec()} -> {self.new_params.spec()}: "
            f"compute {self.new_parity_count} new parities (classes: {classes}); "
            f"existing blocks are untouched"
        )


def plan_alpha_upgrade(
    old_params: AEParameters, new_alpha: int, lattice_size: int
) -> UpgradePlan:
    """Plan the parities needed to raise ``alpha`` for an existing archive."""
    if new_alpha <= old_params.alpha:
        raise InvalidParametersError(
            f"new alpha {new_alpha} must exceed the current alpha {old_params.alpha}"
        )
    new_params = old_params.with_alpha(new_alpha)
    new_classes = tuple(
        cls for cls in new_params.strand_classes if cls not in old_params.strand_classes
    )
    return UpgradePlan(
        old_params=old_params,
        new_params=new_params,
        lattice_size=lattice_size,
        new_classes=new_classes,
    )


class AlphaUpgrader:
    """Computes the parities of newly added strand classes without re-encoding.

    The upgrader streams over the stored data blocks in lattice order and
    maintains strand heads only for the *new* classes; existing parities are
    neither read nor modified.
    """

    def __init__(self, plan: UpgradePlan, block_size: int) -> None:
        self._plan = plan
        self._block_size = block_size
        self._heads = StrandHeadRegistry(plan.new_params)

    @property
    def plan(self) -> UpgradePlan:
        return self._plan

    def run(self, fetch: DataFetcher) -> Iterator[Block]:
        """Yield the new parity blocks in creation order.

        ``fetch`` must return the payload of every data block of the archive;
        a missing data block aborts the upgrade (it should be repaired first
        with the existing parities).
        """
        new_params = self._plan.new_params
        for index in range(1, self._plan.lattice_size + 1):
            payload = fetch(DataId(index))
            if payload is None:
                raise UnknownBlockError(
                    f"data block d{index} unavailable; repair it before upgrading"
                )
            data_payload = as_payload(payload, self._block_size)
            for strand_class in self._plan.new_classes:
                strand = strand_of(index, strand_class, new_params)
                head = self._heads.head_payload(strand)
                if head is None:
                    head = zero_payload(self._block_size)
                parity_payload = xor_payloads(data_payload, head)
                self._heads.update(strand, index, parity_payload)
                yield Block(ParityId(index, strand_class), parity_payload)


def upgrade_alpha(
    old_params: AEParameters,
    new_alpha: int,
    lattice_size: int,
    fetch: DataFetcher,
    block_size: int,
) -> List[Block]:
    """Convenience wrapper: plan and execute an alpha upgrade, returning the
    new parity blocks."""
    plan = plan_alpha_upgrade(old_params, new_alpha, lattice_size)
    upgrader = AlphaUpgrader(plan, block_size)
    return list(upgrader.run(fetch))
