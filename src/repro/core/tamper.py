"""Anti-tampering analysis (paper, Sec. III-B, "Anti-tampering Property").

Entanglement makes silent data modification expensive: a tampered data block
no longer matches the parities derived from it, so an attacker who wants to go
undetected must recompute *every* parity downstream of the block on each of
the ``alpha`` strands it participates in, all the way to the strand
extremities.  This module quantifies that effort.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.blocks import ParityId
from repro.core.lattice import HelicalLattice
from repro.core.parameters import AEParameters, StrandClass
from repro.core.strands import walk_forward
from repro.exceptions import LatticeBoundsError


@dataclass(frozen=True)
class TamperCost:
    """Work required to tamper with one data block without detection."""

    index: int
    lattice_size: int
    parities_per_strand: Dict[StrandClass, int]

    @property
    def total_parities(self) -> int:
        """Parity blocks that must be recomputed and replaced."""
        return sum(self.parities_per_strand.values())

    @property
    def total_blocks_touched(self) -> int:
        """Blocks rewritten by the attacker: the data block plus the parities."""
        return 1 + self.total_parities

    def summary(self) -> str:
        per_strand = ", ".join(
            f"{strand_class.value}:{count}"
            for strand_class, count in self.parities_per_strand.items()
        )
        return (
            f"tampering d{self.index} in a lattice of {self.lattice_size} blocks "
            f"requires rewriting {self.total_parities} parities ({per_strand})"
        )


def tampered_parities(
    lattice: HelicalLattice, index: int, strand_class: StrandClass
) -> List[ParityId]:
    """Parities downstream of ``d_index`` on one strand (inclusive of its output).

    These are exactly the parities an attacker must recompute on that strand:
    the output parity of ``index`` and the output parity of every later node of
    the strand up to the lattice boundary.
    """
    if not 1 <= index <= lattice.size:
        raise LatticeBoundsError(
            f"node {index} outside the encoded lattice (size {lattice.size})"
        )
    parities: List[ParityId] = []
    for node in walk_forward(index, strand_class, lattice.params, limit=lattice.size):
        parities.append(ParityId(node, strand_class))
    return parities


def tamper_cost(lattice: HelicalLattice, index: int) -> TamperCost:
    """Compute the anti-tampering cost of data block ``index``.

    Example from the paper: to tamper ``d26`` in AE(3,5,5) the attacker must
    recompute ``p26,31``, ``p31,36`` and every later parity of strand H1, and
    do the same along RH1 and LH2.
    """
    per_strand: Dict[StrandClass, int] = {}
    for strand_class in lattice.params.strand_classes:
        per_strand[strand_class] = len(tampered_parities(lattice, index, strand_class))
    return TamperCost(
        index=index, lattice_size=lattice.size, parities_per_strand=per_strand
    )


def average_tamper_cost(params: AEParameters, lattice_size: int, samples: int = 50) -> float:
    """Average number of parities to rewrite, sampled across lattice positions.

    The cost decreases towards the end of the lattice (fewer downstream
    parities); the average over uniformly spread positions is roughly
    ``alpha * lattice_size / (2 * s)`` for the horizontal component plus the
    helical contributions.
    """
    if lattice_size < 1:
        return 0.0
    lattice = HelicalLattice(params, lattice_size)
    step = max(lattice_size // samples, 1)
    costs = [
        tamper_cost(lattice, index).total_parities
        for index in range(1, lattice_size + 1, step)
    ]
    return sum(costs) / len(costs)


def detection_probability(params: AEParameters, audited_fraction: float) -> float:
    """Probability that a naive tamper (no parity rewrite) is detected.

    If the system audits a fraction ``audited_fraction`` of the parities, a
    modification of one data block is detected unless *none* of its ``alpha``
    downstream strands is audited near the block.  This is a coarse model used
    by the examples to illustrate the integrity benefit of larger ``alpha``.
    """
    if not 0.0 <= audited_fraction <= 1.0:
        raise LatticeBoundsError("audited_fraction must be within [0, 1]")
    miss = (1.0 - audited_fraction) ** params.alpha
    return 1.0 - miss
