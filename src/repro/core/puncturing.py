"""Code puncturing: trading fault tolerance for storage overhead.

The storage overhead of an AE code grows in steps of 100% with ``alpha``.  To
obtain intermediate code rates the paper proposes *puncturing*: after
encoding, some parities are simply not stored (paper, Sec. III-B, "Reducing
Storage Overhead").  Punctured parities behave exactly like missing blocks:
the decoder can often regenerate them on demand, but the effective fault
tolerance decreases.

This module provides puncturing policies (which parities to drop) and helpers
to compute the resulting storage overhead.  The policies are deterministic
functions of the block position so that readers and writers agree on the
punctured set without extra metadata.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Sequence

from repro.core.blocks import ParityId
from repro.core.parameters import AEParameters, StrandClass
from repro.exceptions import InvalidParametersError

#: A puncturing policy decides whether a given parity is stored.
PuncturingPolicy = Callable[[ParityId], bool]


@dataclass(frozen=True)
class PuncturedCode:
    """An AE code together with a puncturing policy."""

    params: AEParameters
    policy: PuncturingPolicy
    description: str = "custom"

    def is_punctured(self, parity: ParityId) -> bool:
        """True when ``parity`` is dropped (not stored)."""
        return self.policy(parity)

    def stored_parities(self, parities: Iterable[ParityId]) -> Iterator[ParityId]:
        for parity in parities:
            if not self.is_punctured(parity):
                yield parity

    def punctured_parities(self, parities: Iterable[ParityId]) -> Iterator[ParityId]:
        for parity in parities:
            if self.is_punctured(parity):
                yield parity

    def effective_overhead(self, sample_size: int = 1000) -> float:
        """Storage overhead after puncturing, estimated over ``sample_size`` nodes.

        The overhead of the unpunctured code is ``alpha``; puncturing reduces
        it proportionally to the fraction of dropped parities.
        """
        total = 0
        dropped = 0
        for index in range(1, sample_size + 1):
            for strand_class in self.params.strand_classes:
                total += 1
                if self.is_punctured(ParityId(index, strand_class)):
                    dropped += 1
        if total == 0:
            return float(self.params.alpha)
        stored_fraction = 1.0 - dropped / total
        return float(self.params.alpha) * stored_fraction


def no_puncturing(params: AEParameters) -> PuncturedCode:
    """The identity policy: every parity is stored."""
    return PuncturedCode(params, lambda parity: False, description="none")


def puncture_strand_class(
    params: AEParameters, strand_class: StrandClass
) -> PuncturedCode:
    """Drop every parity of one strand class (e.g. all horizontal parities).

    This converts an AE(alpha, s, p) code into a stored layout with overhead
    ``alpha - 1`` while keeping the lattice wiring of the original code.
    """
    if strand_class not in params.strand_classes:
        raise InvalidParametersError(
            f"{params.spec()} does not use strand class {strand_class}"
        )
    return PuncturedCode(
        params,
        lambda parity: parity.strand_class is strand_class,
        description=f"drop-{strand_class.value}",
    )


def puncture_periodic(
    params: AEParameters, period: int, offset: int = 0
) -> PuncturedCode:
    """Drop the parities of every ``period``-th data block (all classes).

    ``period == 4`` stores 3 out of every 4 nodes' parities, reducing the
    overhead to ``0.75 * alpha``.
    """
    if period < 2:
        raise InvalidParametersError("puncturing period must be >= 2")
    return PuncturedCode(
        params,
        lambda parity: (parity.index - offset) % period == 0,
        description=f"periodic-{period}",
    )


def puncture_rate(params: AEParameters, keep_fraction: float) -> PuncturedCode:
    """Drop parities pseudo-randomly (but deterministically) to approximate a rate.

    ``keep_fraction`` is the fraction of parities that remain stored.  The
    decision uses a small multiplicative hash of the parity identity so that it
    is stable across processes without shared state.
    """
    if not 0.0 < keep_fraction <= 1.0:
        raise InvalidParametersError("keep_fraction must be in (0, 1]")
    threshold = int(keep_fraction * 0xFFFFFFFF)
    class_salt = {cls: salt for salt, cls in enumerate(params.strand_classes, start=1)}

    def policy(parity: ParityId) -> bool:
        mixed = (parity.index * 2654435761 + class_salt[parity.strand_class] * 40503) & 0xFFFFFFFF
        mixed ^= mixed >> 16
        mixed = (mixed * 2246822519) & 0xFFFFFFFF
        mixed ^= mixed >> 13
        return mixed > threshold

    return PuncturedCode(params, policy, description=f"rate-{keep_fraction:.2f}")


def parity_survivors(
    code: PuncturedCode, node_indexes: Sequence[int]
) -> List[ParityId]:
    """The stored parities for the given data nodes under ``code``'s policy."""
    parities = [
        ParityId(index, strand_class)
        for index in node_indexes
        for strand_class in code.params.strand_classes
    ]
    return list(code.stored_parities(parities))
