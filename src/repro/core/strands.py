"""Strand identities and strand walking.

A *strand* is a chain of interleaved data and parity blocks (paper, Sec. III):
``..., d_h, p_{h,i}, d_i, p_{i,j}, d_j, ...``.  The lattice of an
AE(alpha, s, p) code contains ``s`` horizontal strands and, for every helical
class, ``p`` strands, for a total of ``s + (alpha - 1) * p``.

This module provides:

* :class:`StrandId` -- (class, label) pair naming one strand;
* walking primitives that enumerate the data nodes of a strand in either
  direction, used by the decoder (long recovery paths), the anti-tampering
  analysis and the minimal-erasure search;
* :class:`StrandHeadRegistry` -- the encoder's working memory: the last parity
  of each strand, which is all the state needed to entangle new blocks
  (paper, Sec. IV-A: the broker's memory footprint is linear in the number of
  distinct strands).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.parameters import AEParameters, StrandClass
from repro.core.position import strand_label
from repro.core.rules import input_index, output_index
from repro.core.xor import Payload
from repro.exceptions import LatticeBoundsError


@dataclass(frozen=True, order=True)
class StrandId:
    """Identity of a single strand: its class and 0-based label."""

    strand_class: StrandClass
    label: int

    def name(self) -> str:
        prefix = {
            StrandClass.HORIZONTAL: "H",
            StrandClass.RIGHT_HANDED: "RH",
            StrandClass.LEFT_HANDED: "LH",
        }[self.strand_class]
        return f"{prefix}{self.label + 1}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name()


def strand_of(index: int, strand_class: StrandClass, params: AEParameters) -> StrandId:
    """The strand of ``strand_class`` that passes through node ``index``."""
    return StrandId(strand_class, strand_label(index, strand_class, params))


def strands_of(index: int, params: AEParameters) -> List[StrandId]:
    """All ``alpha`` strands through node ``index`` (one per strand class)."""
    return [strand_of(index, cls, params) for cls in params.strand_classes]


def all_strands(params: AEParameters) -> List[StrandId]:
    """Every strand of the lattice, ``s + (alpha - 1) * p`` in total."""
    strands: List[StrandId] = [
        StrandId(StrandClass.HORIZONTAL, label) for label in range(params.s)
    ]
    for strand_class in params.strand_classes[1:]:
        # For alpha > 3 a helical class may repeat; only list each class once.
        if any(existing.strand_class is strand_class for existing in strands):
            continue
        strands.extend(StrandId(strand_class, label) for label in range(params.p))
    return strands


def walk_forward(
    start: int, strand_class: StrandClass, params: AEParameters, limit: Optional[int] = None
) -> Iterator[int]:
    """Yield data node indexes along a strand, starting at ``start`` (inclusive).

    ``limit`` bounds the largest index returned (used for finite lattices);
    without a limit the iterator is infinite and must be sliced by the caller.
    """
    if start < 1:
        raise LatticeBoundsError(f"start index must be >= 1, got {start}")
    current = start
    while limit is None or current <= limit:
        yield current
        current = output_index(current, strand_class, params)


def walk_backward(
    start: int, strand_class: StrandClass, params: AEParameters
) -> Iterator[int]:
    """Yield data node indexes along a strand towards its beginning."""
    if start < 1:
        raise LatticeBoundsError(f"start index must be >= 1, got {start}")
    current = start
    while current >= 1:
        yield current
        current = input_index(current, strand_class, params)


def nodes_between(
    start: int, end: int, strand_class: StrandClass, params: AEParameters
) -> List[int]:
    """Data nodes on the strand from ``start`` to ``end`` inclusive.

    ``end`` must be reachable from ``start`` walking forward; a
    :class:`LatticeBoundsError` is raised otherwise (the two nodes are not on
    the same strand, or ``end`` precedes ``start``).
    """
    if end < start:
        raise LatticeBoundsError("end precedes start on a forward strand walk")
    nodes: List[int] = []
    for node in walk_forward(start, strand_class, params):
        nodes.append(node)
        if node == end:
            return nodes
        if node > end:
            break
    raise LatticeBoundsError(
        f"nodes {start} and {end} are not connected on a {strand_class.value} strand"
    )


def edges_between(
    start: int, end: int, strand_class: StrandClass, params: AEParameters
) -> List[int]:
    """Creator indexes of the parities on the strand segment ``start .. end``.

    The returned list contains the creator of every edge between consecutive
    nodes of the segment, i.e. ``len(result) == number of hops``.
    """
    nodes = nodes_between(start, end, strand_class, params)
    return nodes[:-1]


def distance_on_strand(
    start: int, end: int, strand_class: StrandClass, params: AEParameters
) -> Optional[int]:
    """Number of hops from ``start`` to ``end`` along the strand, or ``None``.

    Returns ``None`` when ``end`` is not reachable walking forward from
    ``start`` (different strand, or behind ``start``).
    """
    if end < start:
        return None
    hops = 0
    for node in walk_forward(start, strand_class, params):
        if node == end:
            return hops
        if node > end:
            return None
        hops += 1
    return None  # pragma: no cover - unreachable (walk is unbounded)


def share_strand(
    first: int, second: int, strand_class: StrandClass, params: AEParameters
) -> bool:
    """True when the two nodes lie on the same strand of ``strand_class``."""
    return strand_label(first, strand_class, params) == strand_label(
        second, strand_class, params
    )


class StrandHeadRegistry:
    """Tracks the parity at the head of every strand during encoding.

    The encoder only ever needs the most recent parity of each strand (the
    block that will be XORed with the next data block of that strand).  The
    registry therefore holds at most ``s + (alpha - 1) * p`` payloads -- the
    memory footprint quoted in the paper for the backup broker.
    """

    def __init__(self, params: AEParameters) -> None:
        self._params = params
        self._heads: Dict[StrandId, Tuple[int, Payload]] = {}

    @property
    def params(self) -> AEParameters:
        return self._params

    def __len__(self) -> int:
        return len(self._heads)

    def head(self, strand: StrandId) -> Optional[Tuple[int, Payload]]:
        """Return ``(creator index, payload)`` of the strand head, if any."""
        return self._heads.get(strand)

    def head_payload(self, strand: StrandId) -> Optional[Payload]:
        entry = self._heads.get(strand)
        return entry[1] if entry is not None else None

    def update(self, strand: StrandId, creator: int, payload: Payload) -> None:
        """Record that ``creator`` produced the new head parity of ``strand``."""
        self._heads[strand] = (creator, payload)

    def forget(self, strand: StrandId) -> None:
        self._heads.pop(strand, None)

    def snapshot(self) -> Dict[StrandId, int]:
        """Creator index of each known strand head (used for crash recovery)."""
        return {strand: entry[0] for strand, entry in self._heads.items()}

    def clear(self) -> None:
        self._heads.clear()
