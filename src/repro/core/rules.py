"""Entanglement rules: Tables I and II of the paper.

Every data block ``d_i`` is entangled once per strand class.  On a given
class the entanglement XORs ``d_i`` with an *input* parity ``p_{h,i}`` (the
parity at the head of the strand) and produces an *output* parity ``p_{i,j}``
which becomes the new strand head.  Tables I and II define the indexes ``h``
and ``j`` as a function of the node category (top / central / bottom):

========  ==================  =====================  =====================
category  horizontal           right-handed           left-handed
========  ==================  =====================  =====================
INPUT ``h`` (Table I)
top       ``i - s``            ``i - s*p + (s^2-1)``  ``i - (s-1)``
central   ``i - s``            ``i - (s+1)``          ``i - (s-1)``
bottom    ``i - s``            ``i - (s+1)``          ``i - s*p + (s-1)^2``
OUTPUT ``j`` (Table II)
top       ``i + s``            ``i + s + 1``          ``i + s*p - (s-1)^2``
central   ``i + s``            ``i + s + 1``          ``i + s - 1``
bottom    ``i + s``            ``i + s*p - (s^2-1)``  ``i + s - 1``
========  ==================  =====================  =====================

Worked example from the paper (AE(3,5,5), top node ``d26``): the node is
tangled with ``p21,26`` (H), ``p25,26`` (RH), ``p22,26`` (LH) and creates
``p26,31`` (H), ``p26,32`` (RH), ``p26,35`` (LH).

Single-row lattices (``s == 1``) are degenerate: every node is both the top
and the bottom of its column.  We adopt the convention that helical strands
advance ``p`` positions per step (``h = i - p``, ``j = i + p``), which
reproduces the paper's minimal-erasure sizes for AE(3,1,4) (|ME(2)| = 8) and
the complex forms of Figure 7.

A returned input index ``h <= 0`` means the strand starts at node ``i``: the
input parity is a virtual all-zero block (the first parity of a strand equals
its first data block).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.parameters import AEParameters, NodeCategory, StrandClass
from repro.core.position import node_category
from repro.exceptions import InvalidParametersError, LatticeBoundsError


def input_index(index: int, strand_class: StrandClass, params: AEParameters) -> int:
    """Index ``h`` such that ``d_index`` is tangled with ``p_{h,index}`` (Table I).

    A non-positive return value indicates that the strand begins at ``index``
    and the input parity is a virtual zero block.
    """
    _check(index, strand_class, params)
    s, p = params.s, params.p
    if strand_class is StrandClass.HORIZONTAL:
        return index - s
    if s == 1:
        return index - p
    category = node_category(index, s)
    if strand_class is StrandClass.RIGHT_HANDED:
        if category is NodeCategory.TOP:
            return index - s * p + (s * s - 1)
        return index - (s + 1)
    # Left-handed strand.
    if category is NodeCategory.BOTTOM:
        return index - s * p + (s - 1) ** 2
    return index - (s - 1)


def output_index(index: int, strand_class: StrandClass, params: AEParameters) -> int:
    """Index ``j`` such that the entanglement of ``d_index`` creates ``p_{index,j}``
    (Table II)."""
    _check(index, strand_class, params)
    s, p = params.s, params.p
    if strand_class is StrandClass.HORIZONTAL:
        return index + s
    if s == 1:
        return index + p
    category = node_category(index, s)
    if strand_class is StrandClass.RIGHT_HANDED:
        if category is NodeCategory.BOTTOM:
            return index + s * p - (s * s - 1)
        return index + s + 1
    # Left-handed strand.
    if category is NodeCategory.TOP:
        return index + s * p - (s - 1) ** 2
    return index + s - 1


def rule_table(params: AEParameters) -> Dict[str, Dict[str, str]]:
    """Render Tables I and II symbolically for the given parameters.

    Returns a nested mapping ``{"input"/"output": {"top"/"central"/"bottom":
    {class: offset}}}`` expressed as signed integer offsets relative to ``i``.
    Useful for documentation, debugging and the rules unit tests.
    """
    s, p = params.s, params.p
    base = 2 * s * max(p, 1)
    sample = {NodeCategory.TOP: base + 1}
    if s >= 3:
        sample[NodeCategory.CENTRAL] = base + 2
    if s >= 2:
        sample[NodeCategory.BOTTOM] = base + s
    table: Dict[str, Dict[str, str]] = {"input": {}, "output": {}}
    for category, probe in sample.items():
        row_in = {}
        row_out = {}
        for strand_class in params.strand_classes:
            row_in[strand_class.value] = input_index(probe, strand_class, params) - probe
            row_out[strand_class.value] = output_index(probe, strand_class, params) - probe
        table["input"][category.value] = row_in
        table["output"][category.value] = row_out
    return table


def strand_predecessor(index: int, strand_class: StrandClass, params: AEParameters) -> int:
    """Previous data node on the same strand (``<= 0`` if ``index`` is the first)."""
    return input_index(index, strand_class, params)


def strand_successor(index: int, strand_class: StrandClass, params: AEParameters) -> int:
    """Next data node on the same strand."""
    return output_index(index, strand_class, params)


def edge_endpoints(
    creator: int, strand_class: StrandClass, params: AEParameters
) -> Tuple[int, int]:
    """Endpoints ``(i, j)`` of the parity created by ``creator`` on ``strand_class``."""
    return creator, output_index(creator, strand_class, params)


def _check(index: int, strand_class: StrandClass, params: AEParameters) -> None:
    if index < 1:
        raise LatticeBoundsError(f"node index must be >= 1, got {index}")
    if strand_class not in params.strand_classes:
        raise InvalidParametersError(
            f"strand class {strand_class} is not used by {params.spec()}"
        )
    if strand_class is not StrandClass.HORIZONTAL and params.p == 0:
        raise InvalidParametersError(
            f"{params.spec()} has no helical strands (p == 0)"
        )
