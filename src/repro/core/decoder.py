"""The entanglement decoder: single-block repair and multi-round global repair.

Repair primitives (paper, Sec. III-B and IV-A):

* a missing **data block** ``d_i`` is rebuilt from a *pp-tuple*: the two
  adjacent parities of any of its ``alpha`` strands,
  ``d_i = p_{h,i} XOR p_{i,j}`` (at a strand start the input parity is the
  virtual zero block, so ``d_i = p_{i,j}``);
* a missing **parity block** ``p_{i,j}`` is rebuilt from a *dp-tuple*: an
  incident data block plus the adjacent parity on the same strand,
  ``p_{i,j} = d_i XOR p_{h,i}`` or ``p_{i,j} = d_j XOR p_{j,k}``.

When the blocks needed by a repair are themselves missing, the decoder can
recurse along the strand (the concentric paths of Fig. 2) up to a configurable
depth, or iterate global repair rounds: blocks repaired in one round become
available for the next (Sec. V-C4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.blocks import Block, BlockId, DataId, ParityId, is_data
from repro.core.lattice import HelicalLattice
from repro.core.xor import Payload, as_payload, xor_payloads, zero_payload
from repro.exceptions import RepairFailedError

#: A block source returns the payload of a block or ``None`` when unavailable.
BlockSource = Callable[[BlockId], Optional[Payload]]

DEFAULT_RECURSION_DEPTH = 6


class Decoder:
    """Repairs individual blocks against a :data:`BlockSource`."""

    def __init__(
        self,
        lattice: HelicalLattice,
        source: BlockSource,
        block_size: int,
        max_depth: int = DEFAULT_RECURSION_DEPTH,
    ) -> None:
        self._lattice = lattice
        self._source = source
        self._block_size = block_size
        self._max_depth = max_depth

    # ------------------------------------------------------------------
    # Fetch-or-repair entry points
    # ------------------------------------------------------------------
    def get(self, block_id: BlockId) -> Payload:
        """Return the payload of ``block_id``, repairing it if necessary."""
        payload = self._source(block_id)
        if payload is not None:
            return as_payload(payload, self._block_size)
        return self.repair(block_id)

    def repair(self, block_id: BlockId) -> Payload:
        """Rebuild a missing block, recursing along strands when needed."""
        payload = self._attempt(block_id, depth=0, visited=set())
        if payload is None:
            raise RepairFailedError(block_id, "no available recovery path")
        return payload

    def repair_data(self, index: int) -> Payload:
        return self.repair(DataId(index))

    def repair_parity(self, parity: ParityId) -> Payload:
        return self.repair(parity)

    # ------------------------------------------------------------------
    # Path enumeration (diagnostics, Fig. 2)
    # ------------------------------------------------------------------
    def recovery_paths(self, index: int) -> List[List[BlockId]]:
        """The alpha shortest candidate paths (pp-tuples) to read ``d_index``."""
        paths: List[List[BlockId]] = []
        for option in self._lattice.data_repair_options(index):
            paths.append(list(option.required_blocks()))
        return paths

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _fetch(self, block_id: BlockId) -> Optional[Payload]:
        payload = self._source(block_id)
        if payload is None:
            return None
        return as_payload(payload, self._block_size)

    def _attempt(
        self, block_id: BlockId, depth: int, visited: Set[BlockId]
    ) -> Optional[Payload]:
        if block_id in visited:
            return None
        if not self._lattice.has_block(block_id):
            return None
        visited = visited | {block_id}
        if is_data(block_id):
            return self._attempt_data(block_id, depth, visited)
        return self._attempt_parity(block_id, depth, visited)

    def _resolve(
        self, block_id: Optional[BlockId], depth: int, visited: Set[BlockId]
    ) -> Optional[Payload]:
        """Fetch a block, or repair it recursively when depth allows.

        ``None`` block identifiers represent the virtual zero parity at strand
        extremities, which is always available.
        """
        if block_id is None:
            return zero_payload(self._block_size)
        payload = self._fetch(block_id)
        if payload is not None:
            return payload
        if depth >= self._max_depth:
            return None
        return self._attempt(block_id, depth + 1, visited)

    def _attempt_data(
        self, data_id: DataId, depth: int, visited: Set[BlockId]
    ) -> Optional[Payload]:
        for option in self._lattice.data_repair_options(data_id.index):
            output_payload = self._resolve(option.output_parity, depth, visited)
            if output_payload is None:
                continue
            input_payload = self._resolve(option.input_parity, depth, visited)
            if input_payload is None:
                continue
            return xor_payloads(input_payload, output_payload)
        return None

    def _attempt_parity(
        self, parity: ParityId, depth: int, visited: Set[BlockId]
    ) -> Optional[Payload]:
        i = parity.index
        strand_class = parity.strand_class
        # Left option: p_{i,j} = d_i XOR p_{h,i}.
        left_data = self._resolve(DataId(i), depth, visited)
        if left_data is not None:
            left_parity = self._resolve(
                self._lattice.input_parity(i, strand_class), depth, visited
            )
            if left_parity is not None:
                return xor_payloads(left_data, left_parity)
        # Right option: p_{i,j} = d_j XOR p_{j,k} (only if node j exists).
        _, j = self._lattice.edge_endpoints(parity)
        if j <= self._lattice.size:
            right_data = self._resolve(DataId(j), depth, visited)
            if right_data is not None:
                right_parity = self._resolve(
                    self._lattice.output_parity(j, strand_class), depth, visited
                )
                if right_parity is not None:
                    return xor_payloads(right_data, right_parity)
        return None


@dataclass
class RepairRound:
    """Blocks repaired during one round of the iterative global repair."""

    number: int
    repaired: List[BlockId] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.repaired)


@dataclass
class RepairReport:
    """Outcome of an iterative repair run."""

    rounds: List[RepairRound] = field(default_factory=list)
    unrecovered: List[BlockId] = field(default_factory=list)

    @property
    def round_count(self) -> int:
        return len(self.rounds)

    @property
    def repaired_count(self) -> int:
        return sum(round_.count for round_ in self.rounds)

    @property
    def repaired_in_first_round(self) -> int:
        return self.rounds[0].count if self.rounds else 0

    @property
    def unrecovered_data(self) -> List[BlockId]:
        return [block_id for block_id in self.unrecovered if is_data(block_id)]

    @property
    def unrecovered_parities(self) -> List[BlockId]:
        return [block_id for block_id in self.unrecovered if not is_data(block_id)]

    def summary(self) -> str:
        return (
            f"repaired {self.repaired_count} blocks in {self.round_count} rounds; "
            f"{len(self.unrecovered)} unrecovered "
            f"({len(self.unrecovered_data)} data, {len(self.unrecovered_parities)} parities)"
        )


class IterativeRepairer:
    """Round-based global repair over an in-memory payload map.

    Each round scans the still-missing blocks and repairs every block whose
    pp-/dp-tuple is available using only blocks present *before* the round
    started; repaired blocks become usable in the next round.  This matches
    the per-round accounting of Table VI and Fig. 13 of the paper.
    """

    def __init__(
        self,
        lattice: HelicalLattice,
        block_size: int,
        repair_parities: bool = True,
    ) -> None:
        self._lattice = lattice
        self._block_size = block_size
        self._repair_parities = repair_parities

    def repair_all(
        self,
        available: Dict[BlockId, Payload],
        missing: Iterable[BlockId],
        max_rounds: int = 1000,
    ) -> Tuple[RepairReport, Dict[BlockId, Payload]]:
        """Repair as many of ``missing`` blocks as possible.

        Returns the report and the updated payload map (a copy extended with
        the repaired payloads).
        """
        store: Dict[BlockId, Payload] = dict(available)
        pending: Set[BlockId] = {
            block_id for block_id in missing if self._lattice.has_block(block_id)
        }
        pending -= set(store)
        report = RepairReport()
        for round_number in range(1, max_rounds + 1):
            snapshot = store  # blocks available at the start of the round
            repaired_this_round: List[Tuple[BlockId, Payload]] = []
            decoder = Decoder(
                self._lattice,
                lambda block_id, _snapshot=snapshot: _snapshot.get(block_id),
                self._block_size,
                max_depth=0,
            )
            for block_id in sorted(pending, key=_block_sort_key):
                if not self._repair_parities and not is_data(block_id):
                    continue
                try:
                    payload = decoder.repair(block_id)
                except RepairFailedError:
                    continue
                repaired_this_round.append((block_id, payload))
            if not repaired_this_round:
                break
            round_report = RepairRound(number=round_number)
            new_store = dict(store)
            for block_id, payload in repaired_this_round:
                new_store[block_id] = payload
                pending.discard(block_id)
                round_report.repaired.append(block_id)
            store = new_store
            report.rounds.append(round_report)
            if not pending:
                break
        report.unrecovered = sorted(pending, key=_block_sort_key)
        return report, store


def _block_sort_key(block_id: BlockId) -> Tuple[int, int, str]:
    if is_data(block_id):
        return (block_id.index, 0, "")
    return (block_id.index, 1, block_id.strand_class.value)
