"""XOR kernels used by the entanglement encoder and decoder.

Payloads are held as one-dimensional ``numpy.uint8`` arrays so that XOR of
large blocks runs at memory bandwidth.  Helper functions convert transparently
from :class:`bytes`/:class:`bytearray` and enforce equal block sizes, because
the entanglement function is only defined for blocks of identical size
(paper, Section III-B: "data and parity blocks with identical size").
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.exceptions import BlockSizeMismatchError

Payload = np.ndarray
PayloadLike = Union[bytes, bytearray, memoryview, np.ndarray]

#: A stack of equally sized payloads: a C-contiguous 2-D ``uint8`` array with
#: one block per row.  This is the unit of work of the batched ingest pipeline.
PayloadMatrix = np.ndarray

#: Anything :func:`as_payload_matrix` accepts as a batch of blocks: a byte
#: buffer (split into rows), a 2-D uint8 matrix, or a sequence of payloads.
PayloadBatch = Union[bytes, bytearray, memoryview, np.ndarray, Sequence[PayloadLike]]


def as_payload(data: PayloadLike, block_size: int = 0) -> Payload:
    """Convert ``data`` to a uint8 payload, optionally padding to ``block_size``.

    Padding uses zero bytes, which is safe for XOR-based codes: the pad is
    reproduced exactly on decode and can be stripped with the original length.
    """
    if isinstance(data, np.ndarray):
        payload = np.ascontiguousarray(data, dtype=np.uint8).ravel()
    else:
        payload = np.frombuffer(bytes(data), dtype=np.uint8).copy()
    if block_size:
        if payload.size > block_size:
            raise BlockSizeMismatchError(
                f"payload of {payload.size} bytes exceeds block size {block_size}"
            )
        if payload.size < block_size:
            padded = np.zeros(block_size, dtype=np.uint8)
            padded[: payload.size] = payload
            payload = padded
    return payload


def zero_payload(block_size: int) -> Payload:
    """The all-zero payload used as the virtual input at strand extremities."""
    return np.zeros(block_size, dtype=np.uint8)


def xor_payloads(left: PayloadLike, right: PayloadLike) -> Payload:
    """XOR two equally sized payloads."""
    a = as_payload(left)
    b = as_payload(right)
    if a.size != b.size:
        raise BlockSizeMismatchError(
            f"cannot XOR payloads of different sizes ({a.size} vs {b.size})"
        )
    return np.bitwise_xor(a, b)


def xor_many(payloads: Iterable[PayloadLike]) -> Payload:
    """XOR an arbitrary number of equally sized payloads (at least one)."""
    iterator = iter(payloads)
    try:
        result = as_payload(next(iterator)).copy()
    except StopIteration:
        raise BlockSizeMismatchError("xor_many requires at least one payload") from None
    for item in iterator:
        other = as_payload(item)
        if other.size != result.size:
            raise BlockSizeMismatchError(
                f"cannot XOR payloads of different sizes ({result.size} vs {other.size})"
            )
        np.bitwise_xor(result, other, out=result)
    return result


def as_payload_matrix(data: PayloadBatch, block_size: int) -> PayloadMatrix:
    """Convert ``data`` to a ``(n, block_size)`` C-contiguous uint8 matrix.

    Accepted inputs:

    * a byte string / buffer -- split into rows of ``block_size`` bytes, the
      last row zero-padded.  When the length is an exact multiple of
      ``block_size`` the conversion is zero-copy (a reshaped view over the
      buffer);
    * a 2-D ``uint8`` array -- validated (row width must equal ``block_size``)
      and made contiguous, zero-copy when it already is;
    * a sequence of payloads -- each converted with :func:`as_payload` and
      stacked.

    An empty input yields a ``(0, block_size)`` matrix.
    """
    if block_size <= 0:
        raise BlockSizeMismatchError("block_size must be positive")
    if isinstance(data, np.ndarray) and data.ndim == 2:
        if data.shape[1] != block_size and data.size:
            raise BlockSizeMismatchError(
                f"matrix rows of {data.shape[1]} bytes do not fit block size {block_size}"
            )
        matrix = np.ascontiguousarray(data, dtype=np.uint8)
        return matrix.reshape(matrix.shape[0], block_size)
    if isinstance(data, (bytes, bytearray, memoryview)) or (
        isinstance(data, np.ndarray) and data.ndim <= 1
    ):
        flat = (
            np.ascontiguousarray(data, dtype=np.uint8).ravel()
            if isinstance(data, np.ndarray)
            else np.frombuffer(data, dtype=np.uint8)
        )
        if flat.size == 0:
            return np.zeros((0, block_size), dtype=np.uint8)
        rows = -(-flat.size // block_size)
        if flat.size == rows * block_size:
            return flat.reshape(rows, block_size)
        matrix = np.zeros((rows, block_size), dtype=np.uint8)
        matrix.reshape(-1)[: flat.size] = flat
        return matrix
    payloads = [as_payload(item, block_size) for item in data]
    if not payloads:
        return np.zeros((0, block_size), dtype=np.uint8)
    return np.stack(payloads)


def gather_payload_matrix(
    payloads: Sequence[Optional[PayloadLike]], block_size: int
) -> PayloadMatrix:
    """Stack payloads into a fresh writable ``(n, block_size)`` matrix.

    ``None`` entries become zero rows (the virtual zero parity at strand
    extremities), so a repair plan's input column can be gathered in one call.
    Unlike :func:`as_payload_matrix` the result is always a new allocation:
    the rows are safe XOR destinations even when the sources are read-only
    zero-copy views handed out by an mmap-backed storage backend.
    """
    if block_size <= 0:
        raise BlockSizeMismatchError("block_size must be positive")
    rows: List[Payload] = []
    zero_row: Optional[Payload] = None
    for item in payloads:
        if item is None:
            if zero_row is None:
                zero_row = np.zeros(block_size, dtype=np.uint8)
            rows.append(zero_row)
            continue
        payload = (
            item
            if isinstance(item, np.ndarray) and item.dtype == np.uint8 and item.ndim == 1
            else as_payload(item)
        )
        if payload.size != block_size:
            raise BlockSizeMismatchError(
                f"payload of {payload.size} bytes does not fit block size {block_size}"
            )
        rows.append(payload)
    if not rows:
        return np.zeros((0, block_size), dtype=np.uint8)
    # One C-level stack instead of a Python row-assignment loop; the result
    # is a fresh allocation, so the rows are safe XOR destinations even when
    # the sources are read-only zero-copy views from an mmap-backed backend.
    return np.stack(rows)


def xor_into(dst: Payload, src: PayloadLike) -> Payload:
    """XOR ``src`` into ``dst`` in place (no allocation) and return ``dst``.

    ``dst`` may be 1-D or 2-D; ``src`` must match its trailing dimension so it
    broadcasts row-wise (XORing one payload into every row of a matrix).
    """
    other = src if isinstance(src, np.ndarray) else as_payload(src)
    if dst.shape[-1] != other.shape[-1]:
        raise BlockSizeMismatchError(
            f"cannot XOR payloads of different sizes ({dst.shape[-1]} vs {other.shape[-1]})"
        )
    np.bitwise_xor(dst, other, out=dst)
    return dst


def xor_rows(matrix: PayloadMatrix, row: PayloadLike, out: Optional[PayloadMatrix] = None) -> PayloadMatrix:
    """XOR one payload into every row of ``matrix`` (vectorised broadcast)."""
    vector = as_payload(row)
    if matrix.shape[-1] != vector.size:
        raise BlockSizeMismatchError(
            f"cannot XOR a {vector.size}-byte payload into rows of {matrix.shape[-1]} bytes"
        )
    return np.bitwise_xor(matrix, vector, out=out)


def xor_accumulate(matrix: PayloadMatrix, initial: Optional[PayloadLike] = None) -> PayloadMatrix:
    """Running XOR down the rows of ``matrix``, in place.

    Row ``k`` of the result is ``initial ^ row_0 ^ ... ^ row_k`` -- exactly the
    parity chain of one strand: seeding ``initial`` with the current strand
    head turns a stack of data blocks into the stack of successive strand
    parities.

    The scan is a row-by-row loop of whole-block XORs rather than
    ``np.bitwise_xor.accumulate``: the ufunc accumulate walks axis 0 with a
    4096-byte stride between elements, which is an order of magnitude slower
    than one contiguous SIMD XOR per row at realistic block sizes.
    """
    if matrix.ndim != 2:
        raise BlockSizeMismatchError("xor_accumulate expects a 2-D payload matrix")
    if matrix.shape[0] == 0:
        return matrix
    if initial is not None:
        xor_into(matrix[0], initial)
    bitwise_xor = np.bitwise_xor
    for row in range(1, matrix.shape[0]):
        bitwise_xor(matrix[row], matrix[row - 1], out=matrix[row])
    return matrix


def payload_to_bytes(payload: PayloadLike, length: int | None = None) -> bytes:
    """Convert a payload back to :class:`bytes`, optionally trimming padding."""
    raw = as_payload(payload).tobytes()
    if length is not None:
        return raw[:length]
    return raw


def payloads_equal(left: PayloadLike, right: PayloadLike) -> bool:
    """True when two payloads hold identical bytes."""
    a = as_payload(left)
    b = as_payload(right)
    return a.size == b.size and bool(np.array_equal(a, b))
