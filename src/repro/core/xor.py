"""XOR kernels used by the entanglement encoder and decoder.

Payloads are held as one-dimensional ``numpy.uint8`` arrays so that XOR of
large blocks runs at memory bandwidth.  Helper functions convert transparently
from :class:`bytes`/:class:`bytearray` and enforce equal block sizes, because
the entanglement function is only defined for blocks of identical size
(paper, Section III-B: "data and parity blocks with identical size").
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

from repro.exceptions import BlockSizeMismatchError

Payload = np.ndarray
PayloadLike = Union[bytes, bytearray, memoryview, np.ndarray]


def as_payload(data: PayloadLike, block_size: int = 0) -> Payload:
    """Convert ``data`` to a uint8 payload, optionally padding to ``block_size``.

    Padding uses zero bytes, which is safe for XOR-based codes: the pad is
    reproduced exactly on decode and can be stripped with the original length.
    """
    if isinstance(data, np.ndarray):
        payload = np.ascontiguousarray(data, dtype=np.uint8).ravel()
    else:
        payload = np.frombuffer(bytes(data), dtype=np.uint8).copy()
    if block_size:
        if payload.size > block_size:
            raise BlockSizeMismatchError(
                f"payload of {payload.size} bytes exceeds block size {block_size}"
            )
        if payload.size < block_size:
            padded = np.zeros(block_size, dtype=np.uint8)
            padded[: payload.size] = payload
            payload = padded
    return payload


def zero_payload(block_size: int) -> Payload:
    """The all-zero payload used as the virtual input at strand extremities."""
    return np.zeros(block_size, dtype=np.uint8)


def xor_payloads(left: PayloadLike, right: PayloadLike) -> Payload:
    """XOR two equally sized payloads."""
    a = as_payload(left)
    b = as_payload(right)
    if a.size != b.size:
        raise BlockSizeMismatchError(
            f"cannot XOR payloads of different sizes ({a.size} vs {b.size})"
        )
    return np.bitwise_xor(a, b)


def xor_many(payloads: Iterable[PayloadLike]) -> Payload:
    """XOR an arbitrary number of equally sized payloads (at least one)."""
    iterator = iter(payloads)
    try:
        result = as_payload(next(iterator)).copy()
    except StopIteration:
        raise BlockSizeMismatchError("xor_many requires at least one payload") from None
    for item in iterator:
        other = as_payload(item)
        if other.size != result.size:
            raise BlockSizeMismatchError(
                f"cannot XOR payloads of different sizes ({result.size} vs {other.size})"
            )
        np.bitwise_xor(result, other, out=result)
    return result


def payload_to_bytes(payload: PayloadLike, length: int | None = None) -> bytes:
    """Convert a payload back to :class:`bytes`, optionally trimming padding."""
    raw = as_payload(payload).tobytes()
    if length is not None:
        return raw[:length]
    return raw


def payloads_equal(left: PayloadLike, right: PayloadLike) -> bool:
    """True when two payloads hold identical bytes."""
    a = as_payload(left)
    b = as_payload(right)
    return a.size == b.size and bool(np.array_equal(a, b))
