"""Core implementation of alpha entanglement codes AE(alpha, s, p).

This subpackage contains the paper's primary contribution: the helical
lattice model, the entanglement rules of Tables I and II, the streaming
encoder, the repair decoder, and the code extensions (sealed-bucket write
scheduling, puncturing, dynamic parameter upgrades and the anti-tampering
analysis).
"""

from repro.core.batch_repair import (
    RepairPlanStep,
    execute_plan,
    plan_inputs,
    plan_round,
)
from repro.core.blocks import (
    Block,
    BlockId,
    DataId,
    EncodedBlock,
    ParityId,
    is_data,
    is_parity,
    join_blocks,
    split_into_blocks,
)
from repro.core.buckets import WriteScheduler, WriteScheduleReport, compare_write_parallelism
from repro.core.decoder import (
    Decoder,
    IterativeRepairer,
    RepairReport,
    RepairRound,
)
from repro.core.dynamic import (
    AlphaUpgrader,
    DataFetcher,
    EpochHistory,
    ParameterEpoch,
    UpgradePlan,
    plan_alpha_upgrade,
    upgrade_alpha,
)
from repro.core.encoder import (
    BatchEntangler,
    EncodedBatch,
    Entangler,
    encode_file_payloads,
    latest_strand_creators,
)
from repro.core.lattice import DataRepairOption, HelicalLattice, ParityRepairOption
from repro.core.parameters import AEParameters, NodeCategory, StrandClass
from repro.core.position import (
    LatticePosition,
    node_at,
    node_category,
    node_column,
    node_row,
)
from repro.core.puncturing import (
    PuncturedCode,
    PuncturingPolicy,
    no_puncturing,
    parity_survivors,
    puncture_periodic,
    puncture_rate,
    puncture_strand_class,
)
from repro.core.rules import input_index, output_index, rule_table
from repro.core.strands import (
    StrandHeadRegistry,
    StrandId,
    all_strands,
    strand_of,
    strands_of,
    walk_backward,
    walk_forward,
)
from repro.core.tamper import TamperCost, average_tamper_cost, tamper_cost
from repro.core.xor import (
    as_payload,
    as_payload_matrix,
    gather_payload_matrix,
    payload_to_bytes,
    xor_accumulate,
    xor_into,
    xor_many,
    xor_payloads,
    xor_rows,
    zero_payload,
)

__all__ = [
    "AEParameters",
    "AlphaUpgrader",
    "BatchEntangler",
    "Block",
    "BlockId",
    "DataFetcher",
    "DataId",
    "DataRepairOption",
    "Decoder",
    "EncodedBatch",
    "EncodedBlock",
    "Entangler",
    "EpochHistory",
    "HelicalLattice",
    "IterativeRepairer",
    "LatticePosition",
    "NodeCategory",
    "ParameterEpoch",
    "ParityId",
    "ParityRepairOption",
    "PuncturedCode",
    "PuncturingPolicy",
    "RepairPlanStep",
    "RepairReport",
    "RepairRound",
    "StrandClass",
    "StrandHeadRegistry",
    "StrandId",
    "TamperCost",
    "UpgradePlan",
    "WriteScheduleReport",
    "WriteScheduler",
    "all_strands",
    "as_payload",
    "as_payload_matrix",
    "average_tamper_cost",
    "compare_write_parallelism",
    "encode_file_payloads",
    "execute_plan",
    "gather_payload_matrix",
    "input_index",
    "is_data",
    "is_parity",
    "join_blocks",
    "latest_strand_creators",
    "no_puncturing",
    "node_at",
    "node_category",
    "node_column",
    "node_row",
    "output_index",
    "parity_survivors",
    "payload_to_bytes",
    "plan_alpha_upgrade",
    "plan_inputs",
    "plan_round",
    "puncture_periodic",
    "puncture_rate",
    "puncture_strand_class",
    "rule_table",
    "split_into_blocks",
    "strand_of",
    "strands_of",
    "tamper_cost",
    "upgrade_alpha",
    "walk_backward",
    "walk_forward",
    "xor_accumulate",
    "xor_into",
    "xor_many",
    "xor_payloads",
    "xor_rows",
    "zero_payload",
]
