"""Code parameters for alpha entanglement codes AE(alpha, s, p).

The three parameters control redundancy propagation (paper, Section III-B):

* ``alpha`` -- the number of parities created per data block, and the number
  of strands each data block participates in.  It fixes the code rate
  ``1 / (alpha + 1)`` and the storage overhead ``alpha * 100%``.
* ``s`` -- the number of horizontal strands (rows of the helical lattice).
* ``p`` -- the number of helical strands per helical class (right-handed and
  left-handed).  Together with ``s`` it controls the *global* connectivity of
  the lattice; increasing it raises fault tolerance at no storage cost.

Validity rules (paper, Section III-B, "Code Parameters"):

* single entanglements (``alpha == 1``) use exactly one horizontal strand:
  ``s == 1`` and ``p == 0``;
* for ``alpha >= 2`` the lattice is well formed only when ``p >= s``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from fractions import Fraction
from typing import Tuple

from repro.exceptions import InvalidParametersError


class StrandClass(str, Enum):
    """The three strand classes used to weave the helical lattice."""

    HORIZONTAL = "h"
    RIGHT_HANDED = "rh"
    LEFT_HANDED = "lh"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StrandClass.{self.name}"


#: Strand classes in the order they are activated as ``alpha`` grows.
STRAND_CLASS_ORDER: Tuple[StrandClass, ...] = (
    StrandClass.HORIZONTAL,
    StrandClass.RIGHT_HANDED,
    StrandClass.LEFT_HANDED,
)


class NodeCategory(str, Enum):
    """Position of a data node within its lattice column (paper, Table I/II)."""

    TOP = "top"
    CENTRAL = "central"
    BOTTOM = "bottom"


@dataclass(frozen=True)
class AEParameters:
    """Immutable description of an AE(alpha, s, p) code setting.

    Parameters
    ----------
    alpha:
        Number of parities per data block (1, 2 or 3 are fully supported;
        larger values are accepted and use additional helical classes that
        reuse the left/right-handed rules, see :meth:`strand_classes`).
    s:
        Number of horizontal strands.
    p:
        Number of helical strands per helical class.  Must be 0 when
        ``alpha == 1`` and at least ``s`` otherwise.
    """

    alpha: int
    s: int
    p: int

    def __post_init__(self) -> None:
        if not isinstance(self.alpha, int) or self.alpha < 1:
            raise InvalidParametersError(
                f"alpha must be a positive integer, got {self.alpha!r}"
            )
        if not isinstance(self.s, int) or self.s < 1:
            raise InvalidParametersError(f"s must be a positive integer, got {self.s!r}")
        if not isinstance(self.p, int) or self.p < 0:
            raise InvalidParametersError(
                f"p must be a non-negative integer, got {self.p!r}"
            )
        if self.alpha == 1:
            if self.s != 1 or self.p != 0:
                raise InvalidParametersError(
                    "single entanglements AE(1) require s == 1 and p == 0, "
                    f"got s={self.s}, p={self.p}"
                )
        else:
            if self.p < self.s:
                raise InvalidParametersError(
                    "alpha-entanglements with alpha > 1 require p >= s "
                    f"(got s={self.s}, p={self.p}); p < s deforms the lattice"
                )
        if self.alpha > 3:
            # The paper only speculates about alpha > 3; we accept the setting
            # but the extra classes reuse the helical rules (documented).
            object.__setattr__(self, "_extended", True)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def single(cls) -> "AEParameters":
        """AE(1,-,-): one horizontal strand, one parity per data block."""
        return cls(1, 1, 0)

    @classmethod
    def double(cls, s: int, p: int) -> "AEParameters":
        """AE(2, s, p): horizontal plus one class of helical strands."""
        return cls(2, s, p)

    @classmethod
    def triple(cls, s: int, p: int) -> "AEParameters":
        """AE(3, s, p): horizontal plus right- and left-handed helical strands."""
        return cls(3, s, p)

    @classmethod
    def helical(cls, p: int) -> "AEParameters":
        """The p-HEC code of the earlier work, i.e. AE(3, 2, p)."""
        return cls(3, 2, p)

    @classmethod
    def parse(cls, text: str) -> "AEParameters":
        """Parse a textual spec such as ``"AE(3,2,5)"`` or ``"AE(1,-,-)"``."""
        cleaned = text.strip().upper()
        if cleaned.startswith("AE"):
            cleaned = cleaned[2:]
        cleaned = cleaned.strip("()")
        parts = [part.strip() for part in cleaned.split(",")]
        if not parts or not parts[0]:
            raise InvalidParametersError(f"cannot parse AE spec from {text!r}")
        alpha = int(parts[0])
        if alpha == 1:
            return cls.single()
        if len(parts) != 3:
            raise InvalidParametersError(
                f"AE spec {text!r} must provide alpha, s and p for alpha > 1"
            )
        return cls(alpha, int(parts[1]), int(parts[2]))

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def strand_classes(self) -> Tuple[StrandClass, ...]:
        """Strand classes in use: H for alpha=1, +RH for alpha=2, +LH for alpha=3.

        For ``alpha > 3`` the additional classes alternate RH/LH behaviour;
        they are exposed as repeated entries of the two helical classes which
        keeps the lattice rules well defined (the paper leaves the exact
        geometry of extra classes open).
        """
        if self.alpha <= 3:
            return STRAND_CLASS_ORDER[: self.alpha]
        extra = tuple(
            STRAND_CLASS_ORDER[1 + (k % 2)] for k in range(self.alpha - 3)
        )
        return STRAND_CLASS_ORDER + extra

    @property
    def helical_class_count(self) -> int:
        """Number of helical strand classes, ``alpha - 1`` for alpha >= 2."""
        return max(self.alpha - 1, 0)

    @property
    def strand_count(self) -> int:
        """Total number of strands: ``s + (alpha - 1) * p`` (paper, Sec. III-B)."""
        return self.s + self.helical_class_count * self.p

    @property
    def code_rate(self) -> Fraction:
        """Code rate ``1 / (alpha + 1)`` when data and parities are stored."""
        return Fraction(1, self.alpha + 1)

    @property
    def parity_only_rate(self) -> Fraction:
        """Improved rate ``1 / alpha`` for systems that only store parities."""
        return Fraction(1, self.alpha)

    @property
    def storage_overhead(self) -> float:
        """Additional storage as a fraction of the original data (alpha * 100%)."""
        return float(self.alpha)

    @property
    def single_failure_cost(self) -> int:
        """Blocks read to repair any single failure; always 2 for AE codes."""
        return 2

    @property
    def is_single(self) -> bool:
        """True for AE(1,-,-)."""
        return self.alpha == 1

    def spec(self) -> str:
        """Human readable specification, e.g. ``"AE(3,2,5)"`` or ``"AE(1,-,-)"``."""
        if self.is_single:
            return "AE(1,-,-)"
        return f"AE({self.alpha},{self.s},{self.p})"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.spec()

    # ------------------------------------------------------------------
    # Parameter evolution (dynamic fault tolerance)
    # ------------------------------------------------------------------
    def with_alpha(self, alpha: int) -> "AEParameters":
        """Return a copy with a different ``alpha``.

        Raising ``alpha`` is the supported dynamic-fault-tolerance upgrade: the
        existing parities remain valid and only the new strand classes need to
        be computed (see :mod:`repro.core.dynamic`).
        """
        if alpha == 1:
            return AEParameters.single()
        s = max(self.s, 1)
        p = max(self.p, s)
        return AEParameters(alpha, s, p)

    def with_geometry(self, s: int, p: int) -> "AEParameters":
        """Return a copy with different global-connectivity parameters."""
        return AEParameters(self.alpha, s, p)


def validate_parameters(alpha: int, s: int, p: int) -> AEParameters:
    """Validate raw parameters and return the corresponding :class:`AEParameters`.

    This is a convenience wrapper used by user-facing constructors so that a
    friendly error message is produced for invalid settings.
    """
    return AEParameters(alpha, s, p)
