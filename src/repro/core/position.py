"""Geometry of the helical lattice: node positions, rows, columns and labels.

Data blocks are identified by a position ``i >= 1`` assigned sequentially by
the encoder.  The helical lattice arranges them in ``s`` rows (one per
horizontal strand); column ``c`` contains nodes ``(c-1)*s + 1 .. c*s``.

The paper classifies nodes within a column (Table I/II):

* *top*     -- ``i ≡ 1 (mod s)``  (first row),
* *bottom*  -- ``i ≡ 0 (mod s)``  (last row),
* *central* -- everything in between.

For ``s == 1`` the classification is degenerate (every node is both top and
bottom); the library treats the single-row lattice as a special case whose
helical strands advance ``p`` positions per step (see :mod:`repro.core.rules`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.parameters import AEParameters, NodeCategory, StrandClass
from repro.exceptions import LatticeBoundsError


def node_row(index: int, s: int) -> int:
    """Row of node ``index`` (1-based), i.e. the horizontal strand it lies on."""
    _check_index(index)
    return (index - 1) % s + 1


def node_column(index: int, s: int) -> int:
    """Column of node ``index`` (1-based)."""
    _check_index(index)
    return (index - 1) // s + 1


def node_at(row: int, column: int, s: int) -> int:
    """Inverse of :func:`node_row`/:func:`node_column`."""
    if not 1 <= row <= s:
        raise LatticeBoundsError(f"row {row} outside 1..{s}")
    if column < 1:
        raise LatticeBoundsError(f"column {column} must be >= 1")
    return (column - 1) * s + row


def node_category(index: int, s: int) -> NodeCategory:
    """Classify node ``index`` as top, central or bottom (paper, Sec. III-B).

    For ``s == 1`` every node is simultaneously the top and the bottom of its
    column; we report :attr:`NodeCategory.TOP` which matches the degenerate
    single-row handling in :mod:`repro.core.rules`.
    """
    _check_index(index)
    if s == 1:
        return NodeCategory.TOP
    remainder = index % s
    if remainder == 1:
        return NodeCategory.TOP
    if remainder == 0:
        return NodeCategory.BOTTOM
    return NodeCategory.CENTRAL


@dataclass(frozen=True)
class LatticePosition:
    """Full geometric description of a node position."""

    index: int
    row: int
    column: int
    category: NodeCategory

    @classmethod
    def of(cls, index: int, params: AEParameters) -> "LatticePosition":
        return cls(
            index=index,
            row=node_row(index, params.s),
            column=node_column(index, params.s),
            category=node_category(index, params.s),
        )


def horizontal_strand_label(index: int, params: AEParameters) -> int:
    """0-based label of the horizontal strand through ``index`` (its row - 1)."""
    return node_row(index, params.s) - 1


def helical_strand_label(index: int, strand_class: StrandClass, params: AEParameters) -> int:
    """0-based label of the helical strand of ``strand_class`` through ``index``.

    Right-handed strands are invariant along diagonals of slope +1
    (``column - row`` constant modulo ``p``), left-handed strands along
    diagonals of slope -1 (``column + row`` constant modulo ``p``).  Labels may
    differ from the paper's Figure 4 numbering by a constant offset; only the
    adjacency structure matters for encoding and repair.
    """
    if strand_class is StrandClass.HORIZONTAL:
        return horizontal_strand_label(index, params)
    if params.p == 0:
        raise LatticeBoundsError(
            f"{params.spec()} has no helical strands; cannot label {strand_class}"
        )
    row = node_row(index, params.s)
    column = node_column(index, params.s)
    if params.s == 1:
        # Single-row lattice: helical strands advance p positions per step, so
        # the strand label is simply the position modulo p.
        return (index - 1) % params.p
    if strand_class is StrandClass.RIGHT_HANDED:
        return (column - row) % params.p
    return (column + row) % params.p


def strand_label(index: int, strand_class: StrandClass, params: AEParameters) -> int:
    """Label of the strand of ``strand_class`` passing through node ``index``."""
    if strand_class is StrandClass.HORIZONTAL:
        return horizontal_strand_label(index, params)
    return helical_strand_label(index, strand_class, params)


def strand_labels(
    indexes: np.ndarray, strand_class: StrandClass, params: AEParameters
) -> np.ndarray:
    """Vectorised :func:`strand_label` for an array of node indexes.

    Used by the batch encoder to partition a whole batch into strands with
    numpy arithmetic instead of one Python call per node.  Produces exactly
    the labels of the scalar function.
    """
    idx = np.asarray(indexes, dtype=np.int64)
    if strand_class is StrandClass.HORIZONTAL:
        return (idx - 1) % params.s
    if params.p == 0:
        raise LatticeBoundsError(
            f"{params.spec()} has no helical strands; cannot label {strand_class}"
        )
    if params.s == 1:
        return (idx - 1) % params.p
    row = (idx - 1) % params.s + 1
    column = (idx - 1) // params.s + 1
    if strand_class is StrandClass.RIGHT_HANDED:
        return (column - row) % params.p
    return (column + row) % params.p


def nodes_in_column(column: int, s: int) -> range:
    """All node indexes in ``column`` (1-based)."""
    if column < 1:
        raise LatticeBoundsError(f"column {column} must be >= 1")
    start = (column - 1) * s + 1
    return range(start, start + s)


def column_count(n_nodes: int, s: int) -> int:
    """Number of (possibly partially filled) columns needed for ``n_nodes``."""
    if n_nodes < 0:
        raise LatticeBoundsError("n_nodes must be non-negative")
    return -(-n_nodes // s) if n_nodes else 0


def _check_index(index: int) -> None:
    if index < 1:
        raise LatticeBoundsError(f"node index must be >= 1, got {index}")
