"""The entanglement encoder.

Encoding is a streaming process (paper, Sec. III-B, "Code Specification"):

1. the new data block is assigned the next lattice position ``i``;
2. its category (top / central / bottom) selects the rule rows of Tables I
   and II;
3. for each of the ``alpha`` strand classes the encoder XORs the data block
   with the parity at the head of the corresponding strand (a virtual zero
   block when the strand starts here) and the result becomes the new strand
   head, i.e. the parity ``p_{i,j}``.

The encoder therefore only needs to keep the last parity of each strand in
memory -- ``s + (alpha - 1) * p`` payloads -- exactly the broker memory
footprint discussed in the geo-replicated backup use case (Sec. IV-A).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional, Tuple

from repro.core.blocks import Block, DataId, EncodedBlock, ParityId, split_into_blocks
from repro.core.lattice import HelicalLattice
from repro.core.parameters import AEParameters, StrandClass
from repro.core.strands import StrandHeadRegistry, StrandId, strand_of
from repro.core.xor import Payload, as_payload, xor_payloads, zero_payload
from repro.exceptions import BlockSizeMismatchError, UnknownBlockError

#: Signature used to fetch parities when rebuilding encoder state after a crash.
ParityFetcher = Callable[[ParityId], Optional[Payload]]

DEFAULT_BLOCK_SIZE = 4096


class Entangler:
    """Streaming encoder for an AE(alpha, s, p) code.

    Parameters
    ----------
    params:
        The code setting.
    block_size:
        Size in bytes of every data and parity block.  Incoming payloads are
        zero-padded to this size.
    """

    def __init__(self, params: AEParameters, block_size: int = DEFAULT_BLOCK_SIZE) -> None:
        if block_size <= 0:
            raise BlockSizeMismatchError("block_size must be positive")
        self._params = params
        self._block_size = block_size
        self._lattice = HelicalLattice(params)
        self._heads = StrandHeadRegistry(params)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def params(self) -> AEParameters:
        return self._params

    @property
    def block_size(self) -> int:
        return self._block_size

    @property
    def lattice(self) -> HelicalLattice:
        return self._lattice

    @property
    def blocks_encoded(self) -> int:
        return self._lattice.size

    @property
    def memory_footprint_blocks(self) -> int:
        """Number of parities currently held in memory (<= strand count)."""
        return len(self._heads)

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def entangle(self, payload) -> EncodedBlock:
        """Entangle one data block and return it together with its parities."""
        data_payload = as_payload(payload, self._block_size)
        if data_payload.size != self._block_size:
            raise BlockSizeMismatchError(
                f"payload of {data_payload.size} bytes does not fit block size "
                f"{self._block_size}"
            )
        (data_id,) = self._lattice.grow(1)
        index = data_id.index
        parities: List[Block] = []
        for strand_class in self._params.strand_classes:
            strand = strand_of(index, strand_class, self._params)
            head_payload = self._heads.head_payload(strand)
            if head_payload is None:
                head_payload = zero_payload(self._block_size)
            parity_payload = xor_payloads(data_payload, head_payload)
            parity_id = ParityId(index, strand_class)
            parities.append(Block(parity_id, parity_payload))
            self._heads.update(strand, index, parity_payload)
        return EncodedBlock(data=Block(data_id, data_payload), parities=parities)

    def encode_stream(self, payloads: Iterable) -> Iterator[EncodedBlock]:
        """Entangle an iterable of payloads lazily."""
        for payload in payloads:
            yield self.entangle(payload)

    def encode_bytes(self, data: bytes) -> Tuple[List[EncodedBlock], int]:
        """Split ``data`` into blocks, entangle them all and return the blocks.

        The second element of the tuple is the original length, needed to strip
        the zero padding of the last block on reassembly.
        """
        chunks = split_into_blocks(data, self._block_size)
        return [self.entangle(chunk) for chunk in chunks], len(data)

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def strand_head_ids(self) -> List[ParityId]:
        """Identifiers of the parities currently acting as strand heads."""
        snapshot = self._heads.snapshot()
        return [
            ParityId(creator, strand.strand_class)
            for strand, creator in snapshot.items()
        ]

    def restore(self, size: int, fetch: ParityFetcher) -> None:
        """Rebuild the in-memory strand heads after a crash.

        ``size`` is the number of data blocks already entangled; ``fetch``
        retrieves parities from remote storage (paper, Sec. IV-A: "If the
        broker crashes, it only needs to retrieve the p-blocks from the remote
        nodes").
        """
        self._lattice = HelicalLattice(self._params, size)
        self._heads.clear()
        if size == 0:
            return
        for strand, creator in latest_strand_creators(self._params, size).items():
            parity_id = ParityId(creator, strand.strand_class)
            payload = fetch(parity_id)
            if payload is None:
                raise UnknownBlockError(
                    f"cannot restore encoder state: parity {parity_id!r} unavailable"
                )
            self._heads.update(strand, creator, as_payload(payload, self._block_size))


def latest_strand_creators(params: AEParameters, size: int) -> dict:
    """For each strand, the largest node index <= ``size`` lying on it.

    Within the last ``s * max(p, 1)`` positions every strand of the lattice is
    visited at least once (one full helical cycle), so a bounded backward scan
    is sufficient.
    """
    window = params.s * max(params.p, 1)
    creators: dict = {}
    expected = params.strand_count if size >= window else None
    for index in range(size, max(size - window, 0), -1):
        for strand_class in params.strand_classes:
            strand = strand_of(index, strand_class, params)
            if strand not in creators:
                creators[strand] = index
        if expected is not None and len(creators) >= expected:
            break
    return creators


def encode_file_payloads(
    params: AEParameters, data: bytes, block_size: int = DEFAULT_BLOCK_SIZE
) -> Tuple[List[EncodedBlock], int]:
    """Convenience helper: encode a byte string with a fresh :class:`Entangler`."""
    encoder = Entangler(params, block_size)
    return encoder.encode_bytes(data)
