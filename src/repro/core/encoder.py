"""The entanglement encoder.

Encoding is a streaming process (paper, Sec. III-B, "Code Specification"):

1. the new data block is assigned the next lattice position ``i``;
2. its category (top / central / bottom) selects the rule rows of Tables I
   and II;
3. for each of the ``alpha`` strand classes the encoder XORs the data block
   with the parity at the head of the corresponding strand (a virtual zero
   block when the strand starts here) and the result becomes the new strand
   head, i.e. the parity ``p_{i,j}``.

The encoder therefore only needs to keep the last parity of each strand in
memory -- ``s + (alpha - 1) * p`` payloads -- exactly the broker memory
footprint discussed in the geo-replicated backup use case (Sec. IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.blocks import Block, BlockId, DataId, EncodedBlock, ParityId, split_into_blocks
from repro.core.lattice import HelicalLattice
from repro.core.parameters import AEParameters, StrandClass
from repro.core.position import strand_labels
from repro.core.strands import StrandHeadRegistry, StrandId, strand_of
from repro.core.xor import (
    Payload,
    PayloadBatch,
    PayloadLike,
    PayloadMatrix,
    as_payload,
    as_payload_matrix,
    xor_into,
    xor_payloads,
    zero_payload,
)
from repro.exceptions import BlockSizeMismatchError, UnknownBlockError

#: Signature used to fetch parities when rebuilding encoder state after a crash.
ParityFetcher = Callable[[ParityId], Optional[Payload]]

DEFAULT_BLOCK_SIZE = 4096


class Entangler:
    """Streaming encoder for an AE(alpha, s, p) code.

    Parameters
    ----------
    params:
        The code setting.
    block_size:
        Size in bytes of every data and parity block.  Incoming payloads are
        zero-padded to this size.
    """

    def __init__(self, params: AEParameters, block_size: int = DEFAULT_BLOCK_SIZE) -> None:
        if block_size <= 0:
            raise BlockSizeMismatchError("block_size must be positive")
        self._params = params
        self._block_size = block_size
        self._lattice = HelicalLattice(params)
        self._heads = StrandHeadRegistry(params)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def params(self) -> AEParameters:
        return self._params

    @property
    def block_size(self) -> int:
        return self._block_size

    @property
    def lattice(self) -> HelicalLattice:
        return self._lattice

    @property
    def blocks_encoded(self) -> int:
        return self._lattice.size

    @property
    def memory_footprint_blocks(self) -> int:
        """Number of parities currently held in memory (<= strand count)."""
        return len(self._heads)

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def entangle(self, payload: PayloadLike) -> EncodedBlock:
        """Entangle one data block and return it together with its parities."""
        data_payload = as_payload(payload, self._block_size)
        if data_payload.size != self._block_size:
            raise BlockSizeMismatchError(
                f"payload of {data_payload.size} bytes does not fit block size "
                f"{self._block_size}"
            )
        (data_id,) = self._lattice.grow(1)
        index = data_id.index
        parities: List[Block] = []
        for strand_class in self._params.strand_classes:
            strand = strand_of(index, strand_class, self._params)
            head_payload = self._heads.head_payload(strand)
            if head_payload is None:
                head_payload = zero_payload(self._block_size)
            parity_payload = xor_payloads(data_payload, head_payload)
            parity_id = ParityId(index, strand_class)
            parities.append(Block(parity_id, parity_payload))
            self._heads.update(strand, index, parity_payload)
        return EncodedBlock(data=Block(data_id, data_payload), parities=parities)

    def encode_stream(self, payloads: Iterable) -> Iterator[EncodedBlock]:
        """Entangle an iterable of payloads lazily."""
        for payload in payloads:
            yield self.entangle(payload)

    def encode_bytes(self, data: bytes) -> Tuple[List[EncodedBlock], int]:
        """Split ``data`` into blocks, entangle them all and return the blocks.

        The second element of the tuple is the original length, needed to strip
        the zero padding of the last block on reassembly.
        """
        chunks = split_into_blocks(data, self._block_size)
        return [self.entangle(chunk) for chunk in chunks], len(data)

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def strand_head_ids(self) -> List[ParityId]:
        """Identifiers of the parities currently acting as strand heads."""
        snapshot = self._heads.snapshot()
        return [
            ParityId(creator, strand.strand_class)
            for strand, creator in snapshot.items()
        ]

    def restore(self, size: int, fetch: ParityFetcher) -> None:
        """Rebuild the in-memory strand heads after a crash.

        ``size`` is the number of data blocks already entangled; ``fetch``
        retrieves parities from remote storage (paper, Sec. IV-A: "If the
        broker crashes, it only needs to retrieve the p-blocks from the remote
        nodes").
        """
        self._lattice = HelicalLattice(self._params, size)
        self._heads.clear()
        if size == 0:
            return
        for strand, creator in latest_strand_creators(self._params, size).items():
            parity_id = ParityId(creator, strand.strand_class)
            payload = fetch(parity_id)
            if payload is None:
                raise UnknownBlockError(
                    f"cannot restore encoder state: parity {parity_id!r} unavailable"
                )
            self._heads.update(strand, creator, as_payload(payload, self._block_size))


@dataclass
class EncodedBatch:
    """Result of entangling a stack of data blocks in one vectorised pass.

    Payloads stay in matrix form -- ``data`` is the ``(n, block_size)`` input
    stack and ``parities[c]`` holds, for the ``c``-th strand class of the code,
    the ``n`` parities created by the batch (row ``k`` belongs to
    ``data_ids[k]``).  Row views are handed to storage without per-block byte
    copies, and parity identifiers are generated lazily -- materialising
    ``n * alpha`` :class:`ParityId` objects eagerly would dominate the encode
    time the batch path exists to eliminate.  :meth:`encoded_blocks` builds
    classic :class:`EncodedBlock` objects when object-level access is
    preferred.
    """

    data_ids: List[DataId]
    data: PayloadMatrix
    strand_classes: Tuple[StrandClass, ...] = ()
    parities: List[PayloadMatrix] = field(default_factory=list)

    @property
    def block_count(self) -> int:
        """Number of data blocks in the batch."""
        return len(self.data_ids)

    @property
    def parity_ids(self) -> List[List[ParityId]]:
        """Per strand-class parity identifiers (row ``k`` belongs to ``data_ids[k]``)."""
        return [
            [ParityId(data_id.index, strand_class) for data_id in self.data_ids]
            for strand_class in self.strand_classes
        ]

    def iter_blocks(self) -> Iterator[Tuple[BlockId, Payload]]:
        """Yield ``(block_id, payload)`` pairs for every block of the batch.

        Payloads are row views into the batch matrices (no copies); the order
        matches the sequential encoder: each data block followed by its
        parities in strand-class order.
        """
        for row, data_id in enumerate(self.data_ids):
            yield data_id, self.data[row]
            index = data_id.index
            for position, strand_class in enumerate(self.strand_classes):
                yield ParityId(index, strand_class), self.parities[position][row]

    def encoded_blocks(self) -> List[EncodedBlock]:
        """Materialise the batch as per-block :class:`EncodedBlock` objects."""
        blocks: List[EncodedBlock] = []
        for row, data_id in enumerate(self.data_ids):
            parities = [
                Block(ParityId(data_id.index, strand_class), self.parities[position][row])
                for position, strand_class in enumerate(self.strand_classes)
            ]
            blocks.append(EncodedBlock(data=Block(data_id, self.data[row]), parities=parities))
        return blocks


class BatchEntangler(Entangler):
    """Vectorised entangler: encodes a stack of blocks per call.

    Entanglement along one strand is a running XOR -- parity ``p_k`` of a
    strand is ``head ^ d_1 ^ ... ^ d_k`` over the strand's data blocks.  The
    batch encoder partitions the rows of an incoming ``(n, block_size)``
    matrix by strand with vectorised label arithmetic and computes each
    strand's parity chain with one whole-block XOR per row, replacing the
    per-block Python machinery (lattice bookkeeping, strand lookups, object
    wrapping) with ``alpha`` matrix passes.  The produced parities are
    bit-identical to ``n`` sequential :meth:`Entangler.entangle` calls and
    leave the strand-head registry in the same state, so batched and
    single-block encoding can be mixed freely.
    """

    def entangle_batch(self, payloads: PayloadBatch) -> EncodedBatch:
        """Entangle a stack of blocks and return the batch result.

        ``payloads`` may be a ``(n, block_size)`` uint8 matrix, a byte string
        (split into zero-padded blocks) or a sequence of block payloads.
        """
        matrix = as_payload_matrix(payloads, self._block_size)
        count = matrix.shape[0]
        classes = self._params.strand_classes
        if count == 0:
            return EncodedBatch(data_ids=[], data=matrix, strand_classes=classes)
        if len(set(classes)) != len(classes):
            # alpha > 3 repeats helical classes; the interleaving of repeated
            # classes within one node is inherently sequential, so fall back.
            return self._entangle_batch_sequential(matrix)
        data_ids = self._lattice.grow(count)
        start = data_ids[0].index
        indexes = np.arange(start, start + count, dtype=np.int64)
        batch = EncodedBatch(data_ids=data_ids, data=matrix, strand_classes=classes)
        bitwise_xor = np.bitwise_xor
        for strand_class in classes:
            # Parities start as a copy of the data; each strand then XORs its
            # predecessor parity into every row, in lattice order, in place.
            parities = matrix.copy()
            # One row view per block, created in bulk: list indexing inside the
            # scan is several times cheaper than ndarray row indexing.
            row_views = list(parities)
            labels = strand_labels(indexes, strand_class, self._params)
            if strand_class is StrandClass.HORIZONTAL:
                label_count = self._params.s
            else:
                label_count = self._params.p
            for label in range(label_count):
                rows = np.nonzero(labels == label)[0]
                if rows.size == 0:
                    continue
                strand = StrandId(strand_class, label)
                head = self._heads.head_payload(strand)
                previous = int(rows[0])
                if head is not None:
                    xor_into(row_views[previous], head)
                chain = row_views[previous]
                for row in rows[1:].tolist():
                    current = row_views[row]
                    bitwise_xor(current, chain, out=current)
                    chain = current
                    previous = row
                self._heads.update(strand, start + previous, chain)
            batch.parities.append(parities)
        return batch

    def _entangle_batch_sequential(self, matrix: PayloadMatrix) -> EncodedBatch:
        """Per-block fallback used when strand classes repeat (alpha > 3)."""
        encoded = [self.entangle(matrix[row]) for row in range(matrix.shape[0])]
        batch = EncodedBatch(
            data_ids=[e.data_id for e in encoded],
            data=matrix,
            strand_classes=self._params.strand_classes,
        )
        for position in range(len(self._params.strand_classes)):
            batch.parities.append(np.stack([e.parities[position].payload for e in encoded]))
        return batch

    def encode_bytes_batched(self, data: bytes) -> Tuple[EncodedBatch, int]:
        """Batched counterpart of :meth:`Entangler.encode_bytes`.

        Returns the encoded batch plus the original byte length (needed to
        strip the zero padding of the final block on reassembly).
        """
        return self.entangle_batch(data), len(data)


def latest_strand_creators(params: AEParameters, size: int) -> dict:
    """For each strand, the largest node index <= ``size`` lying on it.

    Within the last ``s * max(p, 1)`` positions every strand of the lattice is
    visited at least once (one full helical cycle), so a bounded backward scan
    is sufficient.
    """
    window = params.s * max(params.p, 1)
    creators: dict = {}
    expected = params.strand_count if size >= window else None
    for index in range(size, max(size - window, 0), -1):
        for strand_class in params.strand_classes:
            strand = strand_of(index, strand_class, params)
            if strand not in creators:
                creators[strand] = index
        if expected is not None and len(creators) >= expected:
            break
    return creators


def encode_file_payloads(
    params: AEParameters, data: bytes, block_size: int = DEFAULT_BLOCK_SIZE
) -> Tuple[List[EncodedBlock], int]:
    """Convenience helper: encode a byte string with a fresh :class:`Entangler`."""
    encoder = Entangler(params, block_size)
    return encoder.encode_bytes(data)
