"""Sealed buckets and the full-write scheduling model (paper, Fig. 10).

A *sealed bucket* contains a data block and the ``alpha`` parities created by
its entanglement.  A data block can be *fully entangled* (its bucket sealed)
as soon as the ``alpha`` input parities it needs are available in memory.

The paper studies the impact of ``s`` and ``p`` on write performance with a
column-per-time-step model: at step ``t`` the writer processes the ``s`` data
blocks of column ``t`` and keeps in memory only the parities produced during
a bounded window of recent steps.  When ``s == p`` every input parity of the
current column was produced in the previous column, so all buckets seal
immediately and full-writes proceed in parallel.  When ``p > s`` the
wrap-around rules pull inputs from ``p/s`` columns back: those parities are no
longer in the memory window, so the corresponding buckets either wait or must
fetch parities from storage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.parameters import AEParameters, StrandClass
from repro.core.position import node_column, nodes_in_column
from repro.core.rules import input_index
from repro.exceptions import InvalidParametersError


@dataclass
class Bucket:
    """Write-side view of one data block and the parities it must produce."""

    index: int
    column: int
    required_inputs: Dict[StrandClass, Optional[int]]
    sealed_at_step: Optional[int] = None
    deferred_inputs: List[StrandClass] = field(default_factory=list)

    @property
    def sealed_immediately(self) -> bool:
        return self.sealed_at_step == self.column

    @property
    def parities_written_at_arrival(self) -> int:
        """Parities computable at the write step (alpha minus deferred ones)."""
        return len(self.required_inputs) - len(self.deferred_inputs)


@dataclass
class WriteScheduleReport:
    """Aggregate statistics of a simulated write sequence."""

    params: AEParameters
    window_columns: int
    columns: int
    buckets: List[Bucket]

    @property
    def total_buckets(self) -> int:
        return len(self.buckets)

    @property
    def sealed_immediately(self) -> int:
        return sum(1 for bucket in self.buckets if bucket.sealed_immediately)

    @property
    def waiting_buckets(self) -> int:
        return self.total_buckets - self.sealed_immediately

    @property
    def sealed_fraction(self) -> float:
        if not self.buckets:
            return 1.0
        return self.sealed_immediately / self.total_buckets

    @property
    def deferred_parities(self) -> int:
        return sum(len(bucket.deferred_inputs) for bucket in self.buckets)

    def parities_per_step(self) -> Dict[int, int]:
        """Number of parities computed at each time step (column)."""
        per_step: Dict[int, int] = {}
        for bucket in self.buckets:
            per_step.setdefault(bucket.column, 0)
            per_step[bucket.column] += bucket.parities_written_at_arrival
            for _ in bucket.deferred_inputs:
                step = bucket.sealed_at_step if bucket.sealed_at_step else bucket.column
                per_step.setdefault(step, 0)
                per_step[step] += 1
        return dict(sorted(per_step.items()))

    def memory_requirement_blocks(self) -> int:
        """Parities that must be kept in memory for full-writes: O(N) with N the
        number of parities computed in the window (paper, Sec. V-B)."""
        return self.params.alpha * self.params.s * self.window_columns

    def summary(self) -> str:
        return (
            f"{self.params.spec()}: {self.sealed_immediately}/{self.total_buckets} "
            f"buckets sealed at arrival ({self.sealed_fraction:.0%}), "
            f"{self.deferred_parities} deferred parities, "
            f"window={self.window_columns} column(s)"
        )


class WriteScheduler:
    """Simulates column-per-step writes and reports sealing behaviour."""

    def __init__(self, params: AEParameters, window_columns: int = 1) -> None:
        if window_columns < 1:
            raise InvalidParametersError("window_columns must be >= 1")
        self._params = params
        self._window = window_columns

    def simulate(self, columns: int, skip_warmup: bool = True) -> WriteScheduleReport:
        """Simulate writing ``columns`` full columns of data blocks.

        ``skip_warmup`` ignores the first ``p // s + 1`` columns where strands
        are still starting (their inputs are virtual zero blocks and every
        bucket trivially seals), so the report reflects steady-state behaviour.
        """
        if columns < 1:
            raise InvalidParametersError("columns must be >= 1")
        params = self._params
        warmup = (params.p // params.s + 1) if skip_warmup and params.alpha > 1 else 0
        buckets: List[Bucket] = []
        for column in range(1, columns + 1):
            for index in nodes_in_column(column, params.s):
                bucket = self._schedule_bucket(index, column)
                if column > warmup:
                    buckets.append(bucket)
        return WriteScheduleReport(
            params=params, window_columns=self._window, columns=columns, buckets=buckets
        )

    def _schedule_bucket(self, index: int, column: int) -> Bucket:
        params = self._params
        required: Dict[StrandClass, Optional[int]] = {}
        deferred: List[StrandClass] = []
        latest_needed_step = column
        for strand_class in params.strand_classes:
            h = input_index(index, strand_class, params)
            if h < 1:
                required[strand_class] = None
                continue
            required[strand_class] = h
            producer_column = node_column(h, params.s)
            # The producing parity is in memory when it was computed within the
            # window of recent columns (including the current column, because
            # lower rows of the same column are processed earlier).
            in_window = column - producer_column <= self._window and h < index
            if not in_window:
                deferred.append(strand_class)
                # The bucket can only seal once the missing parity is fetched
                # from storage; we model the fetch as completing one step later.
                latest_needed_step = max(latest_needed_step, column + 1)
        return Bucket(
            index=index,
            column=column,
            required_inputs=required,
            sealed_at_step=latest_needed_step,
            deferred_inputs=deferred,
        )


def compare_write_parallelism(
    alpha: int, s: int, p_values: List[int], columns: int = 40
) -> Dict[int, WriteScheduleReport]:
    """Reproduce the comparison of Fig. 10: sealing behaviour for several ``p``.

    Returns a report per ``p`` value; with ``p == s`` all buckets seal at
    arrival, with ``p > s`` a fraction of them (the wrap-around rows) wait.
    """
    reports: Dict[int, WriteScheduleReport] = {}
    for p in p_values:
        params = AEParameters(alpha, s, p)
        reports[p] = WriteScheduler(params).simulate(columns)
    return reports
