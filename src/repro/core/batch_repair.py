"""Vectorised round planning for lattice repair.

The sequential :class:`~repro.core.decoder.Decoder` rebuilds one block per
call: fetch the two tuple inputs, XOR them, return.  For a whole repair round
that is thousands of tiny Python round trips over payloads that are already
sitting in memory.  This module splits the round into two phases so the
storage layer and the XOR kernels each see one bulk operation:

* :func:`plan_round` walks the pending blocks and, against a cheap
  availability oracle, picks the same pp-/dp-tuple the decoder would use --
  one :class:`RepairPlanStep` per repairable block, none for blocks no
  surviving tuple can rebuild this round;
* :func:`execute_plan` gathers every step's two inputs into two payload
  matrices and reconstructs all targets in a single in-place
  :func:`~repro.core.xor.xor_into` matrix pass.

Both tuple forms reduce to ``target = first XOR second`` with ``None``
standing for the virtual zero parity at strand extremities, so a round is
exactly one matrix XOR regardless of how data and parity targets mix.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, NamedTuple, Optional, Tuple

from repro.core.blocks import BlockId, DataId, ParityId, is_data
from repro.core.lattice import HelicalLattice
from repro.core.rules import input_index, output_index
from repro.core.xor import Payload, gather_payload_matrix, xor_into

__all__ = ["RepairPlanStep", "plan_round", "execute_plan", "plan_inputs"]

#: Availability oracle: ``True`` when the block's payload can be produced
#: without repairing it (it is stored, or an earlier round rebuilt it).
AvailabilityProbe = Callable[[BlockId], bool]


class RepairPlanStep(NamedTuple):
    """One planned reconstruction: ``target = first XOR second``.

    ``None`` inputs stand for the virtual zero block at a strand extremity
    (a data block at a strand start equals its output parity alone).
    """

    target: BlockId
    first: Optional[BlockId]
    second: Optional[BlockId]

    def inputs(self) -> List[BlockId]:
        return [block_id for block_id in (self.first, self.second) if block_id is not None]


def plan_round(
    lattice: HelicalLattice,
    pending: Iterable[BlockId],
    available: AvailabilityProbe,
) -> List[RepairPlanStep]:
    """Plan one repair round over ``pending`` blocks.

    Mirrors the option order of :class:`~repro.core.decoder.Decoder` at
    recursion depth 0: data blocks try their alpha pp-tuples in strand-class
    order, parities try the left dp-tuple before the right one.  Blocks
    without a fully available tuple are simply absent from the plan (they
    wait for a later round).  ``pending`` must not be treated as available
    by the probe: within a round every input comes from blocks that existed
    before the round started.
    """
    # Ids are built lazily, option by option, instead of materialising the
    # lattice's option lists: a round plans hundreds of blocks and usually
    # commits to the first viable tuple, so eager construction is pure waste.
    params = lattice.params
    classes = params.strand_classes
    size = lattice.size
    steps: List[RepairPlanStep] = []
    for block_id in pending:
        if not lattice.has_block(block_id):
            continue
        if is_data(block_id):
            index = block_id.index
            for strand_class in classes:
                output_parity = ParityId(index, strand_class)
                if not available(output_parity):
                    continue
                h = input_index(index, strand_class, params)
                input_parity = ParityId(h, strand_class) if h >= 1 else None
                if input_parity is not None and not available(input_parity):
                    continue
                steps.append(RepairPlanStep(block_id, input_parity, output_parity))
                break
        else:
            index = block_id.index
            strand_class = block_id.strand_class
            # Left dp-tuple: p_{i,j} = d_i XOR p_{h,i} (virtual zero input at
            # a strand start).
            data = DataId(index)
            if available(data):
                h = input_index(index, strand_class, params)
                parity = ParityId(h, strand_class) if h >= 1 else None
                if parity is None or available(parity):
                    steps.append(RepairPlanStep(block_id, data, parity))
                    continue
            # Right dp-tuple: p_{i,j} = d_j XOR p_{j,k}, once node j exists.
            j = output_index(index, strand_class, params)
            if j <= size:
                data = DataId(j)
                if available(data):
                    parity = ParityId(j, strand_class)
                    if available(parity):
                        steps.append(RepairPlanStep(block_id, data, parity))
    return steps


def plan_inputs(steps: Iterable[RepairPlanStep]) -> List[BlockId]:
    """The unique input blocks a plan consumes, in first-use order."""
    seen: Dict[BlockId, None] = {}
    setdefault = seen.setdefault
    for step in steps:
        if step.first is not None:
            setdefault(step.first, None)
        if step.second is not None:
            setdefault(step.second, None)
    return list(seen)


def execute_plan(
    steps: List[RepairPlanStep],
    payload_of: Callable[[BlockId], Payload],
    block_size: int,
) -> Dict[BlockId, Payload]:
    """Reconstruct every planned target in one matrix XOR pass.

    ``payload_of`` must return the payload of every input named by the plan
    (the caller bulk-fetched them).  Returns ``{target: payload}``; each
    payload is a row of the freshly allocated result matrix, so inputs --
    including read-only zero-copy views from mmap-backed backends -- are
    never mutated.
    """
    if not steps:
        return {}
    firsts = gather_payload_matrix(
        [None if step.first is None else payload_of(step.first) for step in steps],
        block_size,
    )
    seconds = gather_payload_matrix(
        [None if step.second is None else payload_of(step.second) for step in steps],
        block_size,
    )
    xor_into(firsts, seconds)
    return {step.target: firsts[row] for row, step in enumerate(steps)}


def count_new_reads(
    steps: Iterable[RepairPlanStep], already_read: set
) -> Tuple[int, set]:
    """How many distinct not-yet-counted inputs this plan consumes.

    Returns the count and the set of newly counted block ids; the caller
    merges them into its running ``already_read`` set so a surviving block
    feeding several dependent repairs -- within a round or across rounds --
    is accounted once.
    """
    fresh = {
        block_id
        for step in steps
        for block_id in (step.first, step.second)
        if block_id is not None and block_id not in already_read
    }
    return len(fresh), fresh
