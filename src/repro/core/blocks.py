"""Block identities and payload-carrying blocks.

The helical lattice distinguishes two kinds of blocks (paper, Fig. 3):

* **d-blocks** (data blocks) are the lattice nodes, identified by their
  position ``i >= 1``;
* **p-blocks** (parity blocks) are the lattice edges.  Each node creates
  exactly one parity per strand class when it is entangled, so the pair
  ``(creator index, strand class)`` identifies a parity uniquely.  The edge
  notation ``p_{i,j}`` of the paper is recovered through the output rules of
  Table II.

Identifiers are small frozen dataclasses so they can be used as dictionary
keys, stored in placement tables and serialised cheaply.
"""

from __future__ import annotations

import hashlib
import zlib
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Union

import numpy as np

from repro.core.parameters import StrandClass
from repro.core.xor import Payload, as_payload, payload_to_bytes
from repro.exceptions import BlockSizeMismatchError


@dataclass(frozen=True, order=True, slots=True)
class DataId:
    """Identifier of a data block (a lattice node)."""

    index: int

    def label(self) -> str:
        return f"d{self.index}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.label()


@dataclass(frozen=True, order=True, slots=True)
class ParityId:
    """Identifier of a parity block (a lattice edge).

    ``index`` is the creator node and ``strand_class`` the class of the strand
    the parity extends.  The second endpoint of the edge depends on the code
    parameters and is provided by the lattice (:meth:`HelicalLattice.edge_endpoints`).
    """

    index: int
    strand_class: StrandClass

    def label(self) -> str:
        return f"p[{self.index},{self.strand_class.value}]"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.label()


BlockId = Union[DataId, ParityId]


def is_data(block_id: BlockId) -> bool:
    """True when ``block_id`` identifies a data block."""
    return isinstance(block_id, DataId)


def is_parity(block_id: BlockId) -> bool:
    """True when ``block_id`` identifies a parity block."""
    return isinstance(block_id, ParityId)


@dataclass
class Block:
    """A block identifier together with its payload bytes."""

    block_id: BlockId
    payload: Payload

    def __post_init__(self) -> None:
        self.payload = as_payload(self.payload)

    @property
    def size(self) -> int:
        return int(self.payload.size)

    def to_bytes(self, length: int | None = None) -> bytes:
        return payload_to_bytes(self.payload, length)

    def checksum(self) -> int:
        """CRC32 of the payload, used for integrity verification."""
        return zlib.crc32(self.payload.tobytes())

    def digest(self) -> str:
        """SHA-256 hex digest of the payload (content addressing / keys)."""
        return hashlib.sha256(self.payload.tobytes()).hexdigest()


@dataclass
class EncodedBlock:
    """Result of entangling one data block: the data block and its alpha parities."""

    data: Block
    parities: List[Block] = field(default_factory=list)

    @property
    def data_id(self) -> DataId:
        return self.data.block_id  # type: ignore[return-value]

    @property
    def parity_ids(self) -> List[ParityId]:
        return [parity.block_id for parity in self.parities]  # type: ignore[list-item]

    def all_blocks(self) -> List[Block]:
        return [self.data, *self.parities]


def split_into_blocks(data: bytes, block_size: int) -> List[Payload]:
    """Split a byte string into zero-padded payloads of ``block_size`` bytes.

    The final block is padded with zeros; callers should record the original
    length to strip the padding on reassembly (see :func:`join_blocks`).
    """
    if block_size <= 0:
        raise BlockSizeMismatchError("block_size must be positive")
    if not data:
        return []
    chunks: List[Payload] = []
    for offset in range(0, len(data), block_size):
        chunk = data[offset : offset + block_size]
        chunks.append(as_payload(chunk, block_size))
    return chunks


def join_blocks(payloads: Sequence[Payload], original_length: int | None = None) -> bytes:
    """Reassemble payloads produced by :func:`split_into_blocks`."""
    if not payloads:
        return b""
    joined = np.concatenate([as_payload(payload) for payload in payloads]).tobytes()
    if original_length is not None:
        return joined[:original_length]
    return joined


def block_ids(blocks: Iterable[Block]) -> List[BlockId]:
    """Convenience: extract the identifiers from an iterable of blocks."""
    return [block.block_id for block in blocks]
