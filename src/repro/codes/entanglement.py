"""Alpha entanglement behind the scheme-agnostic redundancy protocol.

:class:`EntanglementScheme` wraps the helical-lattice machinery -- the
vectorised :class:`~repro.core.encoder.BatchEntangler` on the write path and
the :class:`~repro.core.decoder.Decoder` on the read/repair path -- behind
the :class:`~repro.schemes.base.RedundancyScheme` interface, so the storage
front-end can drive AE codes and the stripe-code baselines through the same
verbs.  The scheme is *streaming*: the lattice grows with every encoded
batch, parities chain across documents, and blocks are never physically
deleted (paper, Sec. III-B: deletions happen only at the beginning of the
mesh).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.batch_repair import execute_plan, plan_inputs, plan_round
from repro.core.blocks import BlockId, ParityId, is_data, is_parity
from repro.core.decoder import Decoder
from repro.core.encoder import DEFAULT_BLOCK_SIZE, BatchEntangler
from repro.core.lattice import HelicalLattice
from repro.core.parameters import AEParameters
from repro.core.puncturing import PuncturedCode, puncture_rate
from repro.core.xor import Payload, PayloadBatch
from repro.exceptions import InvalidParametersError
from repro.schemes.base import (
    BlockFetcher,
    EncodedPart,
    RedundancyScheme,
    SchemeCapabilities,
    SchemeRepairOutcome,
)

__all__ = [
    "EntanglementScheme",
    "PuncturedEntanglementScheme",
    "ae_scheme_id",
    "punctured_scheme_id",
]


def _sort_key(block_id: BlockId) -> Tuple[int, int, str]:
    if is_data(block_id):
        return (block_id.index, 0, "")
    return (block_id.index, 1, block_id.strand_class.value)


def ae_scheme_id(params: AEParameters) -> str:
    """The registry identifier of an AE setting, e.g. ``"ae-3-2-5"``."""
    if params.is_single:
        return "ae-1"
    return f"ae-{params.alpha}-{params.s}-{params.p}"


def punctured_scheme_id(params: AEParameters, keep_fraction: float) -> str:
    """The registry identifier of a rate-punctured AE setting.

    ``ae-3-2-5-p75`` keeps 75% of the parities of AE(3,2,5); the stored
    overhead drops from ``alpha`` towards ``alpha * keep_fraction``.
    """
    return f"{ae_scheme_id(params)}-p{int(round(keep_fraction * 100))}"


class EntanglementScheme(RedundancyScheme):
    """AE(alpha, s, p) entanglement as a pluggable redundancy scheme."""

    def __init__(
        self,
        params: AEParameters,
        block_size: int = DEFAULT_BLOCK_SIZE,
        scheme_id: Optional[str] = None,
    ) -> None:
        super().__init__(scheme_id or ae_scheme_id(params), block_size)
        self._entangler = BatchEntangler(params, block_size)

    @property
    def params(self) -> AEParameters:
        return self._entangler.params

    @property
    def lattice(self) -> HelicalLattice:
        return self._entangler.lattice

    @property
    def entangler(self) -> BatchEntangler:
        return self._entangler

    def capabilities(self) -> SchemeCapabilities:
        params = self.params
        return SchemeCapabilities(
            scheme_id=self.scheme_id,
            name=params.spec(),
            kind="ae",
            storage_overhead=params.storage_overhead,
            single_failure_reads=params.single_failure_cost,
            streaming=True,
            erasable=False,
        )

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def encode(self, payloads: PayloadBatch) -> EncodedPart:
        batch = self._entangler.entangle_batch(payloads)
        return EncodedPart(
            data_ids=list(batch.data_ids), blocks=list(batch.iter_blocks())
        )

    # ------------------------------------------------------------------
    # Read / repair path
    # ------------------------------------------------------------------
    def read_block(self, block_id: object, fetch: BlockFetcher) -> Payload:
        return Decoder(self.lattice, fetch, self._block_size).get(block_id)

    def repair(self, missing: Set[object], fetch: BlockFetcher) -> SchemeRepairOutcome:
        """Round-based lattice repair (paper, Sec. V-C4), executed in bulk.

        Each round is planned against an availability view frozen at the
        round start (:func:`~repro.core.batch_repair.plan_round` picks the
        same pp-/dp-tuples the per-block decoder would), the plan's inputs
        are fetched in one bulk call when the fetcher advertises
        ``try_get_many`` (a :class:`~repro.storage.cluster.ClusterBlockSource`),
        and every target of the round is rebuilt in a single matrix XOR
        pass.  Blocks repaired in one round become inputs of the next.

        ``blocks_read`` counts the *distinct* payloads the run obtained --
        from the source or from the overlay of earlier rounds -- so a
        surviving block feeding several dependent repairs is accounted once.
        """
        outcome = SchemeRepairOutcome()
        pending = {
            block_id for block_id in missing if self.lattice.has_block(block_id)
        }
        outcome.unrecovered = sorted(
            (block_id for block_id in missing if block_id not in pending),
            key=_sort_key,
        )
        overlay: Dict[BlockId, Payload] = {}
        # Source payloads already obtained (``None`` = probed and absent).
        cache: Dict[BlockId, Optional[Payload]] = {}
        consumed: Set[BlockId] = set()
        oracle = getattr(fetch, "is_available", None)
        bulk = getattr(fetch, "try_get_many", None)

        def probed(block_id: BlockId) -> Optional[Payload]:
            """Memoised source fetch: availability probe without an oracle."""
            if block_id not in cache:
                cache[block_id] = fetch(block_id)
            return cache[block_id]

        while pending:
            snapshot = dict(overlay)
            if oracle is not None:

                def available(
                    block_id: BlockId, _snapshot: Dict[BlockId, Payload] = snapshot
                ) -> bool:
                    if block_id in _snapshot:
                        return True
                    if block_id in cache:
                        return cache[block_id] is not None
                    return bool(oracle(block_id))

            else:

                def available(
                    block_id: BlockId, _snapshot: Dict[BlockId, Payload] = snapshot
                ) -> bool:
                    return block_id in _snapshot or probed(block_id) is not None

            steps = plan_round(
                self.lattice, sorted(pending, key=_sort_key), available
            )
            if oracle is not None:
                # The oracle answered the planner without moving payloads;
                # fetch the chosen inputs now, in one grouped call.
                wanted = [
                    block_id
                    for block_id in plan_inputs(steps)
                    if block_id not in snapshot and block_id not in cache
                ]
                if wanted:
                    payloads = (
                        bulk(wanted)
                        if bulk is not None
                        else [fetch(block_id) for block_id in wanted]
                    )
                    cache.update(zip(wanted, payloads))
                # A source dying between the plan and the fetch can leave a
                # step without inputs; its target waits for a later round.
                steps = [
                    step
                    for step in steps
                    if all(
                        block_id in snapshot or cache.get(block_id) is not None
                        for block_id in step.inputs()
                    )
                ]
            if not steps:
                break

            def payload_of(
                block_id: BlockId, _snapshot: Dict[BlockId, Payload] = snapshot
            ) -> Payload:
                payload = _snapshot.get(block_id)
                return payload if payload is not None else cache[block_id]

            recovered = execute_plan(steps, payload_of, self._block_size)
            for step in steps:
                consumed.update(step.inputs())
            overlay.update(recovered)
            pending.difference_update(recovered)
            outcome.rounds += 1
        outcome.recovered = overlay
        obtained = {
            block_id for block_id, payload in cache.items() if payload is not None
        }
        outcome.blocks_read = len(consumed | obtained)
        outcome.unrecovered.extend(sorted(pending, key=_sort_key))
        return outcome

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, object]:
        """The lattice write position; strand heads are rebuilt from storage."""
        return {"blocks_encoded": self._entangler.blocks_encoded}

    def restore_state(self, state: Dict[str, object], fetch: BlockFetcher) -> None:
        """Regrow the lattice and refetch the strand-head parities.

        This is the paper's broker crash recovery (Sec. IV-A): the encoder
        only needs the head parity of each strand, all of which live in
        remote storage, so a durable reopen can continue entangling exactly
        where the closed service stopped.
        """
        blocks_encoded = int(state.get("blocks_encoded", 0))
        self._entangler.restore(blocks_encoded, fetch)

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    def is_data_block(self, block_id: object) -> bool:
        return is_data(block_id)

    def document_blocks(self, data_ids: Sequence[object]) -> List[object]:
        # Parities are shared lattice state and must survive document
        # deletion; only the data handles belong to the document.
        return list(data_ids)


class PuncturedEntanglementScheme(EntanglementScheme):
    """A rate-punctured AE code: some parities are computed but never stored.

    Puncturing (paper, Sec. III-B, "Reducing Storage Overhead") trades fault
    tolerance for intermediate code rates between the ``alpha`` steps: the
    deterministic :func:`~repro.core.puncturing.puncture_rate` policy decides
    per parity identity whether the block is stored, so readers, writers and
    repair agree on the punctured set without extra metadata.  Punctured
    parities behave exactly like missing blocks -- the decoder regenerates
    them on demand during reads and repair -- but they are never written
    back to storage.
    """

    def __init__(
        self,
        params: AEParameters,
        keep_fraction: float,
        block_size: int = DEFAULT_BLOCK_SIZE,
        scheme_id: Optional[str] = None,
    ) -> None:
        if params.is_single:
            raise InvalidParametersError(
                "ae-1 has a single parity chain; puncturing it is data loss, "
                "not a rate change"
            )
        super().__init__(
            params,
            block_size=block_size,
            scheme_id=scheme_id or punctured_scheme_id(params, keep_fraction),
        )
        self._code: PuncturedCode = puncture_rate(params, keep_fraction)
        self._keep_fraction = float(keep_fraction)

    @property
    def punctured_code(self) -> PuncturedCode:
        return self._code

    @property
    def keep_fraction(self) -> float:
        return self._keep_fraction

    def capabilities(self) -> SchemeCapabilities:
        params = self.params
        return SchemeCapabilities(
            scheme_id=self.scheme_id,
            name=f"{params.spec()} p{int(round(self._keep_fraction * 100))}",
            kind="ae",
            # The stored overhead after puncturing; the wiring (and the
            # 2-read single-failure repair of an unpunctured neighbourhood)
            # is unchanged.
            storage_overhead=self._code.effective_overhead(),
            single_failure_reads=params.single_failure_cost,
            streaming=True,
            erasable=False,
        )

    def punctured_parities(self) -> Iterator[ParityId]:
        """Every punctured parity of the lattice encoded so far."""
        for index in range(1, self._entangler.blocks_encoded + 1):
            for strand_class in self.params.strand_classes:
                parity = ParityId(index, strand_class)
                if self._code.is_punctured(parity):
                    yield parity

    # ------------------------------------------------------------------
    # Write path: drop the punctured parities after computing them
    # ------------------------------------------------------------------
    def encode(self, payloads: PayloadBatch) -> EncodedPart:
        part = super().encode(payloads)
        part.blocks = [
            (block_id, payload)
            for block_id, payload in part.blocks
            if is_data(block_id) or not self._code.is_punctured(block_id)
        ]
        return part

    # ------------------------------------------------------------------
    # Repair: regenerate punctured parities as intermediates when needed
    # ------------------------------------------------------------------
    def repair(self, missing: Set[object], fetch: BlockFetcher) -> SchemeRepairOutcome:
        """Batched repair with a punctured-regeneration fallback pass.

        The first pass is the plain round-based repair; targets it cannot
        reach may depend on punctured parities, so a second pass adds the
        punctured set to the plan -- the planner rebuilds those parities as
        intermediate targets -- and the outcome is filtered back to the
        caller's missing set, so regenerated punctured parities are counted
        in ``blocks_read`` but never surface as recovered blocks (nothing
        un-punctures the code by writing them back).
        """
        outcome = super().repair(missing, fetch)
        stuck = [
            block_id
            for block_id in outcome.unrecovered
            if self.lattice.has_block(block_id)
        ]
        if not stuck:
            return outcome
        wanted = set(missing)
        expanded = wanted | set(self.punctured_parities())
        second = super().repair(expanded, fetch)
        second.recovered = {
            block_id: payload
            for block_id, payload in second.recovered.items()
            if block_id in wanted
        }
        second.unrecovered = [
            block_id for block_id in second.unrecovered if block_id in wanted
        ]
        return second

    # ------------------------------------------------------------------
    # Durability: strand heads may be punctured and need regeneration
    # ------------------------------------------------------------------
    def restore_state(self, state: Dict[str, object], fetch: BlockFetcher) -> None:
        size = int(state.get("blocks_encoded", 0))
        if size == 0:
            self._entangler.restore(size, fetch)
            return
        lattice = HelicalLattice(self.params, size)
        decoder = Decoder(lattice, fetch, self._block_size)

        def fetch_or_regenerate(block_id: object) -> Optional[Payload]:
            payload = fetch(block_id)
            if (
                payload is None
                and is_parity(block_id)
                and self._code.is_punctured(block_id)
            ):
                return decoder.get(block_id)
            return payload

        self._entangler.restore(size, fetch_or_regenerate)
