"""Alpha entanglement behind the scheme-agnostic redundancy protocol.

:class:`EntanglementScheme` wraps the helical-lattice machinery -- the
vectorised :class:`~repro.core.encoder.BatchEntangler` on the write path and
the :class:`~repro.core.decoder.Decoder` on the read/repair path -- behind
the :class:`~repro.schemes.base.RedundancyScheme` interface, so the storage
front-end can drive AE codes and the stripe-code baselines through the same
verbs.  The scheme is *streaming*: the lattice grows with every encoded
batch, parities chain across documents, and blocks are never physically
deleted (paper, Sec. III-B: deletions happen only at the beginning of the
mesh).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.core.blocks import BlockId, is_data
from repro.core.decoder import Decoder
from repro.core.encoder import DEFAULT_BLOCK_SIZE, BatchEntangler
from repro.core.lattice import HelicalLattice
from repro.core.parameters import AEParameters
from repro.core.xor import Payload
from repro.exceptions import RepairFailedError
from repro.schemes.base import (
    BlockFetcher,
    CountingFetcher,
    EncodedPart,
    RedundancyScheme,
    SchemeCapabilities,
    SchemeRepairOutcome,
)

__all__ = ["EntanglementScheme", "ae_scheme_id"]


def _sort_key(block_id):
    if is_data(block_id):
        return (block_id.index, 0, "")
    return (block_id.index, 1, block_id.strand_class.value)


def ae_scheme_id(params: AEParameters) -> str:
    """The registry identifier of an AE setting, e.g. ``"ae-3-2-5"``."""
    if params.is_single:
        return "ae-1"
    return f"ae-{params.alpha}-{params.s}-{params.p}"


class EntanglementScheme(RedundancyScheme):
    """AE(alpha, s, p) entanglement as a pluggable redundancy scheme."""

    def __init__(
        self,
        params: AEParameters,
        block_size: int = DEFAULT_BLOCK_SIZE,
        scheme_id: Optional[str] = None,
    ) -> None:
        super().__init__(scheme_id or ae_scheme_id(params), block_size)
        self._entangler = BatchEntangler(params, block_size)

    @property
    def params(self) -> AEParameters:
        return self._entangler.params

    @property
    def lattice(self) -> HelicalLattice:
        return self._entangler.lattice

    @property
    def entangler(self) -> BatchEntangler:
        return self._entangler

    def capabilities(self) -> SchemeCapabilities:
        params = self.params
        return SchemeCapabilities(
            scheme_id=self.scheme_id,
            name=params.spec(),
            kind="ae",
            storage_overhead=params.storage_overhead,
            single_failure_reads=params.single_failure_cost,
            streaming=True,
            erasable=False,
        )

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def encode(self, payloads) -> EncodedPart:
        batch = self._entangler.entangle_batch(payloads)
        return EncodedPart(
            data_ids=list(batch.data_ids), blocks=list(batch.iter_blocks())
        )

    # ------------------------------------------------------------------
    # Read / repair path
    # ------------------------------------------------------------------
    def read_block(self, block_id, fetch: BlockFetcher) -> Payload:
        return Decoder(self.lattice, fetch, self._block_size).get(block_id)

    def repair(self, missing: Set[object], fetch: BlockFetcher) -> SchemeRepairOutcome:
        """Round-based lattice repair (paper, Sec. V-C4).

        Blocks repaired in one round become inputs of the next; within a
        round the decoder only sees blocks available before the round
        started.  Every payload fetched -- from the source or from the
        overlay of earlier rounds -- counts as one read.
        """
        outcome = SchemeRepairOutcome()
        pending = {
            block_id for block_id in missing if self.lattice.has_block(block_id)
        }
        outcome.unrecovered = sorted(
            (block_id for block_id in missing if block_id not in pending),
            key=_sort_key,
        )
        overlay: Dict[BlockId, Payload] = {}
        snapshot: Dict[BlockId, Payload] = {}

        def combined(block_id):
            payload = snapshot.get(block_id)
            return payload if payload is not None else fetch(block_id)

        counter = CountingFetcher(combined)
        while pending:
            snapshot = dict(overlay)
            decoder = Decoder(self.lattice, counter, self._block_size, max_depth=0)
            repaired_this_round: List[BlockId] = []
            for block_id in sorted(pending, key=_sort_key):
                try:
                    payload = decoder.repair(block_id)
                except RepairFailedError:
                    continue
                overlay[block_id] = payload
                repaired_this_round.append(block_id)
            if not repaired_this_round:
                break
            outcome.rounds += 1
            for block_id in repaired_this_round:
                pending.discard(block_id)
        outcome.recovered = overlay
        outcome.blocks_read = counter.reads
        outcome.unrecovered.extend(sorted(pending, key=_sort_key))
        return outcome

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, object]:
        """The lattice write position; strand heads are rebuilt from storage."""
        return {"blocks_encoded": self._entangler.blocks_encoded}

    def restore_state(self, state: Dict[str, object], fetch: BlockFetcher) -> None:
        """Regrow the lattice and refetch the strand-head parities.

        This is the paper's broker crash recovery (Sec. IV-A): the encoder
        only needs the head parity of each strand, all of which live in
        remote storage, so a durable reopen can continue entangling exactly
        where the closed service stopped.
        """
        blocks_encoded = int(state.get("blocks_encoded", 0))
        self._entangler.restore(blocks_encoded, fetch)

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    def is_data_block(self, block_id) -> bool:
        return is_data(block_id)

    def document_blocks(self, data_ids: Sequence[object]) -> List[object]:
        # Parities are shared lattice state and must survive document
        # deletion; only the data handles belong to the document.
        return list(data_ids)
