"""Common interface for stripe-based erasure codes (the paper's baselines).

Alpha entanglement codes do not use stripes, but the codes they are compared
against do: an ``(k, m)`` code splits a source into ``k`` data blocks and adds
``m`` redundant blocks; any ``k`` of the ``n = k + m`` blocks suffice to read
the data (Reed-Solomon) or a weaker combinatorial condition holds (flat XOR
codes, replication).  This module defines the abstract interface shared by the
baseline implementations and the analytic cost model used by Table IV.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.xor import Payload, as_payload
from repro.exceptions import BlockSizeMismatchError, DecodingError


@dataclass(frozen=True)
class CodeCosts:
    """Analytic costs of a redundancy scheme (paper, Table IV)."""

    name: str
    additional_storage_percent: float
    single_failure_cost: int

    def as_row(self) -> Dict[str, object]:
        return {
            "scheme": self.name,
            "additional storage (%)": round(self.additional_storage_percent, 1),
            "single-failure repair (blocks read)": self.single_failure_cost,
        }


class StripeCode(ABC):
    """A systematic ``(k, m)`` stripe code.

    Block positions ``0 .. k-1`` hold data, positions ``k .. n-1`` hold
    redundancy.  Implementations must be deterministic so that encoders and
    decoders agree without shared state.
    """

    def __init__(self, k: int, m: int) -> None:
        if k < 1 or m < 0:
            raise DecodingError(f"invalid stripe configuration k={k}, m={m}")
        self._k = k
        self._m = m

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        """Number of data blocks per stripe."""
        return self._k

    @property
    def m(self) -> int:
        """Number of redundant blocks per stripe."""
        return self._m

    @property
    def n(self) -> int:
        """Total number of blocks per stripe."""
        return self._k + self._m

    @property
    def name(self) -> str:
        return f"{type(self).__name__}({self._k},{self._m})"

    @property
    def storage_overhead(self) -> float:
        """Additional storage as a fraction of the original data, ``m / k``."""
        return self._m / self._k

    @property
    def single_failure_cost(self) -> int:
        """Blocks read to repair one missing block; ``k`` for MDS codes."""
        return self._k

    def costs(self) -> CodeCosts:
        return CodeCosts(
            name=self.name,
            additional_storage_percent=self.storage_overhead * 100.0,
            single_failure_cost=self.single_failure_cost,
        )

    # ------------------------------------------------------------------
    # Coding
    # ------------------------------------------------------------------
    @abstractmethod
    def encode(self, data_blocks: Sequence[Payload]) -> List[Payload]:
        """Compute the ``m`` redundant blocks for ``k`` data blocks."""

    @abstractmethod
    def decode(self, available: Dict[int, Payload]) -> List[Payload]:
        """Recover the ``k`` data blocks from any sufficient subset.

        ``available`` maps stripe positions (0-based, data first) to payloads.
        Raises :class:`DecodingError` when the available set is insufficient.
        """

    def repair(self, position: int, available: Dict[int, Payload]) -> Payload:
        """Rebuild the block at ``position`` from the available blocks."""
        if position in available:
            return as_payload(available[position])
        data = self.decode(available)
        if position < self._k:
            return data[position]
        parities = self.encode(data)
        return parities[position - self._k]

    def can_decode(self, available_positions: Sequence[int]) -> bool:
        """True when the set of available positions is sufficient to decode.

        The default implementation applies the MDS criterion (any ``k``
        blocks); non-MDS codes override it.
        """
        return len(set(available_positions)) >= self._k

    def repair_read_positions(
        self, position: int, available_positions: Sequence[int]
    ) -> Optional[List[int]]:
        """The cheapest set of positions to read to repair ``position``.

        ``available_positions`` lists the stripe positions believed readable.
        Returns ``None`` when they cannot determine the block.  The default
        implements the MDS plan -- any ``k`` surviving blocks -- which makes
        the measured read count of a single-failure repair equal the
        analytic :attr:`single_failure_cost`; locality-aware codes override
        it (LRC reads the local group, flat XOR the smallest parity
        equation, replication one surviving copy).
        """
        candidates = sorted(set(available_positions) - {position})
        if not self.can_decode(candidates):
            return None
        subset = candidates[: self._k]
        return subset if self.can_decode(subset) else candidates

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _normalise_stripe(self, data_blocks: Sequence[Payload]) -> List[Payload]:
        if len(data_blocks) != self._k:
            raise BlockSizeMismatchError(
                f"{self.name} expects {self._k} data blocks, got {len(data_blocks)}"
            )
        payloads = [as_payload(block) for block in data_blocks]
        sizes = {payload.size for payload in payloads}
        if len(sizes) > 1:
            raise BlockSizeMismatchError(
                f"stripe blocks must share one size, got sizes {sorted(sizes)}"
            )
        return payloads
