"""n-way replication, the simplest redundancy scheme.

Replication creates ``n`` parallel recovery paths of one block each
(paper, Fig. 1).  It is used in the evaluation as the upper envelope of
storage overhead: the paper compares against 2-, 3- and 4-way replication,
capping additional storage at 300%.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.codes.base import StripeCode
from repro.core.xor import Payload, as_payload
from repro.exceptions import DecodingError, InvalidParametersError


class ReplicationCode(StripeCode):
    """``n``-way replication expressed as a (1, n-1) stripe code.

    The stripe holds a single data block at position 0 and ``n - 1`` verbatim
    copies at positions 1..n-1.
    """

    def __init__(self, copies: int) -> None:
        if copies < 2:
            raise InvalidParametersError("replication requires at least 2 copies")
        super().__init__(1, copies - 1)
        self._copies = copies

    @property
    def copies(self) -> int:
        """Total number of stored copies, including the original."""
        return self._copies

    @property
    def name(self) -> str:
        return f"{self._copies}-way replication"

    @property
    def single_failure_cost(self) -> int:
        """Repairing a lost copy reads one surviving copy."""
        return 1

    def encode(self, data_blocks: Sequence[Payload]) -> List[Payload]:
        payloads = self._normalise_stripe(data_blocks)
        original = payloads[0]
        return [original.copy() for _ in range(self.m)]

    def decode(self, available: Dict[int, Payload]) -> List[Payload]:
        if not available:
            raise DecodingError("all replicas are unavailable")
        first_position = sorted(available)[0]
        return [as_payload(available[first_position]).copy()]

    def can_decode(self, available_positions: Sequence[int]) -> bool:
        return len(set(available_positions)) >= 1

    def tolerated_failures(self) -> int:
        """Arbitrary failures tolerated: all but one copy may disappear."""
        return self._copies - 1


#: Replication factors evaluated in the paper (up to 300% additional storage).
PAPER_REPLICATION_FACTORS = (2, 3, 4)


def paper_replication_codes() -> List[ReplicationCode]:
    """The replication settings plotted in Figs. 11 and 12."""
    return [ReplicationCode(copies) for copies in PAPER_REPLICATION_FACTORS]
