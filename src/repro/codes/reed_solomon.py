"""Systematic Reed-Solomon codes over GF(2^8).

RS(k, m) is the de-facto industry baseline the paper compares against
(RS(6,3) at Google, RS(10,4) in Facebook's f4, k + m <= 20 at Azure).  The
code is *maximum distance separable*: any ``k`` of the ``n = k + m`` blocks
reconstruct the stripe, and exactly ``k`` blocks must be read to repair a
single failure -- the repair cost the paper contrasts with the constant
2-block repair of entanglement codes.

The implementation uses the classic systematic construction: an ``n x k``
encoding matrix whose top ``k`` rows are the identity, obtained from a
Vandermonde matrix by Gauss-Jordan column reduction.  Encoding multiplies the
parity rows with the data; decoding inverts the ``k x k`` submatrix of the
surviving rows.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.codes.base import StripeCode
from repro.codes.gf256 import (
    GROUP_ORDER,
    gf_dot_bytes,
    gf_matmul,
    gf_matrix_inverse,
    vandermonde_matrix,
)
from repro.core.xor import Payload
from repro.exceptions import DecodingError, InvalidParametersError


def systematic_encoding_matrix(k: int, m: int) -> np.ndarray:
    """Build the ``(k + m) x k`` systematic encoding matrix.

    The first ``k`` rows form the identity (data blocks are stored verbatim);
    the remaining ``m`` rows produce the parities.  Construction: start from a
    Vandermonde matrix and multiply by the inverse of its top square so the
    top becomes the identity; the invertibility of every ``k x k`` submatrix
    is preserved by the column operations.
    """
    if k + m > GROUP_ORDER:
        raise InvalidParametersError(
            f"RS over GF(2^8) supports at most {GROUP_ORDER} blocks per stripe"
        )
    vandermonde = vandermonde_matrix(k + m, k)
    top_inverse = gf_matrix_inverse(vandermonde[:k, :])
    return gf_matmul(vandermonde, top_inverse)


class ReedSolomonCode(StripeCode):
    """Systematic RS(k, m) encoder/decoder."""

    def __init__(self, k: int, m: int) -> None:
        if k < 1 or m < 1:
            raise InvalidParametersError(f"RS requires k >= 1 and m >= 1, got ({k},{m})")
        super().__init__(k, m)
        self._matrix = systematic_encoding_matrix(k, m)

    @property
    def name(self) -> str:
        return f"RS({self.k},{self.m})"

    @property
    def encoding_matrix(self) -> np.ndarray:
        """The full ``n x k`` encoding matrix (read-only copy)."""
        return self._matrix.copy()

    # ------------------------------------------------------------------
    # Coding
    # ------------------------------------------------------------------
    def encode(self, data_blocks: Sequence[Payload]) -> List[Payload]:
        payloads = self._normalise_stripe(data_blocks)
        size = payloads[0].size if payloads else 0
        parities: List[Payload] = []
        for parity_row in range(self.k, self.n):
            coefficients = self._matrix[parity_row, :]
            parities.append(gf_dot_bytes(coefficients, payloads, size))
        return parities

    def decode(self, available: Dict[int, Payload]) -> List[Payload]:
        if len(available) < self.k:
            raise DecodingError(
                f"{self.name} needs {self.k} blocks to decode, only "
                f"{len(available)} available"
            )
        positions = sorted(available)[: self.k]
        payloads = [np.asarray(available[pos], dtype=np.uint8) for pos in positions]
        sizes = {payload.size for payload in payloads}
        if len(sizes) != 1:
            raise DecodingError("available blocks do not share a single size")
        size = sizes.pop()
        submatrix = self._matrix[positions, :]
        inverse = gf_matrix_inverse(submatrix)
        data: List[Payload] = []
        for data_row in range(self.k):
            coefficients = inverse[data_row, :]
            data.append(gf_dot_bytes(coefficients, payloads, size))
        return data

    # ------------------------------------------------------------------
    # Costs
    # ------------------------------------------------------------------
    def repair_bandwidth(self, block_size: int) -> int:
        """Bytes read to repair a single failure: ``k * block_size``."""
        return self.k * block_size

    def tolerated_failures(self) -> int:
        """Arbitrary failures tolerated per stripe: ``m``."""
        return self.m


#: The RS settings evaluated by the paper (Table IV).
PAPER_RS_SETTINGS = ((10, 4), (8, 2), (5, 5), (4, 12))


def paper_rs_codes() -> List[ReedSolomonCode]:
    """Instantiate the four RS settings used in the paper's evaluation."""
    return [ReedSolomonCode(k, m) for k, m in PAPER_RS_SETTINGS]
