"""Flat XOR-based codes.

The minimal-erasure methodology the paper builds on (Wylie & Swaminathan,
DSN'07; Greenan, Miller & Wylie, DSN'08) was originally defined for *flat
XOR codes*: irregular codes in which every parity is the XOR of an arbitrary
subset of the data blocks.  This module implements such codes so that the
analysis framework (:mod:`repro.analysis.erasure_patterns`) can be exercised
against the classic examples, and to provide the geo-replicated "XOR-based
codes at the data-centre level" baseline the introduction mentions.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Tuple

import numpy as np

from repro.codes.base import StripeCode
from repro.core.xor import Payload, xor_many, zero_payload
from repro.exceptions import DecodingError, InvalidParametersError


class FlatXorCode(StripeCode):
    """A flat XOR code defined by one data-subset per parity.

    ``equations[j]`` is the set of data positions XORed to produce parity
    ``j``.  The code is systematic: data occupies positions ``0..k-1`` and
    parity ``j`` occupies position ``k + j``.
    """

    def __init__(self, k: int, equations: Sequence[Sequence[int]]) -> None:
        if k < 1:
            raise InvalidParametersError("flat XOR codes require k >= 1")
        parsed: List[FrozenSet[int]] = []
        for equation in equations:
            members = frozenset(int(position) for position in equation)
            if not members:
                raise InvalidParametersError("parity equations cannot be empty")
            if any(position < 0 or position >= k for position in members):
                raise InvalidParametersError(
                    f"parity equation {sorted(members)} references positions outside 0..{k - 1}"
                )
            parsed.append(members)
        if not parsed:
            raise InvalidParametersError("flat XOR codes require at least one parity")
        super().__init__(k, len(parsed))
        self._equations: Tuple[FrozenSet[int], ...] = tuple(parsed)

    @property
    def equations(self) -> Tuple[FrozenSet[int], ...]:
        return self._equations

    @property
    def name(self) -> str:
        return f"FlatXOR({self.k},{self.m})"

    @property
    def single_failure_cost(self) -> int:
        """Cheapest single-failure repair: the smallest parity equation + 1 reads."""
        smallest = min(len(equation) for equation in self._equations)
        return smallest  # the equation's data blocks (data failure repaired via parity)

    # ------------------------------------------------------------------
    # Coding
    # ------------------------------------------------------------------
    def encode(self, data_blocks: Sequence[Payload]) -> List[Payload]:
        payloads = self._normalise_stripe(data_blocks)
        parities: List[Payload] = []
        for equation in self._equations:
            parities.append(xor_many([payloads[position] for position in sorted(equation)]))
        return parities

    def decode(self, available: Dict[int, Payload]) -> List[Payload]:
        """Iterative (peeling) decoder over the XOR equations.

        Repeatedly finds an equation with exactly one unknown block and solves
        it.  This is the standard decoder for XOR-based irregular codes; it
        fails when every remaining equation has two or more unknowns.
        """
        known: Dict[int, Payload] = {
            position: np.asarray(payload, dtype=np.uint8)
            for position, payload in available.items()
        }
        if not known:
            raise DecodingError("no blocks available")
        size = next(iter(known.values())).size
        progress = True
        while progress and not all(position in known for position in range(self.k)):
            progress = False
            for parity_index, equation in enumerate(self._equations):
                parity_position = self.k + parity_index
                members = set(equation)
                unknown_data = [pos for pos in members if pos not in known]
                if parity_position in known:
                    if len(unknown_data) == 1:
                        missing = unknown_data[0]
                        parts = [known[parity_position]]
                        parts.extend(known[pos] for pos in members if pos != missing)
                        known[missing] = xor_many(parts)
                        progress = True
                else:
                    if not unknown_data:
                        known[parity_position] = (
                            xor_many([known[pos] for pos in members])
                            if members
                            else zero_payload(size)
                        )
                        progress = True
        missing_data = [position for position in range(self.k) if position not in known]
        if missing_data:
            raise DecodingError(
                f"{self.name} peeling decoder cannot recover data positions {missing_data}"
            )
        return [known[position] for position in range(self.k)]

    def can_decode(self, available_positions: Sequence[int]) -> bool:
        """Structural decodability test using the peeling decoder shape."""
        available = set(available_positions)
        known = set(position for position in available if position < self.n)
        progress = True
        while progress and not set(range(self.k)) <= known:
            progress = False
            for parity_index, equation in enumerate(self._equations):
                parity_position = self.k + parity_index
                members = set(equation)
                unknown = [pos for pos in members if pos not in known]
                if parity_position in known and len(unknown) == 1:
                    known.add(unknown[0])
                    progress = True
                elif parity_position not in known and not unknown:
                    known.add(parity_position)
                    progress = True
        return set(range(self.k)) <= known

    def repair_read_positions(
        self, position: int, available_positions: Sequence[int]
    ) -> List[int] | None:
        """Read the smallest fully available parity equation covering
        ``position``; fall back to the peeling decoder's full view."""
        available = set(available_positions) - {position}
        for equation, parity_position in sorted(
            (
                (equation, self.k + parity_index)
                for parity_index, equation in enumerate(self._equations)
            ),
            key=lambda pair: len(pair[0]),
        ):
            if position < self.k:
                if position not in equation:
                    continue
                needed = (set(equation) - {position}) | {parity_position}
            elif parity_position == position:
                needed = set(equation)
            else:
                continue
            if needed <= available:
                return sorted(needed)
        return super().repair_read_positions(position, available_positions)

    def repair(self, position: int, available: Dict[int, Payload]) -> Payload:
        """Rebuild ``position`` from a single parity equation when one is
        fully available, falling back to the peeling decoder otherwise."""
        if position in available:
            return np.asarray(available[position], dtype=np.uint8)
        for parity_index, equation in sorted(
            enumerate(self._equations), key=lambda pair: len(pair[1])
        ):
            parity_position = self.k + parity_index
            if position < self.k:
                if position not in equation:
                    continue
                needed = (set(equation) - {position}) | {parity_position}
            elif parity_position == position:
                needed = set(equation)
            else:
                continue
            if all(member in available for member in needed):
                return xor_many([available[member] for member in sorted(needed)])
        return super().repair(position, available)

    def tolerated_failures(self) -> int:
        """Largest number of arbitrary failures always tolerated (Hamming-style)."""
        for failures in range(1, self.n + 1):
            if not self._tolerates_all(failures):
                return failures - 1
        return self.n

    def _tolerates_all(self, failures: int) -> bool:
        from itertools import combinations

        for erased in combinations(range(self.n), failures):
            remaining = [pos for pos in range(self.n) if pos not in erased]
            if not self.can_decode(remaining):
                return False
        return True


def raid5_code(k: int) -> FlatXorCode:
    """RAID-5 style single parity over ``k`` data blocks."""
    return FlatXorCode(k, [range(k)])


def mirrored_pairs_code(k: int) -> FlatXorCode:
    """Parity-per-block layout equivalent to mirroring each data block."""
    return FlatXorCode(k, [[position] for position in range(k)])


def geo_xor_code() -> FlatXorCode:
    """The geo-replicated XOR arrangement mentioned in the paper's introduction.

    Facebook's warm BLOB storage XORs blocks hosted in two data centres and
    stores the XOR in a third; modelled here as a (2, 1) flat XOR code.
    """
    return FlatXorCode(2, [[0, 1]])
