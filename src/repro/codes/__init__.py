"""Baseline redundancy schemes used in the paper's evaluation.

The subpackage implements the codes AE is compared against: systematic
Reed-Solomon over GF(2^8), n-way replication and flat XOR codes, all behind
the common :class:`repro.codes.base.StripeCode` interface.
"""

from repro.codes.base import CodeCosts, StripeCode
from repro.codes.flat_xor import FlatXorCode, geo_xor_code, mirrored_pairs_code, raid5_code
from repro.codes.lrc import LocalReconstructionCode, azure_lrc, xorbas_lrc
from repro.codes.gf256 import (
    gf_add,
    gf_div,
    gf_inverse,
    gf_matmul,
    gf_matrix_inverse,
    gf_mul,
    gf_mul_bytes,
    gf_pow,
    vandermonde_matrix,
)
from repro.codes.reed_solomon import (
    PAPER_RS_SETTINGS,
    ReedSolomonCode,
    paper_rs_codes,
    systematic_encoding_matrix,
)
from repro.codes.replication import (
    PAPER_REPLICATION_FACTORS,
    ReplicationCode,
    paper_replication_codes,
)

__all__ = [
    "CodeCosts",
    "FlatXorCode",
    "LocalReconstructionCode",
    "PAPER_REPLICATION_FACTORS",
    "PAPER_RS_SETTINGS",
    "ReedSolomonCode",
    "ReplicationCode",
    "StripeCode",
    "azure_lrc",
    "geo_xor_code",
    "gf_add",
    "gf_div",
    "gf_inverse",
    "gf_matmul",
    "gf_matrix_inverse",
    "gf_mul",
    "gf_mul_bytes",
    "gf_pow",
    "mirrored_pairs_code",
    "paper_replication_codes",
    "paper_rs_codes",
    "raid5_code",
    "systematic_encoding_matrix",
    "vandermonde_matrix",
    "xorbas_lrc",
]
