"""Redundancy code implementations and the scheme registry surface.

The subpackage implements every code family of the paper's evaluation:
alpha entanglement (:class:`EntanglementScheme`, the protocol adapter over
the helical lattice) and the stripe-code baselines -- systematic
Reed-Solomon over GF(2^8), Azure/Xorbas Local Reconstruction Codes, flat
XOR codes and n-way replication -- behind the common
:class:`repro.codes.base.StripeCode` interface.  The scheme registry of
:mod:`repro.schemes` is re-exported here (:func:`get_scheme`,
:func:`register_scheme`, :func:`available_schemes`) so ``repro.codes`` is a
one-stop import surface: every class a registry identifier resolves to is
in ``__all__``.
"""

from repro.codes.base import CodeCosts, StripeCode
from repro.codes.flat_xor import FlatXorCode, geo_xor_code, mirrored_pairs_code, raid5_code
from repro.codes.lrc import LocalReconstructionCode, azure_lrc, xorbas_lrc
from repro.codes.gf256 import (
    FIELD_SIZE,
    GROUP_ORDER,
    PRIMITIVE_POLYNOMIAL,
    gf_add,
    gf_div,
    gf_dot_bytes,
    gf_inverse,
    gf_matmul,
    gf_matrix_inverse,
    gf_mul,
    gf_mul_add_bytes,
    gf_mul_bytes,
    gf_pow,
    gf_sub,
    vandermonde_matrix,
)
from repro.codes.reed_solomon import (
    PAPER_RS_SETTINGS,
    ReedSolomonCode,
    paper_rs_codes,
    systematic_encoding_matrix,
)
from repro.codes.replication import (
    PAPER_REPLICATION_FACTORS,
    ReplicationCode,
    paper_replication_codes,
)
from repro.codes.entanglement import (
    EntanglementScheme,
    PuncturedEntanglementScheme,
    ae_scheme_id,
    punctured_scheme_id,
)

#: Names re-exported from :mod:`repro.schemes`; resolved lazily through the
#: module ``__getattr__`` below because repro.schemes imports the concrete
#: code modules of this package (a package-level cycle otherwise).
_SCHEME_EXPORTS = {
    "DEFAULT_SCHEME": "DEFAULT_SCHEME",
    "RedundancyScheme": "RedundancyScheme",
    "SchemeCapabilities": "SchemeCapabilities",
    "StripeBlockId": "StripeBlockId",
    "StripeScheme": "StripeScheme",
    "available_schemes": "available",
    "get_scheme": "get",
    "register_scheme": "register",
}


def __getattr__(name: str) -> object:
    if name in _SCHEME_EXPORTS:
        import repro.schemes as _schemes

        return getattr(_schemes, _SCHEME_EXPORTS[name])
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "CodeCosts",
    "DEFAULT_SCHEME",
    "EntanglementScheme",
    "FIELD_SIZE",
    "FlatXorCode",
    "GROUP_ORDER",
    "LocalReconstructionCode",
    "PAPER_REPLICATION_FACTORS",
    "PAPER_RS_SETTINGS",
    "PRIMITIVE_POLYNOMIAL",
    "PuncturedEntanglementScheme",
    "RedundancyScheme",
    "ReedSolomonCode",
    "ReplicationCode",
    "SchemeCapabilities",
    "StripeBlockId",
    "StripeCode",
    "StripeScheme",
    "ae_scheme_id",
    "available_schemes",
    "azure_lrc",
    "geo_xor_code",
    "get_scheme",
    "gf_add",
    "gf_div",
    "gf_dot_bytes",
    "gf_inverse",
    "gf_matmul",
    "gf_matrix_inverse",
    "gf_mul",
    "gf_mul_add_bytes",
    "gf_mul_bytes",
    "gf_pow",
    "gf_sub",
    "mirrored_pairs_code",
    "paper_replication_codes",
    "paper_rs_codes",
    "punctured_scheme_id",
    "raid5_code",
    "register_scheme",
    "systematic_encoding_matrix",
    "vandermonde_matrix",
    "xorbas_lrc",
]
