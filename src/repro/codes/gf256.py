"""Arithmetic over the Galois field GF(2^8).

Reed-Solomon codes operate over a finite field; storage systems almost always
use GF(2^8) because a field element fits in one byte.  This module implements
the field with the common primitive polynomial ``x^8 + x^4 + x^3 + x^2 + 1``
(0x11d) using exp/log tables, plus the vectorised kernels (numpy) and the
dense linear algebra (matrix multiplication and inversion) needed by the
systematic Reed-Solomon encoder and decoder.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import DecodingError

#: Primitive polynomial used to generate the field.
PRIMITIVE_POLYNOMIAL = 0x11D
#: Number of field elements.
FIELD_SIZE = 256
#: Order of the multiplicative group.
GROUP_ORDER = FIELD_SIZE - 1


def _build_tables() -> tuple:
    exp = np.zeros(2 * GROUP_ORDER, dtype=np.uint8)
    log = np.zeros(FIELD_SIZE, dtype=np.int32)
    value = 1
    for power in range(GROUP_ORDER):
        exp[power] = value
        log[value] = power
        value <<= 1
        if value & 0x100:
            value ^= PRIMITIVE_POLYNOMIAL
    # Duplicate the exp table so that exp[a + b] never needs a modulo.
    exp[GROUP_ORDER : 2 * GROUP_ORDER] = exp[:GROUP_ORDER]
    return exp, log


EXP_TABLE, LOG_TABLE = _build_tables()


def gf_add(a: int, b: int) -> int:
    """Addition in GF(2^8) is XOR."""
    return (a ^ b) & 0xFF


def gf_sub(a: int, b: int) -> int:
    """Subtraction equals addition in a field of characteristic 2."""
    return (a ^ b) & 0xFF


def gf_mul(a: int, b: int) -> int:
    """Multiply two field elements."""
    if a == 0 or b == 0:
        return 0
    return int(EXP_TABLE[int(LOG_TABLE[a]) + int(LOG_TABLE[b])])


def gf_div(a: int, b: int) -> int:
    """Divide ``a`` by ``b``; division by zero is an error."""
    if b == 0:
        raise ZeroDivisionError("division by zero in GF(2^8)")
    if a == 0:
        return 0
    return int(EXP_TABLE[int(LOG_TABLE[a]) - int(LOG_TABLE[b]) + GROUP_ORDER])


def gf_pow(a: int, exponent: int) -> int:
    """Raise ``a`` to an integer power."""
    if exponent == 0:
        return 1
    if a == 0:
        return 0
    power = (int(LOG_TABLE[a]) * exponent) % GROUP_ORDER
    return int(EXP_TABLE[power])


def gf_inverse(a: int) -> int:
    """Multiplicative inverse of ``a``."""
    if a == 0:
        raise ZeroDivisionError("zero has no multiplicative inverse")
    return int(EXP_TABLE[GROUP_ORDER - int(LOG_TABLE[a])])


def gf_mul_bytes(scalar: int, data: np.ndarray) -> np.ndarray:
    """Multiply every byte of ``data`` by ``scalar`` (vectorised)."""
    data = np.asarray(data, dtype=np.uint8)
    if scalar == 0:
        return np.zeros_like(data)
    if scalar == 1:
        return data.copy()
    log_scalar = int(LOG_TABLE[scalar])
    result = np.zeros_like(data)
    nonzero = data != 0
    result[nonzero] = EXP_TABLE[LOG_TABLE[data[nonzero]] + log_scalar]
    return result


def gf_mul_add_bytes(accumulator: np.ndarray, scalar: int, data: np.ndarray) -> np.ndarray:
    """``accumulator ^= scalar * data`` in place; returns the accumulator."""
    if scalar != 0:
        np.bitwise_xor(accumulator, gf_mul_bytes(scalar, data), out=accumulator)
    return accumulator


def gf_matmul(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Matrix multiplication over GF(2^8) (dense, small matrices)."""
    left = np.asarray(left, dtype=np.uint8)
    right = np.asarray(right, dtype=np.uint8)
    if left.shape[1] != right.shape[0]:
        raise DecodingError(
            f"incompatible matrix shapes {left.shape} x {right.shape}"
        )
    rows, inner = left.shape
    cols = right.shape[1]
    result = np.zeros((rows, cols), dtype=np.uint8)
    for r in range(rows):
        for c in range(cols):
            acc = 0
            for t in range(inner):
                acc ^= gf_mul(int(left[r, t]), int(right[t, c]))
            result[r, c] = acc
    return result


def gf_matrix_inverse(matrix: np.ndarray) -> np.ndarray:
    """Invert a square matrix over GF(2^8) by Gauss-Jordan elimination."""
    matrix = np.asarray(matrix, dtype=np.uint8)
    size = matrix.shape[0]
    if matrix.shape != (size, size):
        raise DecodingError(f"matrix of shape {matrix.shape} is not square")
    work = matrix.astype(np.int32)
    identity = np.eye(size, dtype=np.int32)
    augmented = np.concatenate([work, identity], axis=1)
    for column in range(size):
        pivot_row = None
        for row in range(column, size):
            if augmented[row, column] != 0:
                pivot_row = row
                break
        if pivot_row is None:
            raise DecodingError("matrix is singular over GF(2^8)")
        if pivot_row != column:
            augmented[[column, pivot_row]] = augmented[[pivot_row, column]]
        pivot = int(augmented[column, column])
        pivot_inv = gf_inverse(pivot)
        for col in range(2 * size):
            augmented[column, col] = gf_mul(int(augmented[column, col]), pivot_inv)
        for row in range(size):
            if row == column:
                continue
            factor = int(augmented[row, column])
            if factor == 0:
                continue
            for col in range(2 * size):
                augmented[row, col] ^= gf_mul(factor, int(augmented[column, col]))
    return augmented[:, size:].astype(np.uint8)


def vandermonde_matrix(rows: int, cols: int) -> np.ndarray:
    """Vandermonde matrix ``V[r, c] = r^c`` over GF(2^8).

    Any ``cols`` rows of this matrix are linearly independent as long as
    ``rows <= 255``, which is the property Reed-Solomon relies on.
    """
    if rows > GROUP_ORDER:
        raise DecodingError(
            f"a GF(2^8) Vandermonde matrix supports at most {GROUP_ORDER} rows"
        )
    matrix = np.zeros((rows, cols), dtype=np.uint8)
    for r in range(rows):
        for c in range(cols):
            matrix[r, c] = gf_pow(r + 1, c)
    return matrix


def gf_dot_bytes(coefficients: Sequence[int], payloads: Sequence[np.ndarray], size: int) -> np.ndarray:
    """Linear combination ``sum_i coefficients[i] * payloads[i]`` over GF(2^8)."""
    result = np.zeros(size, dtype=np.uint8)
    for coefficient, payload in zip(coefficients, payloads):
        gf_mul_add_bytes(result, int(coefficient), np.asarray(payload, dtype=np.uint8))
    return result
