"""Local Reconstruction Codes (LRC), the locality-aware baseline.

The paper repeatedly contrasts AE codes with "optimal locally repairable
codes" (Section II and Section V-C3: RS(4,12) is "superior to other locally
repairable codes like the HDFS-Xorbas implementation").  To make that
comparison concrete the library ships an Azure-style Local Reconstruction
Code, LRC(k, l, r):

* the ``k`` data blocks are split into ``l`` equally sized local groups;
* each group gets one *local parity* (the XOR of its members);
* ``r`` *global parities* are Reed-Solomon style linear combinations of all
  ``k`` data blocks over GF(2^8).

A single data-block failure is repaired from its local group -- ``k / l``
reads instead of ``k`` -- while up to ``r + 1`` arbitrary failures remain
decodable through the global parities (and many, but not all, larger
patterns; LRC is not MDS).  This gives the benchmark suite a third point on
the locality/storage trade-off curve between RS (no locality) and AE codes
(locality 2 by construction).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.codes.base import StripeCode
from repro.codes.gf256 import gf_dot_bytes, gf_inverse, gf_mul, gf_mul_bytes, gf_pow
from repro.core.xor import Payload, as_payload, xor_many
from repro.exceptions import DecodingError, InvalidParametersError

__all__ = ["LocalReconstructionCode", "azure_lrc", "xorbas_lrc"]


class LocalReconstructionCode(StripeCode):
    """Systematic LRC(k, l, r) over GF(2^8).

    Stripe layout (positions): ``0 .. k-1`` data, ``k .. k+l-1`` local
    parities (one per group, in group order), ``k+l .. k+l+r-1`` global
    parities.
    """

    def __init__(self, k: int, local_groups: int, global_parities: int) -> None:
        if k < 2:
            raise InvalidParametersError("LRC requires at least two data blocks")
        if local_groups < 1 or k % local_groups != 0:
            raise InvalidParametersError(
                f"the number of local groups ({local_groups}) must divide k ({k})"
            )
        if global_parities < 1:
            raise InvalidParametersError("LRC requires at least one global parity")
        if k + local_groups + global_parities > 255:
            raise InvalidParametersError("LRC over GF(2^8) supports at most 255 blocks")
        super().__init__(k, local_groups + global_parities)
        self._local_groups = local_groups
        self._global_parities = global_parities
        self._group_size = k // local_groups
        self._matrix = self._build_matrix()

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return f"LRC({self.k},{self._local_groups},{self._global_parities})"

    @property
    def local_groups(self) -> int:
        """Number of local groups (and local parities)."""
        return self._local_groups

    @property
    def global_parities(self) -> int:
        """Number of global parities."""
        return self._global_parities

    @property
    def group_size(self) -> int:
        """Data blocks per local group."""
        return self._group_size

    @property
    def single_failure_cost(self) -> int:
        """A data-block failure is repaired from its local group: ``k / l`` reads."""
        return self._group_size

    def group_of(self, data_position: int) -> int:
        """Local group index of a data position."""
        if not 0 <= data_position < self.k:
            raise InvalidParametersError(f"data position {data_position} outside 0..{self.k - 1}")
        return data_position // self._group_size

    def group_members(self, group: int) -> range:
        """Data positions belonging to ``group``."""
        if not 0 <= group < self._local_groups:
            raise InvalidParametersError(f"group {group} outside 0..{self._local_groups - 1}")
        start = group * self._group_size
        return range(start, start + self._group_size)

    def local_parity_position(self, group: int) -> int:
        """Stripe position of the local parity protecting ``group``."""
        if not 0 <= group < self._local_groups:
            raise InvalidParametersError(f"group {group} outside 0..{self._local_groups - 1}")
        return self.k + group

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def _build_matrix(self) -> np.ndarray:
        """The ``n x k`` generator matrix: identity, local XOR rows, global rows."""
        matrix = np.zeros((self.n, self.k), dtype=np.uint8)
        matrix[: self.k] = np.eye(self.k, dtype=np.uint8)
        for group in range(self._local_groups):
            for position in self.group_members(group):
                matrix[self.k + group, position] = 1
        for parity in range(self._global_parities):
            # Rows of a Vandermonde-style matrix, offset so that the generator
            # points differ from the ones implicitly used by the local rows.
            for position in range(self.k):
                matrix[self.k + self._local_groups + parity, position] = gf_pow(
                    position + 2, parity + 1
                )
        return matrix

    @property
    def encoding_matrix(self) -> np.ndarray:
        """The full ``n x k`` generator matrix (read-only copy)."""
        return self._matrix.copy()

    def encode(self, data_blocks: Sequence[Payload]) -> List[Payload]:
        payloads = self._normalise_stripe(data_blocks)
        size = payloads[0].size if payloads else 0
        parities: List[Payload] = []
        for group in range(self._local_groups):
            parities.append(xor_many([payloads[pos] for pos in self.group_members(group)]))
        for parity in range(self._global_parities):
            row = self._matrix[self.k + self._local_groups + parity]
            parities.append(gf_dot_bytes(row, payloads, size))
        return parities

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode(self, available: Dict[int, Payload]) -> List[Payload]:
        """Recover the data blocks by GF(2^8) elimination over the available rows.

        Unlike MDS codes, no fixed "any k blocks" rule applies; the decoder
        succeeds exactly when the generator rows of the available blocks span
        the data space.
        """
        if not available:
            raise DecodingError(f"{self.name}: no blocks available")
        positions = sorted(position for position in available if 0 <= position < self.n)
        if not positions:
            raise DecodingError(f"{self.name}: no valid stripe positions available")
        payloads = [np.asarray(available[pos], dtype=np.uint8) for pos in positions]
        sizes = {payload.size for payload in payloads}
        if len(sizes) != 1:
            raise DecodingError("available blocks do not share a single size")
        size = sizes.pop()
        rows = self._matrix[positions, :].astype(np.int32)
        values = [payload.copy() for payload in payloads]
        solution = _solve_gf256(rows, values, self.k, size)
        if solution is None:
            missing = [pos for pos in range(self.k) if pos not in available]
            raise DecodingError(
                f"{self.name}: available blocks do not determine data positions {missing}"
            )
        return solution

    def can_decode(self, available_positions: Sequence[int]) -> bool:
        """True when the available generator rows span the data space."""
        positions = sorted(
            {int(position) for position in available_positions if 0 <= position < self.n}
        )
        if len(positions) < self.k:
            return False
        rows = self._matrix[positions, :].astype(np.int32)
        return _gf256_rank(rows) == self.k

    # ------------------------------------------------------------------
    # Repair helpers
    # ------------------------------------------------------------------
    def local_repair_positions(self, position: int) -> List[int]:
        """Blocks read for the cheap, local repair of ``position``.

        Data blocks and local parities are repaired from their local group;
        global parities require a full decode (all data positions).
        """
        if position < self.k:
            group = self.group_of(position)
            others = [pos for pos in self.group_members(group) if pos != position]
            return others + [self.local_parity_position(group)]
        if position < self.k + self._local_groups:
            group = position - self.k
            return list(self.group_members(group))
        return list(range(self.k))

    def repair_cost(self, position: int) -> int:
        """Number of blocks read by the cheapest repair of ``position``."""
        return len(self.local_repair_positions(position))

    def repair_read_positions(
        self, position: int, available_positions: Sequence[int]
    ) -> List[int] | None:
        """Prefer the local repair group; fall back to a global decode."""
        available = set(available_positions) - {position}
        local = self.local_repair_positions(position)
        if set(local) <= available:
            return list(local)
        return super().repair_read_positions(position, available_positions)

    def repair(self, position: int, available: Dict[int, Payload]) -> Payload:
        """Rebuild ``position``, using the XOR-only local path when possible.

        A data block whose group members and local parity survive -- or a
        local parity whose group survives -- is rebuilt by XORing the local
        group, the ``k / l``-read repair the code exists for; anything else
        falls back to the global GF(2^8) decode of the base class.
        """
        if position in available:
            return as_payload(available[position])
        if position < self.k + self._local_groups:
            local = self.local_repair_positions(position)
            if all(member in available for member in local):
                return xor_many([available[member] for member in local])
        return super().repair(position, available)


# ----------------------------------------------------------------------
# GF(2^8) elimination helpers (rectangular systems)
# ----------------------------------------------------------------------
def _gf256_rank(rows: np.ndarray) -> int:
    """Rank over GF(2^8) of a rectangular coefficient matrix."""
    work = rows.astype(np.int32).copy()
    n_rows, n_cols = work.shape
    rank = 0
    pivot_row = 0
    for col in range(n_cols):
        pivot = None
        for row in range(pivot_row, n_rows):
            if work[row, col] != 0:
                pivot = row
                break
        if pivot is None:
            continue
        if pivot != pivot_row:
            work[[pivot_row, pivot]] = work[[pivot, pivot_row]]
        inv = gf_inverse(int(work[pivot_row, col]))
        for c in range(n_cols):
            work[pivot_row, c] = gf_mul(int(work[pivot_row, c]), inv)
        for row in range(n_rows):
            if row == pivot_row:
                continue
            factor = int(work[row, col])
            if factor == 0:
                continue
            for c in range(n_cols):
                work[row, c] ^= gf_mul(factor, int(work[pivot_row, c]))
        pivot_row += 1
        rank += 1
        if rank == n_cols:
            break
    return rank


def _solve_gf256(
    rows: np.ndarray, values: List[np.ndarray], unknowns: int, size: int
) -> List[Payload] | None:
    """Solve ``rows @ x = values`` over GF(2^8) for the ``unknowns`` data payloads.

    Returns ``None`` when the system does not determine every unknown.
    """
    work = rows.astype(np.int32).copy()
    payloads = [value.astype(np.uint8).copy() for value in values]
    n_rows = work.shape[0]
    pivot_of_column: Dict[int, int] = {}
    pivot_row = 0
    for col in range(unknowns):
        pivot = None
        for row in range(pivot_row, n_rows):
            if work[row, col] != 0:
                pivot = row
                break
        if pivot is None:
            continue
        if pivot != pivot_row:
            work[[pivot_row, pivot]] = work[[pivot, pivot_row]]
            payloads[pivot_row], payloads[pivot] = payloads[pivot], payloads[pivot_row]
        inv = gf_inverse(int(work[pivot_row, col]))
        for c in range(unknowns):
            work[pivot_row, c] = gf_mul(int(work[pivot_row, c]), inv)
        payloads[pivot_row] = gf_mul_bytes(inv, payloads[pivot_row])
        for row in range(n_rows):
            if row == pivot_row:
                continue
            factor = int(work[row, col])
            if factor == 0:
                continue
            for c in range(unknowns):
                work[row, c] ^= gf_mul(factor, int(work[pivot_row, c]))
            np.bitwise_xor(
                payloads[row], gf_mul_bytes(factor, payloads[pivot_row]), out=payloads[row]
            )
        pivot_of_column[col] = pivot_row
        pivot_row += 1
    if len(pivot_of_column) < unknowns:
        return None
    return [payloads[pivot_of_column[col]][:size] for col in range(unknowns)]


# ----------------------------------------------------------------------
# Named configurations
# ----------------------------------------------------------------------
def azure_lrc() -> LocalReconstructionCode:
    """The LRC(12, 2, 2) configuration of Windows Azure Storage."""
    return LocalReconstructionCode(12, 2, 2)


def xorbas_lrc() -> LocalReconstructionCode:
    """The HDFS-Xorbas configuration: RS(10, 4) plus local parities, LRC(10, 2, 4)."""
    return LocalReconstructionCode(10, 2, 4)
