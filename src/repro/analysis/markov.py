"""Continuous-time Markov-chain reliability models for disk arrays.

The entangled-mirror recap of Section IV-B1 and the discussion of rebuild
windows in Section IV-B2 rest on the classic reliability arguments for disk
arrays: drives fail at a rate ``lambda = 1 / MTTF``, are rebuilt at a rate
``mu = 1 / MTTR``, and the array loses data when a second (or ``m+1``-th)
failure lands inside a rebuild window.  This module provides the standard
continuous-time Markov chains (CTMC) for those arguments so that the
Monte-Carlo estimates of :mod:`repro.analysis.reliability` can be
cross-checked analytically:

* :func:`mirrored_pair_chain` -- a single mirrored pair (RAID1);
* :func:`raid5_chain` / :func:`raid6_chain` -- rotating-parity arrays;
* :func:`kofn_chain` -- the general (k, m) MDS code over ``n = k + m`` devices;
* :func:`single_entanglement_chain` -- a birth-death approximation of the
  open entanglement chain in which data loss requires three overlapping
  failures (the paper's primitive form I, |ME(2)| = 3).

Two quantities are computed from a chain:

* :func:`mttdl` -- the mean time to data loss, from the fundamental matrix of
  the transient states;
* :func:`loss_probability` -- the probability that the absorbing data-loss
  state has been reached within a horizon (via the matrix exponential).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np
from scipy import linalg

from repro.exceptions import InvalidParametersError

__all__ = [
    "HOURS_PER_YEAR",
    "MarkovModel",
    "mirrored_pair_chain",
    "raid5_chain",
    "raid6_chain",
    "kofn_chain",
    "single_entanglement_chain",
    "mttdl",
    "loss_probability",
    "five_year_loss_table",
    "array_loss_probability",
]

HOURS_PER_YEAR = 24.0 * 365.0


@dataclass(frozen=True)
class MarkovModel:
    """A CTMC with one absorbing data-loss state (the last state).

    ``generator`` is the full generator matrix Q (rows sum to zero); state 0
    is the fully operational state and the final state is absorbing data loss.
    """

    name: str
    generator: np.ndarray
    state_labels: Sequence[str]

    def __post_init__(self) -> None:
        q = np.asarray(self.generator, dtype=float)
        if q.ndim != 2 or q.shape[0] != q.shape[1]:
            raise InvalidParametersError("the generator matrix must be square")
        if q.shape[0] < 2:
            raise InvalidParametersError("a reliability chain needs at least two states")
        row_sums = np.abs(q.sum(axis=1))
        if np.any(row_sums > 1e-6):
            raise InvalidParametersError("generator rows must sum to zero")
        if np.any(np.abs(q[-1]) > 1e-12):
            raise InvalidParametersError("the last state must be absorbing")
        if len(self.state_labels) != q.shape[0]:
            raise InvalidParametersError("one label per state is required")

    @property
    def states(self) -> int:
        return int(np.asarray(self.generator).shape[0])

    @property
    def transient_states(self) -> int:
        return self.states - 1

    def transient_generator(self) -> np.ndarray:
        """The sub-generator restricted to the transient (non-absorbing) states."""
        q = np.asarray(self.generator, dtype=float)
        return q[:-1, :-1]


# ----------------------------------------------------------------------
# Chain constructors
# ----------------------------------------------------------------------
def _birth_death_chain(
    name: str,
    failure_rates: Sequence[float],
    repair_rates: Sequence[float],
    labels: Optional[Sequence[str]] = None,
) -> MarkovModel:
    """Build a birth-death chain ``0 -> 1 -> ... -> loss`` with per-state rates.

    ``failure_rates[i]`` is the rate of moving from state ``i`` (``i`` failed
    devices) to state ``i + 1``; ``repair_rates[i]`` is the rate back from
    state ``i + 1`` to ``i``.  The final transition has no repair: the last
    state is absorbing data loss.
    """
    if len(failure_rates) != len(repair_rates) + 1:
        raise InvalidParametersError(
            "expected one more failure rate than repair rates "
            f"(got {len(failure_rates)} and {len(repair_rates)})"
        )
    states = len(failure_rates) + 1
    q = np.zeros((states, states), dtype=float)
    for state, rate in enumerate(failure_rates):
        if rate < 0:
            raise InvalidParametersError("failure rates must be non-negative")
        q[state, state + 1] += rate
    for state, rate in enumerate(repair_rates):
        if rate < 0:
            raise InvalidParametersError("repair rates must be non-negative")
        q[state + 1, state] += rate
    for state in range(states - 1):
        q[state, state] = -q[state].sum()
    if labels is None:
        labels = [f"{failed} failed" for failed in range(states - 1)] + ["data loss"]
    return MarkovModel(name=name, generator=q, state_labels=tuple(labels))


def mirrored_pair_chain(mttf_hours: float, mttr_hours: float) -> MarkovModel:
    """RAID1 pair: data is lost when the second drive fails during a rebuild."""
    _check_times(mttf_hours, mttr_hours)
    failure = 1.0 / mttf_hours
    repair = 1.0 / mttr_hours
    return _birth_death_chain(
        "mirrored pair",
        failure_rates=[2.0 * failure, failure],
        repair_rates=[repair],
        labels=("both up", "one failed", "data loss"),
    )


def raid5_chain(disks: int, mttf_hours: float, mttr_hours: float) -> MarkovModel:
    """RAID5 array of ``disks`` devices: tolerates one concurrent failure."""
    if disks < 3:
        raise InvalidParametersError("RAID5 requires at least 3 disks")
    _check_times(mttf_hours, mttr_hours)
    failure = 1.0 / mttf_hours
    repair = 1.0 / mttr_hours
    return _birth_death_chain(
        f"RAID5({disks})",
        failure_rates=[disks * failure, (disks - 1) * failure],
        repair_rates=[repair],
        labels=("all up", "degraded", "data loss"),
    )


def raid6_chain(disks: int, mttf_hours: float, mttr_hours: float) -> MarkovModel:
    """RAID6 array of ``disks`` devices: tolerates two concurrent failures."""
    if disks < 4:
        raise InvalidParametersError("RAID6 requires at least 4 disks")
    _check_times(mttf_hours, mttr_hours)
    failure = 1.0 / mttf_hours
    repair = 1.0 / mttr_hours
    return _birth_death_chain(
        f"RAID6({disks})",
        failure_rates=[disks * failure, (disks - 1) * failure, (disks - 2) * failure],
        repair_rates=[repair, repair],
        labels=("all up", "1 failed", "2 failed", "data loss"),
    )


def kofn_chain(k: int, m: int, mttf_hours: float, mttr_hours: float) -> MarkovModel:
    """General MDS (k, m) stripe over ``n = k + m`` devices.

    The stripe survives any ``m`` concurrent failures; the ``m + 1``-th
    failure before a repair completes loses data.  Repairs proceed one device
    at a time (single repair server), matching the classic conservative model.
    """
    if k < 1 or m < 0:
        raise InvalidParametersError(f"invalid (k, m) = ({k}, {m})")
    _check_times(mttf_hours, mttr_hours)
    n = k + m
    failure = 1.0 / mttf_hours
    repair = 1.0 / mttr_hours
    failure_rates = [(n - failed) * failure for failed in range(m + 1)]
    repair_rates = [repair] * m
    labels = [f"{failed} failed" for failed in range(m + 1)] + ["data loss"]
    return _birth_death_chain(f"RS({k},{m})", failure_rates, repair_rates, labels)


def single_entanglement_chain(
    drive_pairs: int, mttf_hours: float, mttr_hours: float
) -> MarkovModel:
    """Open entanglement chain (full-partition entangled mirror), approximated.

    The smallest irrecoverable pattern of a single entanglement involves three
    blocks: two adjacent data drives and the parity drive between them
    (primitive form I, Fig. 6).  We model the array as a birth-death chain in
    which the first and second concurrent failures are always survivable and
    the third failure loses data only if it completes one of the
    ``3 * (pairs - 1)`` bad triples among the ``C(2 * pairs, 3)`` possible
    triples; the loss transition rate is scaled by that conditional
    probability, the remaining rate flows to a survivable 3-failure state that
    immediately repairs back.  This matches the Monte-Carlo estimate of
    :func:`repro.analysis.reliability.simulate_layout` to first order.
    """
    if drive_pairs < 2:
        raise InvalidParametersError("an entanglement chain needs at least two pairs")
    _check_times(mttf_hours, mttr_hours)
    drives = 2 * drive_pairs
    failure = 1.0 / mttf_hours
    repair = 1.0 / mttr_hours
    triples_total = drives * (drives - 1) * (drives - 2) / 6.0
    # Bad triples: (d_i, p_i, d_{i+1}) for consecutive data drives, plus the two
    # chain extremities where a data/parity double suffices; the dominant term
    # is the interior triple count.
    triples_bad = 3.0 * (drive_pairs - 1)
    loss_fraction = min(triples_bad / max(triples_total, 1.0), 1.0)
    third_failure_rate = (drives - 2) * failure
    q = np.zeros((5, 5), dtype=float)
    labels = ("all up", "1 failed", "2 failed", "3 failed (survivable)", "data loss")
    # state 0 -> 1
    q[0, 1] = drives * failure
    # state 1 -> 2 and repair back
    q[1, 2] = (drives - 1) * failure
    q[1, 0] = repair
    # state 2 -> loss (bad triple) or survivable 3-failure state; repair back
    q[2, 4] = third_failure_rate * loss_fraction
    q[2, 3] = third_failure_rate * (1.0 - loss_fraction)
    q[2, 1] = repair
    # state 3: repairs bring the array back towards state 2; a further failure
    # is treated (conservatively) as data loss.
    q[3, 2] = repair
    q[3, 4] = (drives - 3) * failure
    for state in range(4):
        q[state, state] = -q[state].sum()
    return MarkovModel(
        name=f"entangled mirror ({drive_pairs} pairs)", generator=q, state_labels=labels
    )


def _check_times(mttf_hours: float, mttr_hours: float) -> None:
    if mttf_hours <= 0 or mttr_hours <= 0:
        raise InvalidParametersError("MTTF and MTTR must be positive")


# ----------------------------------------------------------------------
# Quantities of interest
# ----------------------------------------------------------------------
def mttdl(model: MarkovModel) -> float:
    """Mean time to data loss starting from the fully operational state.

    For a CTMC with transient sub-generator ``T`` the expected absorption
    times satisfy ``T t = -1``; the MTTDL is the component of ``t`` for the
    initial state.  Birth-death chains (all the RAID/MDS chains built here)
    are detected and evaluated with the stable positive-sum recurrence
    ``T_i = 1/lambda_i + (mu_i / lambda_i) * T_{i-1}`` instead, because the
    direct linear solve loses all precision once the MTTDL exceeds ~1e15
    repair times (e.g. RS settings with a dozen parities).
    """
    q = np.asarray(model.generator, dtype=float)
    if _is_birth_death(q):
        return _birth_death_mttdl(q)
    transient = model.transient_generator()
    ones = -np.ones(transient.shape[0])
    times = np.linalg.solve(transient, ones)
    return float(times[0])


def _is_birth_death(q: np.ndarray) -> bool:
    """True when the chain only moves between adjacent states (tridiagonal Q)."""
    states = q.shape[0]
    for row in range(states):
        for col in range(states):
            if abs(row - col) > 1 and abs(q[row, col]) > 0.0:
                return False
    return True


def _birth_death_mttdl(q: np.ndarray) -> float:
    """Stable mean absorption time of a birth-death chain (absorbing last state).

    ``T_i`` is the expected time to move from transient state ``i`` to
    ``i + 1`` for the first time; the MTTDL from state 0 is the sum of all
    ``T_i``.  Every term is positive, so no cancellation occurs.
    """
    transient = q.shape[0] - 1
    total = 0.0
    previous = 0.0
    for state in range(transient):
        up = float(q[state, state + 1])
        down = float(q[state, state - 1]) if state > 0 else 0.0
        if up <= 0.0:
            raise InvalidParametersError(
                "birth-death MTTDL requires a positive up-rate in every transient state"
            )
        current = 1.0 / up + (down / up) * previous
        total += current
        previous = current
    return total


def loss_probability(model: MarkovModel, hours: float) -> float:
    """Probability that data loss occurred within ``hours``.

    Computed as ``1 - sum(exp(T * hours)[0, :])`` where ``T`` is the transient
    sub-generator: the probability mass that has left the transient states.
    """
    if hours < 0:
        raise InvalidParametersError("the horizon must be non-negative")
    transient = model.transient_generator()
    surviving = linalg.expm(transient * hours)[0].sum()
    return float(min(max(1.0 - surviving, 0.0), 1.0))


def array_loss_probability(model: MarkovModel, hours: float, independent_groups: int) -> float:
    """Loss probability of ``independent_groups`` identical, independent chains.

    Used to scale a per-pair or per-stripe chain up to a full array (e.g. a
    mirrored array of ``n`` independent pairs)."""
    if independent_groups < 1:
        raise InvalidParametersError("independent_groups must be >= 1")
    per_group = loss_probability(model, hours)
    return 1.0 - (1.0 - per_group) ** independent_groups


def five_year_loss_table(
    mttf_hours: float = 50_000.0,
    mttr_hours: float = 168.0,
    drive_pairs: int = 10,
) -> List[Dict[str, object]]:
    """Analytic counterpart of the Section IV-B1 five-year comparison.

    Returns one row per layout with the 5-year loss probability and MTTDL.
    Mirroring is modelled as ``drive_pairs`` independent RAID1 chains; the
    entangled mirror uses the chain approximation of
    :func:`single_entanglement_chain` over the whole array.
    """
    horizon = 5.0 * HOURS_PER_YEAR
    mirror = mirrored_pair_chain(mttf_hours, mttr_hours)
    entangled = single_entanglement_chain(drive_pairs, mttf_hours, mttr_hours)
    rows: List[Dict[str, object]] = [
        {
            "layout": "mirroring",
            "drives": 2 * drive_pairs,
            "5-year loss probability": array_loss_probability(mirror, horizon, drive_pairs),
            # Array-level MTTDL: the first pair to die ends the array, so the
            # per-pair MTTDL divides by the number of independent pairs.
            "MTTDL (years)": mttdl(mirror) / HOURS_PER_YEAR / drive_pairs,
        },
        {
            "layout": "entangled mirror (open chain)",
            "drives": 2 * drive_pairs,
            "5-year loss probability": loss_probability(entangled, horizon),
            "MTTDL (years)": mttdl(entangled) / HOURS_PER_YEAR,
        },
    ]
    return rows
