"""Analytic studies: fault tolerance, write performance and reliability.

* :mod:`repro.analysis.erasure_patterns` -- minimal erasure (ME) patterns,
  validation and exact search (Figs. 6 and 7);
* :mod:`repro.analysis.fault_tolerance` -- cross-setting |ME(x)| study
  (Figs. 8 and 9);
* :mod:`repro.analysis.write_performance` -- sealed-bucket write scheduling
  (Fig. 10);
* :mod:`repro.analysis.reliability` -- 5-year reliability of entangled mirror
  arrays (Sec. IV-B1);
* :mod:`repro.analysis.mel` -- Minimal Erasures List and fault-tolerance
  vectors over a generic Tanner-graph model (the Wylie/Greenan methodology
  the paper's Sec. V-A metrics derive from);
* :mod:`repro.analysis.markov` -- analytic Markov-chain reliability models
  (MTTDL, horizon loss probability) cross-checking the Monte-Carlo results;
* :mod:`repro.analysis.repair_cost` -- repair bandwidth / I/O accounting per
  scheme (the byte-level view of Fig. 13 and the single-failure cost rows of
  Table IV).
"""

from repro.analysis.erasure_patterns import (
    ErasurePattern,
    MinimalErasureResult,
    find_minimal_erasure,
    is_irrecoverable,
    is_minimal_erasure,
    minimal_erasure_size,
    minimal_pattern_for_nodes,
    primitive_form_one,
    primitive_form_two,
    recoverable_blocks,
)
from repro.analysis.fault_tolerance import (
    FIGURE8_P_RANGE,
    FIGURE8_SETTINGS,
    MECurve,
    complex_form_catalogue,
    cube_pattern,
    fault_tolerance_report,
    me2_family_size,
    me4_family_size,
    me_curves,
    me_size,
)
from repro.analysis.markov import (
    MarkovModel,
    array_loss_probability,
    five_year_loss_table,
    kofn_chain,
    loss_probability,
    mirrored_pair_chain,
    mttdl,
    raid5_chain,
    raid6_chain,
    single_entanglement_chain,
)
from repro.analysis.mel import (
    FaultToleranceVector,
    MinimalErasure,
    MinimalErasuresList,
    TannerGraph,
    ae_window_flat_code,
    ae_window_graph,
    gf2_rank,
    gf2_solvable,
)
from repro.analysis.reliability import (
    DriveModel,
    ReliabilityResult,
    analytic_mirror_loss,
    five_year_comparison,
    simulate_layout,
)
from repro.analysis.repair_cost import (
    RepairCost,
    SchemeRepairModel,
    ae_repair_model,
    disaster_traffic_table,
    repair_model_for,
    replication_repair_model,
    rs_repair_model,
    single_failure_table,
)
from repro.analysis.write_performance import (
    WritePerformancePoint,
    compare_settings,
    evaluate_setting,
    figure10_comparison,
    full_write_memory,
)

__all__ = [
    "DriveModel",
    "ErasurePattern",
    "FIGURE8_P_RANGE",
    "FIGURE8_SETTINGS",
    "FaultToleranceVector",
    "MECurve",
    "MarkovModel",
    "MinimalErasure",
    "MinimalErasureResult",
    "MinimalErasuresList",
    "ReliabilityResult",
    "RepairCost",
    "SchemeRepairModel",
    "TannerGraph",
    "WritePerformancePoint",
    "ae_repair_model",
    "ae_window_flat_code",
    "ae_window_graph",
    "analytic_mirror_loss",
    "array_loss_probability",
    "compare_settings",
    "complex_form_catalogue",
    "cube_pattern",
    "disaster_traffic_table",
    "evaluate_setting",
    "fault_tolerance_report",
    "figure10_comparison",
    "find_minimal_erasure",
    "five_year_comparison",
    "five_year_loss_table",
    "full_write_memory",
    "gf2_rank",
    "gf2_solvable",
    "is_irrecoverable",
    "is_minimal_erasure",
    "kofn_chain",
    "loss_probability",
    "me2_family_size",
    "me4_family_size",
    "me_curves",
    "me_size",
    "minimal_erasure_size",
    "minimal_pattern_for_nodes",
    "mirrored_pair_chain",
    "mttdl",
    "primitive_form_one",
    "primitive_form_two",
    "raid5_chain",
    "raid6_chain",
    "recoverable_blocks",
    "repair_model_for",
    "replication_repair_model",
    "rs_repair_model",
    "simulate_layout",
    "single_entanglement_chain",
    "single_failure_table",
]
