"""Repair bandwidth and I/O accounting across redundancy schemes.

The introduction's core complaint about RS(k, m) codes is the cost of single
failures: repairing one lost block of ``B`` bytes requires ``k`` reads and
``k * B`` bytes of network traffic, while alpha entanglement codes always
repair a single failure by XORing exactly two blocks regardless of the code
setting (Section V-C3).  This module turns those statements into an explicit
accounting model so the trade-off can be tabulated and benchmarked:

* per-block repair cost (reads, bytes transferred, XOR operations);
* degraded-read cost (reads needed to serve a block whose location is down);
* disaster repair traffic: given a disaster size and the single-failure
  fraction measured by the simulator (Fig. 13), the expected total bytes
  moved to restore redundancy.

The model is intentionally analytic -- it complements the availability-only
simulator (which counts blocks) with byte-level costs so that the "AE codes
reduce repair costs" claim can be quantified for concrete block sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.parameters import AEParameters
from repro.exceptions import InvalidParametersError
from repro.simulation.metrics import SchemeSpec, describe_scheme

__all__ = [
    "RepairCost",
    "SchemeRepairModel",
    "ae_repair_model",
    "rs_repair_model",
    "replication_repair_model",
    "repair_model_for",
    "single_failure_table",
    "disaster_traffic_table",
]


@dataclass(frozen=True)
class RepairCost:
    """Cost of one repair (or degraded read) in blocks, bytes and operations."""

    scheme: str
    blocks_read: int
    bytes_transferred: int
    xor_operations: int
    io_locations: int

    def as_row(self) -> Dict[str, object]:
        return {
            "scheme": self.scheme,
            "blocks read": self.blocks_read,
            "bytes transferred": self.bytes_transferred,
            "XOR operations": self.xor_operations,
            "locations touched": self.io_locations,
        }


@dataclass(frozen=True)
class SchemeRepairModel:
    """Analytic repair behaviour of one redundancy scheme.

    ``single_failure_reads`` is the number of surviving blocks read to repair
    one missing block; ``rounds_factor`` inflates multi-round repairs (AE codes
    may need several passes after very large disasters, see Table VI) and is
    1.0 for stripe codes which repair each block in one shot.
    """

    name: str
    kind: str
    single_failure_reads: int
    storage_overhead: float
    rounds_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.single_failure_reads < 1:
            raise InvalidParametersError("a repair reads at least one block")
        if self.storage_overhead < 0:
            raise InvalidParametersError("storage overhead cannot be negative")
        if self.rounds_factor < 1.0:
            raise InvalidParametersError("rounds_factor must be >= 1")

    # ------------------------------------------------------------------
    # Per-block costs
    # ------------------------------------------------------------------
    def single_failure_cost(self, block_size: int) -> RepairCost:
        """Repairing one missing block of ``block_size`` bytes."""
        _check_block_size(block_size)
        reads = self.single_failure_reads
        xors = reads - 1 if self.kind != "replication" else 0
        return RepairCost(
            scheme=self.name,
            blocks_read=reads,
            bytes_transferred=reads * block_size,
            xor_operations=xors,
            io_locations=reads,
        )

    def degraded_read_cost(self, block_size: int) -> RepairCost:
        """Serving a read for a block whose location is temporarily down.

        Identical to a single-failure repair except that nothing is written
        back; the returned cost covers the read path only.
        """
        return self.single_failure_cost(block_size)

    # ------------------------------------------------------------------
    # Aggregate disaster costs
    # ------------------------------------------------------------------
    def disaster_traffic(
        self,
        missing_blocks: int,
        block_size: int,
        single_failure_fraction: float = 1.0,
    ) -> Dict[str, object]:
        """Expected traffic to repair ``missing_blocks`` blocks after a disaster.

        ``single_failure_fraction`` is the share of repairs that are plain
        single failures (Fig. 13); the remaining repairs are charged the same
        per-block read cost but multiplied by :attr:`rounds_factor` to account
        for multi-round repairs (AE) or full-stripe decodes (RS).
        """
        if missing_blocks < 0:
            raise InvalidParametersError("missing_blocks cannot be negative")
        _check_block_size(block_size)
        if not 0.0 <= single_failure_fraction <= 1.0:
            raise InvalidParametersError("single_failure_fraction must lie in [0, 1]")
        single = int(round(missing_blocks * single_failure_fraction))
        multi = missing_blocks - single
        per_block = self.single_failure_reads * block_size
        single_bytes = single * per_block
        multi_bytes = int(multi * per_block * self.rounds_factor)
        return {
            "scheme": self.name,
            "missing blocks": missing_blocks,
            "single-failure repairs": single,
            "multi-failure repairs": multi,
            "bytes transferred": single_bytes + multi_bytes,
            "bytes per repaired block": (
                (single_bytes + multi_bytes) / missing_blocks if missing_blocks else 0.0
            ),
        }


def _check_block_size(block_size: int) -> None:
    if block_size < 1:
        raise InvalidParametersError("block_size must be positive")


# ----------------------------------------------------------------------
# Constructors per scheme family
# ----------------------------------------------------------------------
def ae_repair_model(params: AEParameters, expected_rounds: float = 1.0) -> SchemeRepairModel:
    """AE(alpha, s, p): every single failure is repaired by XORing two blocks."""
    return SchemeRepairModel(
        name=params.spec(),
        kind="ae",
        single_failure_reads=params.single_failure_cost,
        storage_overhead=float(params.alpha),
        rounds_factor=max(expected_rounds, 1.0),
    )


def rs_repair_model(k: int, m: int) -> SchemeRepairModel:
    """RS(k, m): any repair reads ``k`` surviving blocks of the stripe."""
    if k < 1 or m < 0:
        raise InvalidParametersError(f"invalid RS setting ({k}, {m})")
    return SchemeRepairModel(
        name=f"RS({k},{m})",
        kind="rs",
        single_failure_reads=k,
        storage_overhead=m / k,
    )


def replication_repair_model(copies: int) -> SchemeRepairModel:
    """n-way replication: a repair copies one surviving replica."""
    if copies < 2:
        raise InvalidParametersError("replication requires at least two copies")
    return SchemeRepairModel(
        name=f"{copies}-way replication",
        kind="replication",
        single_failure_reads=1,
        storage_overhead=float(copies - 1),
    )


def repair_model_for(spec: SchemeSpec, expected_rounds: float = 1.0) -> SchemeRepairModel:
    """Build the repair model matching any scheme specification.

    Resolves through the :mod:`repro.schemes` registry (via
    :func:`~repro.simulation.metrics.describe_scheme`), so every registered
    family -- including LRC and flat XOR -- gets an analytic repair model,
    not just the three the paper tabulates.  ``expected_rounds`` only
    applies to AE codes (stripe codes repair each block in one shot).
    """
    description = describe_scheme(spec)
    rounds_factor = max(expected_rounds, 1.0) if description.kind == "ae" else 1.0
    return SchemeRepairModel(
        name=description.name,
        kind=description.kind,
        single_failure_reads=description.single_failure_cost,
        storage_overhead=description.additional_storage_percent / 100.0,
        rounds_factor=rounds_factor,
    )


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------
def single_failure_table(
    specs: Sequence[SchemeSpec], block_size: int = 4096
) -> List[Dict[str, object]]:
    """Single-failure repair cost (reads / bytes / locations) per scheme."""
    rows: List[Dict[str, object]] = []
    for spec in specs:
        model = repair_model_for(spec)
        row = model.single_failure_cost(block_size).as_row()
        row["additional storage (%)"] = round(model.storage_overhead * 100.0, 1)
        rows.append(row)
    return rows


def disaster_traffic_table(
    specs: Sequence[SchemeSpec],
    missing_blocks: int,
    block_size: int = 4096,
    single_failure_fractions: Optional[Dict[str, float]] = None,
    expected_rounds: Optional[Dict[str, float]] = None,
) -> List[Dict[str, object]]:
    """Total repair traffic per scheme for a disaster of ``missing_blocks``.

    ``single_failure_fractions`` and ``expected_rounds`` can be fed from the
    simulator's Fig. 13 / Table VI outputs (keyed by scheme name); defaults of
    1.0 reproduce the purely analytic comparison.
    """
    fractions = single_failure_fractions or {}
    rounds = expected_rounds or {}
    rows: List[Dict[str, object]] = []
    for spec in specs:
        name = describe_scheme(spec).name
        model = repair_model_for(spec, rounds.get(name, 1.0))
        rows.append(
            model.disaster_traffic(
                missing_blocks,
                block_size,
                fractions.get(name, 1.0),
            )
        )
    return rows
