"""Cross-setting fault-tolerance study (paper, Sec. V-A, Figs. 6-9).

The paper quantifies the benefit of redundancy propagation by comparing the
sizes of minimal erasure patterns across code settings: ``|ME(2)|`` grows with
``s`` and ``p`` (Fig. 8) while ``|ME(4)|`` is pinned at 8 for double
entanglements (the square pattern) and grows with ``s`` for triple
entanglements (Fig. 9).

Two methods are provided for every quantity:

* ``method="search"`` -- the exhaustive searcher of
  :mod:`repro.analysis.erasure_patterns` (the reproduction of the authors'
  Prolog verification).  Searching is exact within its window and occasionally
  finds *smaller* patterns than the structured families the paper reports,
  because the paper explicitly restricts itself to "the most relevant
  patterns".
* ``method="family"`` -- closed-form sizes of the structured pattern families
  the paper describes (chains between two co-strand nodes for ME(2), the
  square/cube for ME(2 alpha)); these reproduce the figures' shapes exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.erasure_patterns import (
    ErasurePattern,
    find_minimal_erasure,
    minimal_pattern_for_nodes,
)
from repro.core.parameters import AEParameters
from repro.exceptions import InvalidParametersError

#: The code settings plotted in Figs. 8 and 9.
FIGURE8_SETTINGS: Tuple[Tuple[int, int], ...] = ((2, 2), (2, 3), (3, 2), (3, 3))
#: The p range of Figs. 8 and 9.
FIGURE8_P_RANGE: Tuple[int, ...] = tuple(range(2, 9))


def me2_family_size(params: AEParameters) -> int:
    """Size of the two-node chain family pattern for ``|ME(2)|``.

    Two data nodes that share every strand are ``s * p`` positions apart; the
    chains between them cost ``p`` horizontal edges plus ``s`` edges per
    helical class, giving ``2 + p + (alpha - 1) * s`` for ``alpha >= 2`` and 3
    for single entanglements.  These are the values the paper reports
    (e.g. 8 for AE(3,1,4) and 14 for AE(3,4,4)).
    """
    if params.alpha == 1:
        return 3
    return 2 + params.p + (params.alpha - 1) * params.s


def me4_family_size(params: AEParameters) -> int:
    """Size of the structured family pattern for ``|ME(4)|``.

    For double entanglements the four nodes of a lattice square and their four
    edges are irrecoverable: size 8, independent of ``s`` and ``p``.  For
    triple entanglements the square's nodes additionally need their
    left-handed strands blocked, which costs about one extra chain of ``s``
    edges per node pair: ``8 + 2 * s``.  (The exhaustive searcher sometimes
    finds smaller, setting-specific patterns; see the EXPERIMENTS notes.)
    """
    if params.alpha == 1:
        # Four data blocks on a single chain: three connecting edges suffice
        # when the nodes are consecutive, plus the closing edge.
        return 4 + 3
    if params.alpha == 2:
        return 8
    return 8 + 2 * params.s


def me_size(
    params: AEParameters,
    data_count: int,
    method: str = "search",
    span: Optional[int] = None,
) -> Optional[int]:
    """``|ME(data_count)|`` for one code setting, by search or family formula."""
    if method == "family":
        if data_count == 2:
            return me2_family_size(params)
        if data_count == 4:
            return me4_family_size(params)
        raise InvalidParametersError(
            "family formulas are only defined for ME(2) and ME(4)"
        )
    if method != "search":
        raise InvalidParametersError(f"unknown method {method!r}")
    return find_minimal_erasure(params, data_count, span=span).size


@dataclass
class MECurve:
    """One curve of Fig. 8 / Fig. 9: |ME(x)| as a function of p."""

    alpha: int
    s: int
    data_count: int
    points: Dict[int, Optional[int]]

    def label(self) -> str:
        return f"AE({self.alpha},{self.s},p)"

    def as_rows(self) -> List[Dict[str, object]]:
        return [
            {"setting": self.label(), "p": p, f"|ME({self.data_count})|": size}
            for p, size in sorted(self.points.items())
        ]


def me_curves(
    data_count: int,
    settings: Sequence[Tuple[int, int]] = FIGURE8_SETTINGS,
    p_values: Sequence[int] = FIGURE8_P_RANGE,
    method: str = "search",
) -> List[MECurve]:
    """Compute the full set of curves of Fig. 8 (``data_count=2``) or Fig. 9 (4)."""
    curves: List[MECurve] = []
    for alpha, s in settings:
        points: Dict[int, Optional[int]] = {}
        for p in p_values:
            if p < s:
                points[p] = None  # invalid setting (p < s deforms the lattice)
                continue
            params = AEParameters(alpha, s, p)
            points[p] = me_size(params, data_count, method=method)
        curves.append(MECurve(alpha=alpha, s=s, data_count=data_count, points=points))
    return curves


def complex_form_catalogue(method: str = "search") -> List[Dict[str, object]]:
    """The complex forms A-D of Fig. 7 plus the primitive form baseline.

    Returns one row per setting with the |ME(2)| value; the paper's reported
    values are 3 (AE(1)), 4 (AE(2,1,1)), 5 (AE(3,1,1)), 8 (AE(3,1,4)) and
    14 (AE(3,4,4)).
    """
    settings = [
        ("primitive form I", AEParameters.single()),
        ("A", AEParameters(2, 1, 1)),
        ("B", AEParameters(3, 1, 1)),
        ("C", AEParameters(3, 1, 4)),
        ("D", AEParameters(3, 4, 4)),
    ]
    rows: List[Dict[str, object]] = []
    for form, params in settings:
        rows.append(
            {
                "form": form,
                "setting": params.spec(),
                "|ME(2)|": me_size(params, 2, method=method),
            }
        )
    return rows


def cube_pattern(params: AEParameters, anchor: Optional[int] = None) -> Optional[ErasurePattern]:
    """The 3D 'cube' pattern behind |ME(8)| = 20 for AE(3,3,3) (paper, Sec. V-A).

    Builds the eight data nodes of two adjacent lattice squares one helical
    step apart and asks the pattern machinery for the minimal closing edge
    set.  Returns ``None`` when the structure does not close for the given
    parameters (e.g. very small lattices).
    """
    if params.alpha < 3:
        return None
    s = params.s
    if anchor is not None:
        base = anchor
    else:
        # Anchor on a central row so none of the cube's generators crosses a
        # top/bottom wrap: the eight nodes are x + {0, s-1, s, s+1} sums, a
        # combinatorial cube with generators (s, s+1, s-1).
        base = 6 * s * max(params.p, 1) + 1
        while s >= 3 and base % s != 2:
            base += 1
    square_one = [base, base + s, base + s + 1, base + 2 * s + 1]
    square_two = [index + s - 1 for index in square_one]
    nodes = sorted(set(square_one + square_two))
    if len(nodes) != 8:
        return None
    return minimal_pattern_for_nodes(nodes, params)


def fault_tolerance_report(
    settings: Iterable[AEParameters], method: str = "search"
) -> List[Dict[str, object]]:
    """|ME(2)| and |ME(4)| side by side for a list of settings."""
    rows: List[Dict[str, object]] = []
    for params in settings:
        rows.append(
            {
                "setting": params.spec(),
                "storage overhead": f"{params.storage_overhead:.0%}",
                "|ME(2)|": me_size(params, 2, method=method),
                "|ME(4)|": me_size(params, 4, method=method),
            }
        )
    return rows
