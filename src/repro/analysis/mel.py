"""Minimal Erasures List (MEL) over a generic GF(2) Tanner-graph model.

The paper's fault-tolerance methodology (Section V-A) is a variation of two
earlier studies on irregular XOR-based codes:

* Wylie & Swaminathan, *Determining fault tolerance of XOR-based erasure codes
  efficiently* (DSN'07) -- the Minimal Erasures List, the enumeration of every
  irreducible erasure pattern a flat XOR code cannot tolerate;
* Greenan, Miller & Wylie, *Reliability of XOR-based erasure codes on
  heterogeneous devices* (DSN'08) -- the fault-tolerance vector derived from
  the MEL.

This module implements both for *any* systematic XOR code expressed as a
:class:`TannerGraph` (data symbols plus parity symbols, each parity being the
XOR of a subset of the data symbols).  Two constructions are provided:

* :func:`TannerGraph.from_flat_code` wraps a :class:`repro.codes.flat_xor.FlatXorCode`;
* :func:`ae_window_graph` flattens a finite window of an AE(alpha, s, p)
  helical lattice into the equivalent flat XOR code (each parity ``p_{i,j}``
  equals the XOR of all data blocks behind it on its strand, because strands
  start from a virtual zero parity).

The second construction is the library's independent cross-check of the
minimal-erasure search in :mod:`repro.analysis.erasure_patterns`: both
approaches must report the same irrecoverability verdict for any erasure
pattern inside the window, and the exhaustive MEL search provides ground
truth for the |ME(x)| sizes reported in Figures 6-9.

Complexity note: the exact MEL is exponential in the erasure size; callers
bound the search with ``max_size`` (patterns larger than the bound are simply
not enumerated, exactly like the paper restricts itself to "the most relevant
patterns").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.codes.flat_xor import FlatXorCode
from repro.core.parameters import AEParameters, StrandClass
from repro.core.rules import input_index
from repro.exceptions import InvalidParametersError

__all__ = [
    "TannerGraph",
    "MinimalErasure",
    "MinimalErasuresList",
    "FaultToleranceVector",
    "ae_window_graph",
    "ae_window_flat_code",
    "gf2_rank",
    "gf2_solvable",
]


# ----------------------------------------------------------------------
# GF(2) linear algebra helpers
# ----------------------------------------------------------------------
def gf2_rank(matrix: np.ndarray) -> int:
    """Rank of a 0/1 matrix over GF(2) by Gaussian elimination."""
    work = np.array(matrix, dtype=np.uint8, copy=True) & 1
    if work.size == 0:
        return 0
    rows, cols = work.shape
    rank = 0
    pivot_row = 0
    for col in range(cols):
        if pivot_row >= rows:
            break
        pivot = None
        for row in range(pivot_row, rows):
            if work[row, col]:
                pivot = row
                break
        if pivot is None:
            continue
        if pivot != pivot_row:
            work[[pivot_row, pivot]] = work[[pivot, pivot_row]]
        eliminate = work[:, col].astype(bool).copy()
        eliminate[pivot_row] = False
        work[eliminate] ^= work[pivot_row]
        pivot_row += 1
        rank += 1
    return rank


def gf2_solvable(matrix: np.ndarray, target: np.ndarray) -> bool:
    """True when ``target`` lies in the row space of ``matrix`` over GF(2)."""
    matrix = np.atleast_2d(np.asarray(matrix, dtype=np.uint8)) & 1
    target = np.asarray(target, dtype=np.uint8).reshape(1, -1) & 1
    if matrix.shape[0] == 0:
        return not target.any()
    base_rank = gf2_rank(matrix)
    extended = np.vstack([matrix, target])
    return gf2_rank(extended) == base_rank


# ----------------------------------------------------------------------
# Tanner graph model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TannerGraph:
    """Systematic XOR code: ``k`` data symbols and one equation per parity.

    Symbol positions follow the :class:`~repro.codes.base.StripeCode`
    convention: ``0 .. k-1`` are data symbols, ``k .. k+m-1`` are parity
    symbols.  ``equations[j]`` is the (frozen) set of data positions XORed to
    produce parity ``j``.
    """

    k: int
    equations: Tuple[FrozenSet[int], ...]
    labels: Tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.k < 1:
            raise InvalidParametersError("a Tanner graph needs at least one data symbol")
        for equation in self.equations:
            bad = [position for position in equation if position < 0 or position >= self.k]
            if bad:
                raise InvalidParametersError(
                    f"parity equation references non-data positions {bad}"
                )
        if self.labels and len(self.labels) != self.n:
            raise InvalidParametersError(
                f"expected {self.n} symbol labels, got {len(self.labels)}"
            )

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        """Number of parity symbols."""
        return len(self.equations)

    @property
    def n(self) -> int:
        """Total number of symbols (data + parity)."""
        return self.k + self.m

    def label(self, position: int) -> str:
        """Human readable name of a symbol position."""
        if self.labels:
            return self.labels[position]
        if position < self.k:
            return f"d{position}"
        return f"p{position - self.k}"

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_flat_code(cls, code: FlatXorCode) -> "TannerGraph":
        """Wrap a :class:`FlatXorCode` (same position convention)."""
        return cls(k=code.k, equations=tuple(frozenset(eq) for eq in code.equations))

    def to_flat_code(self) -> FlatXorCode:
        """Materialise the graph as an encodable/decodable flat XOR code."""
        return FlatXorCode(self.k, [sorted(equation) for equation in self.equations])

    # ------------------------------------------------------------------
    # Generator matrix and erasure analysis
    # ------------------------------------------------------------------
    def generator_matrix(self) -> np.ndarray:
        """The ``n x k`` systematic generator matrix over GF(2)."""
        matrix = np.zeros((self.n, self.k), dtype=np.uint8)
        matrix[: self.k] = np.eye(self.k, dtype=np.uint8)
        for parity_index, equation in enumerate(self.equations):
            for position in equation:
                matrix[self.k + parity_index, position] = 1
        return matrix

    def lost_data(self, erased: Iterable[int]) -> List[int]:
        """Data positions that cannot be recovered when ``erased`` is lost.

        A data symbol is recoverable iff its unit vector lies in the GF(2) row
        space spanned by the surviving symbols (maximum-likelihood erasure
        decoding; strictly stronger than the peeling decoder, matching the
        MEL definition).
        """
        erased_set = set(int(position) for position in erased)
        for position in erased_set:
            if position < 0 or position >= self.n:
                raise InvalidParametersError(
                    f"erased position {position} outside 0..{self.n - 1}"
                )
        generator = self.generator_matrix()
        surviving = np.array(
            [row for position, row in enumerate(generator) if position not in erased_set],
            dtype=np.uint8,
        ).reshape(-1, self.k)
        lost: List[int] = []
        for data_position in sorted(p for p in erased_set if p < self.k):
            unit = np.zeros(self.k, dtype=np.uint8)
            unit[data_position] = 1
            if not gf2_solvable(surviving, unit):
                lost.append(data_position)
        return lost

    def is_irrecoverable(self, erased: Iterable[int]) -> bool:
        """True when the erasure pattern loses at least one data symbol."""
        return bool(self.lost_data(erased))

    def is_minimal_erasure(self, erased: Iterable[int]) -> bool:
        """True when ``erased`` is irrecoverable but no proper subset is.

        This is the paper's irreducibility notion: removing any single block
        from the pattern allows the decoder to recover at least one of the
        previously lost blocks (in fact, for XOR codes, removing one element
        of a minimal erasure makes the whole pattern recoverable).
        """
        erased_set = frozenset(int(position) for position in erased)
        if not self.is_irrecoverable(erased_set):
            return False
        for position in erased_set:
            if self.is_irrecoverable(erased_set - {position}):
                return False
        return True

    # ------------------------------------------------------------------
    # MEL enumeration
    # ------------------------------------------------------------------
    def minimal_erasures(
        self, max_size: int, max_data_loss: Optional[int] = None
    ) -> "MinimalErasuresList":
        """Enumerate every minimal erasure of size at most ``max_size``.

        ``max_data_loss`` optionally restricts the enumeration to patterns
        that lose at most that many data symbols (the paper's ME(x) study
        fixes ``x`` and asks for the smallest pattern).
        """
        if max_size < 1:
            raise InvalidParametersError("max_size must be at least 1")
        found: List[MinimalErasure] = []
        seen: Set[FrozenSet[int]] = set()
        positions = range(self.n)
        for size in range(1, max_size + 1):
            for combo in itertools.combinations(positions, size):
                candidate = frozenset(combo)
                if candidate in seen:
                    continue
                # Skip candidates that contain an already-found minimal erasure:
                # they are irrecoverable but not minimal.
                if any(previous.erased < candidate for previous in found):
                    continue
                lost = self.lost_data(candidate)
                if not lost:
                    continue
                if not self.is_minimal_erasure(candidate):
                    continue
                if max_data_loss is not None and len(lost) > max_data_loss:
                    continue
                seen.add(candidate)
                found.append(
                    MinimalErasure(erased=candidate, lost_data=tuple(sorted(lost)))
                )
        return MinimalErasuresList(graph=self, max_size=max_size, erasures=tuple(found))


# ----------------------------------------------------------------------
# MEL containers and derived metrics
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MinimalErasure:
    """One irreducible erasure pattern and the data symbols it loses."""

    erased: FrozenSet[int]
    lost_data: Tuple[int, ...]

    @property
    def size(self) -> int:
        return len(self.erased)

    @property
    def data_loss(self) -> int:
        return len(self.lost_data)

    def describe(self, graph: TannerGraph) -> str:
        erased = ", ".join(graph.label(position) for position in sorted(self.erased))
        lost = ", ".join(graph.label(position) for position in self.lost_data)
        return f"{{{erased}}} loses {{{lost}}}"


@dataclass(frozen=True)
class MinimalErasuresList:
    """The MEL of a code, bounded by a maximum pattern size."""

    graph: TannerGraph
    max_size: int
    erasures: Tuple[MinimalErasure, ...]

    def __len__(self) -> int:
        return len(self.erasures)

    def __iter__(self) -> Iterator[MinimalErasure]:
        return iter(self.erasures)

    def of_size(self, size: int) -> List[MinimalErasure]:
        """Minimal erasures with exactly ``size`` erased symbols."""
        return [erasure for erasure in self.erasures if erasure.size == size]

    def smallest(self) -> Optional[MinimalErasure]:
        """The smallest minimal erasure found (``None`` if the list is empty)."""
        if not self.erasures:
            return None
        return min(self.erasures, key=lambda erasure: (erasure.size, erasure.data_loss))

    def minimal_erasure_size(self, data_loss: int) -> Optional[int]:
        """|ME(x)|: size of the smallest pattern losing exactly ``data_loss`` data symbols.

        Returns ``None`` when no such pattern exists within ``max_size`` --
        i.e. |ME(x)| is a lower bound witness, not an impossibility proof.
        """
        candidates = [
            erasure.size for erasure in self.erasures if erasure.data_loss == data_loss
        ]
        return min(candidates) if candidates else None

    def size_histogram(self) -> Dict[int, int]:
        """Number of minimal erasures per pattern size (the MEL vector)."""
        histogram: Dict[int, int] = {}
        for erasure in self.erasures:
            histogram[erasure.size] = histogram.get(erasure.size, 0) + 1
        return dict(sorted(histogram.items()))

    def fault_tolerance_vector(self, max_failures: Optional[int] = None) -> "FaultToleranceVector":
        """Greenan-style fault-tolerance vector derived from the MEL.

        Entry ``f`` is the probability that ``f`` erasures chosen uniformly at
        random (without replacement among all ``n`` symbols) are irrecoverable,
        i.e. contain at least one minimal erasure.  The computation enumerates
        ``f``-subsets exactly, so it is intended for the small codes the ME
        study targets.
        """
        limit = max_failures if max_failures is not None else self.max_size
        limit = min(limit, self.graph.n)
        counts: Dict[int, int] = {}
        totals: Dict[int, int] = {}
        positions = range(self.graph.n)
        minimal_sets = [erasure.erased for erasure in self.erasures]
        for failures in range(limit + 1):
            total = 0
            bad = 0
            for combo in itertools.combinations(positions, failures):
                total += 1
                combo_set = frozenset(combo)
                if any(minimal <= combo_set for minimal in minimal_sets):
                    bad += 1
            counts[failures] = bad
            totals[failures] = total
        return FaultToleranceVector(
            irrecoverable_counts=counts, total_counts=totals, symbols=self.graph.n
        )


@dataclass(frozen=True)
class FaultToleranceVector:
    """Probability of data loss conditioned on the number of failed symbols."""

    irrecoverable_counts: Dict[int, int]
    total_counts: Dict[int, int]
    symbols: int

    def probability(self, failures: int) -> float:
        """P(data loss | exactly ``failures`` random symbol erasures)."""
        total = self.total_counts.get(failures, 0)
        if not total:
            return 0.0
        return self.irrecoverable_counts.get(failures, 0) / total

    def hamming_distance(self) -> int:
        """Smallest number of erasures that can cause data loss.

        For an MDS (k, m) code this equals ``m + 1``; irregular codes are
        usually judged by how slowly :meth:`probability` grows past this point.
        """
        for failures in sorted(self.total_counts):
            if self.irrecoverable_counts.get(failures, 0):
                return failures
        return self.symbols + 1

    def as_rows(self) -> List[Dict[str, object]]:
        return [
            {
                "failures": failures,
                "irrecoverable patterns": self.irrecoverable_counts.get(failures, 0),
                "total patterns": self.total_counts.get(failures, 0),
                "P(data loss)": round(self.probability(failures), 6),
            }
            for failures in sorted(self.total_counts)
        ]


# ----------------------------------------------------------------------
# AE lattice window flattening
# ----------------------------------------------------------------------
def _strand_support(
    creator: int, strand_class: StrandClass, params: AEParameters
) -> FrozenSet[int]:
    """Data nodes whose XOR equals parity ``p_{creator, *}`` on ``strand_class``.

    Strands start with a virtual zero parity, so unrolling the recursion
    ``p_{i,j} = d_i XOR p_{h,i}`` yields the XOR of every data node from the
    strand's first node up to ``creator``.
    """
    support: Set[int] = set()
    current = creator
    while current >= 1:
        support.add(current)
        current = input_index(current, strand_class, params)
    return frozenset(support)


def ae_window_graph(params: AEParameters, nodes: int) -> TannerGraph:
    """Flatten the first ``nodes`` positions of an AE lattice into a Tanner graph.

    Data symbol ``i - 1`` (0-based) corresponds to lattice node ``d_i``; every
    parity created by a node inside the window becomes one XOR equation over
    the window's data nodes.  Edges leaving the window are included (their
    creator is inside), edges entering from outside do not exist because the
    window starts at the beginning of the lattice.
    """
    if nodes < 1:
        raise InvalidParametersError("the window must contain at least one node")
    equations: List[FrozenSet[int]] = []
    labels: List[str] = [f"d{index}" for index in range(1, nodes + 1)]
    for creator in range(1, nodes + 1):
        for strand_class in params.strand_classes:
            support = _strand_support(creator, strand_class, params)
            equations.append(frozenset(position - 1 for position in support))
            labels.append(f"p[{creator},{strand_class.value}]")
    return TannerGraph(k=nodes, equations=tuple(equations), labels=tuple(labels))


def ae_window_flat_code(params: AEParameters, nodes: int) -> FlatXorCode:
    """The flattened AE window as an encodable :class:`FlatXorCode`."""
    return ae_window_graph(params, nodes).to_flat_code()
