"""Minimal erasure (ME) patterns: the fault-tolerance analysis of Section V-A.

A *minimal erasure* is an irreducible set of simultaneously lost blocks that
the decoder cannot repair: every block in the set stays lost, and removing any
single block from the set makes at least one of the remaining blocks
repairable again.  The paper characterises patterns by their total size and by
the number of data blocks they contain: ``|ME(x)|`` is the size of the
smallest irrecoverable pattern that loses exactly ``x`` data blocks.  Larger
``|ME(x)|`` means better fault tolerance (more blocks must be lost *in exactly
the wrong places* before data disappears).

Two engines are provided:

* a **validator** that replays the decoder to a fixpoint on an abstract
  availability model and checks irrecoverability and minimality of any
  candidate pattern (the role of the authors' Prolog tool);
* a **searcher** that finds ``|ME(x)|`` exactly.  It exploits the structure of
  minimal patterns: blocking a data block on one strand requires erasing a
  *chain* of consecutive parities along that strand that terminates at another
  erased data block, so a minimal pattern is a set of data nodes plus, for
  every (node, strand) pair, the cheapest such chain.  The searcher enumerates
  candidate data-node sets inside a window (anchored away from the lattice
  boundary so the analysis reflects steady-state behaviour) and minimises the
  union of chain edges with branch and bound.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.blocks import BlockId, DataId, ParityId, is_data
from repro.core.lattice import HelicalLattice
from repro.core.parameters import AEParameters, StrandClass
from repro.core.position import strand_label
from repro.core.rules import input_index, output_index
from repro.exceptions import InvalidParametersError

#: An erased parity edge, identified by (creator node, strand class).
Edge = Tuple[int, StrandClass]


@dataclass(frozen=True)
class ErasurePattern:
    """A set of erased blocks: data node indexes plus parity edges."""

    data_nodes: FrozenSet[int]
    parity_edges: FrozenSet[Edge]

    @property
    def size(self) -> int:
        return len(self.data_nodes) + len(self.parity_edges)

    @property
    def data_count(self) -> int:
        return len(self.data_nodes)

    def block_ids(self) -> List[BlockId]:
        blocks: List[BlockId] = [DataId(index) for index in sorted(self.data_nodes)]
        blocks.extend(
            ParityId(creator, strand_class)
            for creator, strand_class in sorted(
                self.parity_edges, key=lambda edge: (edge[0], edge[1].value)
            )
        )
        return blocks

    def shifted(self, offset: int) -> "ErasurePattern":
        """Translate the pattern by ``offset`` lattice positions."""
        return ErasurePattern(
            data_nodes=frozenset(index + offset for index in self.data_nodes),
            parity_edges=frozenset(
                (creator + offset, strand_class)
                for creator, strand_class in self.parity_edges
            ),
        )

    def describe(self, params: AEParameters) -> str:
        lattice = HelicalLattice(params, max(self.data_nodes | {c for c, _ in self.parity_edges}) + 4 * params.s * max(params.p, 1))
        edges = ", ".join(
            lattice.parity_label(ParityId(creator, strand_class))
            for creator, strand_class in sorted(
                self.parity_edges, key=lambda edge: (edge[0], edge[1].value)
            )
        )
        nodes = ", ".join(f"d{index}" for index in sorted(self.data_nodes))
        return f"|ME({self.data_count})| = {self.size}: nodes {{{nodes}}}, parities {{{edges}}}"


# ----------------------------------------------------------------------
# Validation: decoder fixpoint on an abstract availability model
# ----------------------------------------------------------------------
def recoverable_blocks(
    pattern: ErasurePattern, params: AEParameters, lattice_size: Optional[int] = None
) -> Set[BlockId]:
    """Blocks of ``pattern`` that the decoder can eventually repair.

    Blocks outside the pattern are available.  The decoder iterates to a
    fixpoint: a data node is repairable when, on at least one strand, both
    adjacent parities are available or repaired; a parity is repairable when
    one of its two incident dp-tuples is available or repaired.
    """
    if lattice_size is None:
        margin = 4 * params.s * max(params.p, 1) + 4 * params.s
        top = max(
            [index for index in pattern.data_nodes]
            + [creator for creator, _ in pattern.parity_edges]
            + [1]
        )
        lattice_size = top + margin
    missing_data: Set[int] = set(pattern.data_nodes)
    missing_edges: Set[Edge] = set(pattern.parity_edges)
    recovered: Set[BlockId] = set()

    def data_available(index: int) -> bool:
        return index not in missing_data

    def edge_available(creator: int, strand_class: StrandClass) -> bool:
        if creator < 1:
            return True  # virtual zero parity at a strand start
        if creator > lattice_size:
            return False  # beyond the lattice boundary: parity not created yet
        return (creator, strand_class) not in missing_edges

    progress = True
    while progress:
        progress = False
        for index in sorted(missing_data):
            for strand_class in params.strand_classes:
                h = input_index(index, strand_class, params)
                if edge_available(h, strand_class) and edge_available(index, strand_class):
                    missing_data.discard(index)
                    recovered.add(DataId(index))
                    progress = True
                    break
        for creator, strand_class in sorted(missing_edges, key=lambda e: (e[0], e[1].value)):
            h = input_index(creator, strand_class, params)
            j = output_index(creator, strand_class, params)
            left_ok = data_available(creator) and edge_available(h, strand_class)
            right_ok = (
                j <= lattice_size
                and data_available(j)
                and edge_available(j, strand_class)
            )
            if left_ok or right_ok:
                missing_edges.discard((creator, strand_class))
                recovered.add(ParityId(creator, strand_class))
                progress = True
    return recovered


def is_irrecoverable(pattern: ErasurePattern, params: AEParameters) -> bool:
    """True when the decoder cannot repair any block of the pattern."""
    return not recoverable_blocks(pattern, params)


def is_minimal_erasure(pattern: ErasurePattern, params: AEParameters) -> bool:
    """True when the pattern is irrecoverable and irreducible.

    Irreducible: restoring any single block of the pattern lets the decoder
    repair at least one of the remaining blocks.
    """
    if not is_irrecoverable(pattern, params):
        return False
    for block_id in pattern.block_ids():
        if is_data(block_id):
            reduced = ErasurePattern(
                data_nodes=pattern.data_nodes - {block_id.index},
                parity_edges=pattern.parity_edges,
            )
        else:
            reduced = ErasurePattern(
                data_nodes=pattern.data_nodes,
                parity_edges=pattern.parity_edges
                - {(block_id.index, block_id.strand_class)},
            )
        if not reduced.size:
            continue
        if not recoverable_blocks(reduced, params):
            return False
    return True


# ----------------------------------------------------------------------
# Primitive forms (Fig. 6) for single entanglements
# ----------------------------------------------------------------------
def primitive_form_one(anchor: int = 0) -> ErasurePattern:
    """Primitive form I for AE(1): two adjacent nodes and their shared edge."""
    base = anchor if anchor else 100
    return ErasurePattern(
        data_nodes=frozenset({base, base + 1}),
        parity_edges=frozenset({(base, StrandClass.HORIZONTAL)}),
    )


def primitive_form_two(gap: int = 3, anchor: int = 0) -> ErasurePattern:
    """Primitive form II for AE(1): two non-adjacent nodes plus every edge between them."""
    if gap < 2:
        raise InvalidParametersError("primitive form II needs a gap of at least 2")
    base = anchor if anchor else 100
    edges = frozenset((base + offset, StrandClass.HORIZONTAL) for offset in range(gap))
    return ErasurePattern(
        data_nodes=frozenset({base, base + gap}), parity_edges=edges
    )


# ----------------------------------------------------------------------
# Chain machinery for the exact searcher
# ----------------------------------------------------------------------
def _chain_forward(
    start: int,
    strand_class: StrandClass,
    params: AEParameters,
    targets: Set[int],
    max_hops: int,
) -> Optional[FrozenSet[Edge]]:
    """Edges of the forward chain from ``start`` to the nearest target on the strand."""
    edges: List[Edge] = []
    current = start
    for _ in range(max_hops):
        edges.append((current, strand_class))
        nxt = output_index(current, strand_class, params)
        if nxt in targets:
            return frozenset(edges)
        current = nxt
    return None


def _chain_backward(
    start: int,
    strand_class: StrandClass,
    params: AEParameters,
    targets: Set[int],
    max_hops: int,
) -> Optional[FrozenSet[Edge]]:
    """Edges of the backward chain from ``start`` to the nearest target on the strand."""
    edges: List[Edge] = []
    current = start
    for _ in range(max_hops):
        prev = input_index(current, strand_class, params)
        if prev < 1:
            return None  # reached the lattice boundary without meeting a target
        edges.append((prev, strand_class))
        if prev in targets:
            return frozenset(edges)
        current = prev
    return None


def _minimal_edge_cover(
    requirement_options: Sequence[Sequence[FrozenSet[Edge]]],
    best_bound: Optional[int] = None,
) -> Optional[FrozenSet[Edge]]:
    """Choose one option per requirement minimising the size of the union.

    Branch and bound over the requirements, most-constrained first.
    """
    ordered = sorted(requirement_options, key=len)
    best: Optional[FrozenSet[Edge]] = None
    best_size = best_bound if best_bound is not None else float("inf")

    def recurse(position: int, chosen: FrozenSet[Edge]) -> None:
        nonlocal best, best_size
        if len(chosen) >= best_size:
            return
        if position == len(ordered):
            best = chosen
            best_size = len(chosen)
            return
        for option in sorted(ordered[position], key=lambda edges: len(edges - chosen)):
            recurse(position + 1, chosen | option)

    recurse(0, frozenset())
    return best


def _candidate_feasible(
    data_nodes: Sequence[int], params: AEParameters
) -> bool:
    """Quick label-based feasibility test: every (node, class) needs a partner."""
    for index in data_nodes:
        for strand_class in params.strand_classes:
            label = strand_label(index, strand_class, params)
            if not any(
                other != index
                and strand_label(other, strand_class, params) == label
                for other in data_nodes
            ):
                return False
    return True


def minimal_pattern_for_nodes(
    data_nodes: Sequence[int], params: AEParameters, max_hops: Optional[int] = None
) -> Optional[ErasurePattern]:
    """Smallest irrecoverable pattern whose data blocks are exactly ``data_nodes``.

    Returns ``None`` when no such pattern exists (some strand of some node has
    no other erased data node on it, so the node would always be repairable
    through that strand).
    """
    nodes = sorted(set(int(index) for index in data_nodes))
    if len(nodes) < 1:
        raise InvalidParametersError("at least one data node is required")
    if max_hops is None:
        max_hops = 2 * params.s * max(params.p, 1) + 4 * params.s + 4
    node_set = set(nodes)
    requirements: List[List[FrozenSet[Edge]]] = []
    for index in nodes:
        for strand_class in params.strand_classes:
            options: List[FrozenSet[Edge]] = []
            forward = _chain_forward(index, strand_class, params, node_set - {index}, max_hops)
            if forward is not None:
                options.append(forward)
            backward = _chain_backward(index, strand_class, params, node_set - {index}, max_hops)
            if backward is not None:
                options.append(backward)
            if not options:
                return None
            requirements.append(options)
    cover = _minimal_edge_cover(requirements)
    if cover is None:
        return None
    return ErasurePattern(data_nodes=frozenset(nodes), parity_edges=cover)


@dataclass
class MinimalErasureResult:
    """Result of a |ME(x)| search."""

    params: AEParameters
    data_count: int
    size: Optional[int]
    pattern: Optional[ErasurePattern] = None
    candidates_examined: int = 0

    def summary(self) -> str:
        if self.size is None:
            return (
                f"{self.params.spec()}: no ME({self.data_count}) pattern found "
                f"within the search window"
            )
        return f"{self.params.spec()}: |ME({self.data_count})| = {self.size}"


def find_minimal_erasure(
    params: AEParameters,
    data_count: int,
    span: Optional[int] = None,
    validate: bool = True,
) -> MinimalErasureResult:
    """Exact search for ``|ME(data_count)|``.

    ``span`` bounds how far (in lattice positions) the erased data nodes may be
    from the anchor node; the default covers one full helical cycle plus a
    safety margin, which contains the optimal patterns for the settings studied
    in the paper.
    """
    if data_count < 1:
        raise InvalidParametersError("data_count must be >= 1")
    if span is None:
        span = params.s * max(params.p, 1) + 2 * params.s + 2
    # Anchor far from the lattice boundary so chains never hit the start.
    base = 4 * params.s * max(params.p, 1) + 8 * params.s + 10
    best_pattern: Optional[ErasurePattern] = None
    examined = 0

    if data_count == 1:
        # A single data block can only be irrecoverable if every strand chain
        # reaches the lattice boundary; in the steady state no ME(1) exists.
        return MinimalErasureResult(params, 1, None, None, 0)

    for anchor_row in range(params.s):
        anchor = base + anchor_row
        offsets = range(1, span + 1)
        for combo in itertools.combinations(offsets, data_count - 1):
            nodes = [anchor] + [anchor + offset for offset in combo]
            examined += 1
            if best_pattern is not None and len(nodes) >= best_pattern.size:
                continue
            if not _candidate_feasible(nodes, params):
                continue
            pattern = minimal_pattern_for_nodes(nodes, params)
            if pattern is None:
                continue
            if best_pattern is None or pattern.size < best_pattern.size:
                best_pattern = pattern
    if best_pattern is None:
        return MinimalErasureResult(params, data_count, None, None, examined)
    if validate and not is_irrecoverable(best_pattern, params):
        raise InvalidParametersError(
            "internal error: searched pattern is recoverable; please report"
        )
    return MinimalErasureResult(
        params, data_count, best_pattern.size, best_pattern, examined
    )


def minimal_erasure_size(
    params: AEParameters, data_count: int, span: Optional[int] = None
) -> Optional[int]:
    """Convenience wrapper returning only ``|ME(data_count)|``."""
    return find_minimal_erasure(params, data_count, span=span).size
