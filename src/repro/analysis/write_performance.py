"""Write-performance analysis: the s = p vs p > s comparison of Fig. 10.

The sealed-bucket simulator lives in :mod:`repro.core.buckets`; this module
adds the comparison/reporting layer: given an ``alpha`` and an ``s`` it
contrasts the sealing behaviour across ``p`` values, estimates the memory a
writer needs for full-writes and summarises the trade-off the paper draws
(``s = p`` maximises write parallelism; ``p > s`` buys fault tolerance at the
price of deferred or partial writes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.buckets import WriteScheduler, WriteScheduleReport
from repro.core.parameters import AEParameters
from repro.exceptions import InvalidParametersError


@dataclass
class WritePerformancePoint:
    """Sealing behaviour of one AE(alpha, s, p) setting."""

    params: AEParameters
    sealed_fraction: float
    deferred_parities_per_column: float
    strand_head_memory_blocks: int
    window_memory_blocks: int

    def as_row(self) -> Dict[str, object]:
        return {
            "setting": self.params.spec(),
            "buckets sealed at arrival": f"{self.sealed_fraction:.0%}",
            "deferred parities / column": round(self.deferred_parities_per_column, 2),
            "strand-head memory (blocks)": self.strand_head_memory_blocks,
            "window memory (blocks)": self.window_memory_blocks,
        }


def evaluate_setting(
    params: AEParameters, columns: int = 60, window_columns: int = 1
) -> WritePerformancePoint:
    """Run the sealed-bucket simulation for one setting and summarise it."""
    report: WriteScheduleReport = WriteScheduler(params, window_columns).simulate(columns)
    columns_counted = max(report.columns - (params.p // params.s + 1), 1)
    return WritePerformancePoint(
        params=params,
        sealed_fraction=report.sealed_fraction,
        deferred_parities_per_column=report.deferred_parities / columns_counted,
        strand_head_memory_blocks=params.strand_count,
        window_memory_blocks=report.memory_requirement_blocks(),
    )


def compare_settings(
    alpha: int,
    s: int,
    p_values: Sequence[int],
    columns: int = 60,
    window_columns: int = 1,
) -> List[WritePerformancePoint]:
    """Fig. 10 style comparison: same alpha and s, varying p."""
    if alpha < 1 or s < 1:
        raise InvalidParametersError("alpha and s must be positive")
    points: List[WritePerformancePoint] = []
    for p in p_values:
        if p < s:
            continue
        params = AEParameters(alpha, s, p)
        points.append(evaluate_setting(params, columns=columns, window_columns=window_columns))
    return points


def figure10_comparison(columns: int = 60) -> List[WritePerformancePoint]:
    """The two settings drawn in Fig. 10: AE(3,5,10) (p > s) and AE(3,10,10) (s = p).

    The figure's message is qualitative: with ``s = p`` every bucket of a
    column can be sealed with parities computed in the previous time step;
    with ``p > s`` the wrap-around strands pull inputs from ``p / s`` columns
    back, so a fraction of the buckets has to wait or be written partially.
    """
    return [
        evaluate_setting(AEParameters(3, 5, 10), columns=columns),
        evaluate_setting(AEParameters(3, 10, 10), columns=columns),
    ]


def full_write_memory(params: AEParameters) -> int:
    """Parities a writer holds for full-writes: one per strand, O(N) overall."""
    return params.strand_count
