"""Reliability models for entangled mirror arrays (paper, Sec. IV-B1).

The earlier work the paper recaps compares full-partition entangled mirrors
(open and closed chains) against plain mirroring over a 5-year horizon and
reports that entanglement reduces the probability of data loss by roughly 90%
(open chains) and 98% (closed chains).  This module reproduces that analysis
with a Monte-Carlo failure model and a small analytic helper:

* drives fail independently following an exponential lifetime (constant
  failure rate derived from an MTTF or an annualised failure rate);
* failed drives are replaced and rebuilt after an exponentially distributed
  repair time;
* a *data-loss event* occurs when the set of simultaneously failed drives is
  not survivable by the layout (for mirroring: a drive and its mirror; for an
  entangled chain: a pattern the chain cannot repair).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.exceptions import InvalidParametersError

HOURS_PER_YEAR = 24 * 365


@dataclass(frozen=True)
class DriveModel:
    """Failure/repair behaviour of one drive."""

    mttf_hours: float = 1_000_000.0
    repair_hours: float = 24.0

    @property
    def failure_rate(self) -> float:
        return 1.0 / self.mttf_hours

    @property
    def repair_rate(self) -> float:
        return 1.0 / self.repair_hours


@dataclass
class ReliabilityResult:
    """Outcome of a Monte-Carlo reliability estimate."""

    layout: str
    drives: int
    years: float
    trials: int
    loss_events: int

    @property
    def loss_probability(self) -> float:
        return self.loss_events / self.trials if self.trials else 0.0

    @property
    def reliability(self) -> float:
        return 1.0 - self.loss_probability

    def improvement_over(self, other: "ReliabilityResult") -> float:
        """Relative reduction of the loss probability versus ``other``."""
        if other.loss_probability == 0:
            return 0.0
        return 1.0 - self.loss_probability / other.loss_probability


# ----------------------------------------------------------------------
# Survivability predicates for the studied layouts
# ----------------------------------------------------------------------
def mirroring_survives(failed: Set[int], pairs: int) -> bool:
    """Mirrored array of ``pairs`` (data, copy) drives: loses data when both
    drives of any pair are simultaneously down."""
    for pair in range(pairs):
        if 2 * pair in failed and 2 * pair + 1 in failed:
            return False
    return True


def open_chain_survives(failed: Set[int], pairs: int) -> bool:
    """Full-partition entangled mirror with an open chain.

    Drive ``2i`` holds data block ``d_i`` and drive ``2i + 1`` holds parity
    ``p_i`` of the simple entanglement chain ``p_i = d_i XOR p_{i-1}``.  Data
    ``d_i`` is lost when it cannot be rebuilt from ``(p_{i-1}, p_i)`` after
    iterative repair; the classic irrecoverable patterns are two failed data
    drives with every parity drive between them also failed, or a failed data
    drive whose neighbouring parities cannot be re-derived.
    """
    data_failed = {index // 2 for index in failed if index % 2 == 0}
    parity_failed = {index // 2 for index in failed if index % 2 == 1}
    available_parity: Dict[int, bool] = {-1: True}  # virtual zero parity
    # Iteratively determine which parities are derivable.
    derivable = {i: i not in parity_failed for i in range(pairs)}
    derivable[-1] = True
    changed = True
    while changed:
        changed = False
        for i in range(pairs):
            if derivable[i]:
                continue
            left = derivable.get(i - 1, False) and i not in data_failed
            right = derivable.get(i + 1, False) and (i + 1) not in data_failed and i + 1 < pairs
            if left or right:
                derivable[i] = True
                changed = True
    for i in data_failed:
        if not (derivable.get(i - 1, False) and derivable.get(i, False)):
            return False
    return True


def closed_chain_survives(failed: Set[int], pairs: int) -> bool:
    """Closed-chain variant: the chain wraps around, removing weak extremities."""
    data_failed = {index // 2 for index in failed if index % 2 == 0}
    parity_failed = {index // 2 for index in failed if index % 2 == 1}
    if not data_failed:
        return True
    derivable = {i: i not in parity_failed for i in range(pairs)}
    changed = True
    while changed:
        changed = False
        for i in range(pairs):
            if derivable[i]:
                continue
            left = derivable[(i - 1) % pairs] and i not in data_failed
            right = derivable[(i + 1) % pairs] and ((i + 1) % pairs) not in data_failed
            if left or right:
                derivable[i] = True
                changed = True
    for i in data_failed:
        if not (derivable[(i - 1) % pairs] and derivable[i]):
            return False
    return True


LAYOUT_PREDICATES: Dict[str, Callable[[Set[int], int], bool]] = {
    "mirroring": mirroring_survives,
    "entangled-open": open_chain_survives,
    "entangled-closed": closed_chain_survives,
}


# ----------------------------------------------------------------------
# Monte-Carlo simulation
# ----------------------------------------------------------------------
def simulate_layout(
    layout: str,
    drive_pairs: int = 10,
    years: float = 5.0,
    drive: DriveModel = DriveModel(mttf_hours=50_000.0, repair_hours=168.0),
    trials: int = 2000,
    seed: int = 0,
) -> ReliabilityResult:
    """Estimate the probability of data loss over ``years`` for one layout.

    The simulation advances failure/repair events per drive; after every
    failure it evaluates the layout's survivability predicate on the set of
    currently failed drives.
    """
    if layout not in LAYOUT_PREDICATES:
        raise InvalidParametersError(
            f"unknown layout {layout!r}; choose from {sorted(LAYOUT_PREDICATES)}"
        )
    predicate = LAYOUT_PREDICATES[layout]
    drive_count = 2 * drive_pairs
    horizon = years * HOURS_PER_YEAR
    rng = np.random.default_rng(seed)
    losses = 0
    for _ in range(trials):
        failure_times = rng.exponential(drive.mttf_hours, size=drive_count)
        events: List[Tuple[float, int, str]] = [
            (float(t), index, "fail") for index, t in enumerate(failure_times) if t < horizon
        ]
        events.sort()
        failed: Set[int] = set()
        repairs: Dict[int, float] = {}
        lost = False
        pending = list(events)
        while pending and not lost:
            time, index, kind = pending.pop(0)
            # Complete any repairs that finished before this event.
            for drive_index, ready in list(repairs.items()):
                if ready <= time:
                    failed.discard(drive_index)
                    del repairs[drive_index]
                    next_failure = time + float(rng.exponential(drive.mttf_hours))
                    if next_failure < horizon:
                        pending.append((next_failure, drive_index, "fail"))
                        pending.sort()
            if kind == "fail":
                failed.add(index)
                repairs[index] = time + float(rng.exponential(drive.repair_hours))
                if not predicate(failed, drive_pairs):
                    lost = True
        if lost:
            losses += 1
    return ReliabilityResult(
        layout=layout, drives=drive_count, years=years, trials=trials, loss_events=losses
    )


def five_year_comparison(
    drive_pairs: int = 10,
    drive: DriveModel = DriveModel(mttf_hours=50_000.0, repair_hours=168.0),
    trials: int = 2000,
    seed: int = 0,
) -> Dict[str, ReliabilityResult]:
    """Compare mirroring vs entangled mirrors over 5 years (paper, Sec. IV-B1).

    Expected shape: the open chain cuts the loss probability by roughly an
    order of magnitude versus mirroring, and the closed chain by substantially
    more (the paper quotes 90% and 98% reductions).
    """
    return {
        layout: simulate_layout(layout, drive_pairs, 5.0, drive, trials, seed)
        for layout in LAYOUT_PREDICATES
    }


def analytic_mirror_loss(drive_pairs: int, years: float, drive: DriveModel) -> float:
    """First-order analytic loss probability of mirroring (independent pairs).

    For one pair, loss requires a second failure within the repair window of
    the first; over the horizon the per-pair probability is approximately
    ``2 * (T / MTTF) * (repair / MTTF)``; the array loses data when any pair
    does.
    """
    horizon = years * HOURS_PER_YEAR
    per_pair = 2.0 * (horizon / drive.mttf_hours) * (drive.repair_hours / drive.mttf_hours)
    per_pair = min(per_pair, 1.0)
    return 1.0 - (1.0 - per_pair) ** drive_pairs
