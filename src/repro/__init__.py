"""repro -- a reproduction of *Alpha Entanglement Codes* (DSN 2018).

The package implements the AE(alpha, s, p) family of entanglement codes and
everything needed to evaluate them the way the paper does: baseline codes
(Reed-Solomon, Azure/Xorbas LRC, flat XOR, replication), a storage cluster
substrate with failure injection, a scheme-agnostic storage service that
drives any of those codes through one put/get/repair API, the
entangled-storage-system use cases (geo-replicated backup and RAID-AE), the
minimal-erasure fault-tolerance analysis and a vectorised disaster-recovery
simulator.

Quickstart::

    from repro import StorageConfig, StorageService

    service = StorageService.open(StorageConfig(scheme="ae-3-2-5"))
    service.put("archive", b"some archive content")
    service.fail_locations(range(3))
    report = service.repair()
    assert service.get("archive") == b"some archive content"

Any identifier the :mod:`repro.schemes` registry resolves works as the
``scheme`` -- ``"rs-10-4"``, ``"lrc-azure"``, ``"rep-3"``, ``"xor-geo"``,
... -- which is how the paper's Table IV comparisons become runnable
scenarios (see ``repro-experiments compare``).  The lower-level encoder
objects remain available::

    from repro import AEParameters, Entangler

    code = AEParameters.triple(s=2, p=5)      # AE(3,2,5), the 5-HEC setting
    encoder = Entangler(code, block_size=4096)
    encoded, length = encoder.encode_bytes(b"some archive content")

See ``examples/quickstart.py`` for a complete encode / damage / repair cycle
and ``docs/architecture.md`` for the layer-by-layer tour.

Exported symbols and where they come from in the paper
------------------------------------------------------

===================== ==========================================================
Symbol                Paper reference / units
===================== ==========================================================
``AEParameters``      The AE(alpha, s, p) setting (Sec. III-B, "Code
                      Parameters"): ``alpha`` parities per block
                      (dimensionless), ``s`` horizontal strands, ``p`` helical
                      strands per class.
``StrandClass``       Horizontal / right-handed / left-handed strand classes
                      used to weave the lattice (Sec. III-B, Fig. 3).
``NodeCategory``      Top / central / bottom position of a node in its lattice
                      column, selecting the rule rows of Tables I and II.
``HelicalLattice``    The virtual graph of entangled blocks: nodes are data
                      blocks, edges are parities (Sec. III-B, Fig. 3-4).
``Entangler``         Streaming encoder; one 4 KiB block (default) in,
                      ``alpha`` parities out via XOR (Sec. III-B, "Code
                      Specification").
``BatchEntangler``    Vectorised encoder: a ``(n, block_size)`` uint8 stack in,
                      per-strand running-XOR parity stacks out.  Bit-identical
                      to ``n`` sequential ``entangle`` calls; the throughput
                      path behind the write-performance story of Fig. 10.
``EncodedBlock``      One data block plus its ``alpha`` parities (Sec. III-B).
``EncodedBatch``      A batch of encoded blocks kept in matrix form (rows are
                      blocks, payload bytes as ``numpy.uint8``).
``Decoder``           Single-block repair from pp-/dp-tuples, two-block XORs
                      (Sec. III-B and IV-A, Fig. 2).
``IterativeRepairer`` Multi-round global repair after disasters (Sec. V-C4).
``RepairReport``      Outcome of a global repair run: rounds, repaired and
                      unrecovered block counts.
``Block``             Identifier plus payload (``numpy.uint8`` array, bytes).
``BlockId``           Union of ``DataId`` and ``ParityId``.
``DataId``            d-block identifier: lattice position ``i >= 1`` (Fig. 3).
``ParityId``          p-block identifier: (creator index, strand class); the
                      paper's edge notation ``p_{i,j}`` (Table II).
``StrandId``          (class, label) pair naming one of the ``s + (alpha-1)*p``
                      strands (Sec. III-B).
``__version__``       Package version string.
===================== ==========================================================

Exceptions (all subclasses of ``ReproError``): ``BlockSizeMismatchError``
(entanglement is only defined for equal-size blocks, Sec. III-B),
``BlockUnavailableError`` / ``UnknownBlockError`` (reads against failed or
unknown locations, Sec. V-C), ``DecodingError`` / ``RepairFailedError`` (no
available recovery path, Sec. V-C4), ``IntegrityError`` (anti-tampering
checks, Sec. IV-B), ``InvalidParametersError`` (the validity rules of
Sec. III-B), ``LatticeBoundsError`` (queries outside the entangled region),
``PlacementError`` / ``StorageFullError`` (the placement layer, Sec. V-C),
``ServiceOverloadedError`` (the concurrent front-end's bounded admission
queue is full; retry once responses drain).

The higher layers are re-exported or imported from their subpackages:
``StorageService`` / ``StorageConfig`` (the scheme-agnostic front-end, from
``repro.system.service``), ``ConcurrentStorageService`` (the thread-pool
multi-client request path, from ``repro.system.frontend``),
``ShardedStorageService`` / ``ShardRing`` (the consistent-hash federation of
many services, from ``repro.system.sharding``),
``RedundancyScheme`` / ``get_scheme`` (the
pluggable redundancy protocol and registry, from ``repro.schemes``),
``repro.system.entangled_store.EntangledStorageSystem`` (the AE-specific
legacy shim), ``repro.storage`` (cluster, placement, repair management) and
``repro.analysis`` / ``repro.simulation`` (the paper's evaluation).
"""

from repro.core import (
    AEParameters,
    BatchEntangler,
    Block,
    BlockId,
    DataId,
    Decoder,
    EncodedBatch,
    EncodedBlock,
    Entangler,
    HelicalLattice,
    IterativeRepairer,
    NodeCategory,
    ParityId,
    RepairReport,
    StrandClass,
    StrandId,
)
from repro.exceptions import (
    BlockSizeMismatchError,
    BlockUnavailableError,
    DecodingError,
    IntegrityError,
    InvalidParametersError,
    LatticeBoundsError,
    PlacementError,
    RepairFailedError,
    ReproError,
    ServiceOverloadedError,
    StorageFullError,
    UnknownBlockError,
)
from repro.schemes import RedundancyScheme, SchemeCapabilities
from repro.schemes import get as get_scheme
from repro.system.frontend import ConcurrentStorageService
from repro.system.service import StorageConfig, StorageService
from repro.system.sharding import ShardRing, ShardedStorageService

__version__ = "1.2.0"

__all__ = [
    "AEParameters",
    "BatchEntangler",
    "Block",
    "BlockId",
    "BlockSizeMismatchError",
    "BlockUnavailableError",
    "ConcurrentStorageService",
    "DataId",
    "Decoder",
    "DecodingError",
    "EncodedBatch",
    "EncodedBlock",
    "Entangler",
    "HelicalLattice",
    "IntegrityError",
    "InvalidParametersError",
    "IterativeRepairer",
    "LatticeBoundsError",
    "NodeCategory",
    "ParityId",
    "PlacementError",
    "RedundancyScheme",
    "RepairFailedError",
    "RepairReport",
    "ReproError",
    "SchemeCapabilities",
    "ServiceOverloadedError",
    "ShardRing",
    "ShardedStorageService",
    "StorageConfig",
    "StorageFullError",
    "StorageService",
    "StrandClass",
    "StrandId",
    "UnknownBlockError",
    "__version__",
    "get_scheme",
]
