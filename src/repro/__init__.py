"""repro -- a reproduction of *Alpha Entanglement Codes* (DSN 2018).

The package implements the AE(alpha, s, p) family of entanglement codes and
everything needed to evaluate them the way the paper does: baseline codes
(Reed-Solomon, replication), a storage cluster substrate with failure
injection, the entangled-storage-system use cases (geo-replicated backup and
RAID-AE), the minimal-erasure fault-tolerance analysis and a vectorised
disaster-recovery simulator.

Quickstart::

    from repro import AEParameters, Entangler

    code = AEParameters.triple(s=2, p=5)      # AE(3,2,5), the 5-HEC setting
    encoder = Entangler(code, block_size=4096)
    encoded, length = encoder.encode_bytes(b"some archive content")

See ``examples/quickstart.py`` for a complete encode / damage / repair cycle.
"""

from repro.core import (
    AEParameters,
    Block,
    BlockId,
    DataId,
    Decoder,
    EncodedBlock,
    Entangler,
    HelicalLattice,
    IterativeRepairer,
    NodeCategory,
    ParityId,
    RepairReport,
    StrandClass,
    StrandId,
)
from repro.exceptions import (
    BlockSizeMismatchError,
    BlockUnavailableError,
    DecodingError,
    IntegrityError,
    InvalidParametersError,
    LatticeBoundsError,
    PlacementError,
    RepairFailedError,
    ReproError,
    StorageFullError,
    UnknownBlockError,
)

__version__ = "1.0.0"

__all__ = [
    "AEParameters",
    "Block",
    "BlockId",
    "BlockSizeMismatchError",
    "BlockUnavailableError",
    "DataId",
    "Decoder",
    "DecodingError",
    "EncodedBlock",
    "Entangler",
    "HelicalLattice",
    "IntegrityError",
    "InvalidParametersError",
    "IterativeRepairer",
    "LatticeBoundsError",
    "NodeCategory",
    "ParityId",
    "PlacementError",
    "RepairFailedError",
    "RepairReport",
    "ReproError",
    "StorageFullError",
    "StrandClass",
    "StrandId",
    "UnknownBlockError",
    "__version__",
]
