"""Concurrent multi-client front-end over :class:`StorageService`.

The paper pitches entanglement codes as infrastructure for open storage
systems serving many writers; :class:`ConcurrentStorageService` is the
reproduction's multi-client request path.  It wraps one
:class:`~repro.system.service.StorageService` with:

* a **thread-pool executor** -- every request runs on a worker thread, with
  ``*_async`` variants returning :class:`concurrent.futures.Future` and the
  plain methods blocking on the result;
* a **bounded admission queue** -- at most ``queue_depth`` requests may be
  admitted (queued or running) at once; past that, submission raises
  :class:`~repro.exceptions.ServiceOverloadedError` *before* any work starts
  (backpressure, so a slow medium cannot build an unbounded backlog);
* **striped document locks** -- writers to the same document serialise on a
  reader-writer lock picked by a deterministic hash of the name (the stripe
  count derives from the scheme's repair-group width and the worker count),
  so put/get/delete of one document are mutually consistent while traffic to
  different stripes proceeds in parallel;
* a **maintenance gate** -- mutations hold the gate's *read* side, while
  :meth:`repair` / :meth:`fail_locations` / :meth:`restore_locations` take
  the *write* side: maintenance sees a quiescent catalogue, but plain
  ``get``/``get_stream`` never touch the gate and keep streaming during a
  repair (reads-during-repair are safe end to end: the cluster relocates
  blocks write-before-index, the block stores lock their caches, and the
  service serialises scheme access).

The lock hierarchy is admission -> maintenance gate -> stripe lock ->
service state lock -> WAL group commit; every path acquires in that order,
so the composition cannot deadlock.  See ``docs/architecture.md``.

Underneath, concurrent mutators benefit from the metadata WAL's group
commit (:mod:`repro.storage.wal`): their records are batched into one
fsync.  The closed-loop benchmark ``benchmarks/bench_service_load.py``
measures both effects.
"""

from __future__ import annotations

import hashlib
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Dict, Iterable, Iterator, List, Optional, TypeVar

from repro.exceptions import InvalidParametersError, ServiceOverloadedError
from repro.system.service import (
    ServiceRepairReport,
    ServiceStatus,
    StorageConfig,
    StorageService,
    StoredDocument,
)
from repro.system.transitions import TransitionReport

T = TypeVar("T")

#: Default worker-thread count of the request executor.
DEFAULT_WORKERS = 8

#: Admitted requests per worker before submissions bounce (queue depth =
#: workers * this factor unless given explicitly).
DEFAULT_QUEUE_FACTOR = 4


class ReadWriteLock:
    """A writer-preferring reader-writer lock.

    Any number of readers may hold the lock together; a writer holds it
    alone.  Arriving writers block new readers (no writer starvation).
    Not reentrant.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    class _ReadGuard:
        def __init__(self, lock: "ReadWriteLock") -> None:
            self._lock = lock

        def __enter__(self) -> None:
            self._lock.acquire_read()

        def __exit__(self, *exc: object) -> None:
            self._lock.release_read()

    class _WriteGuard:
        def __init__(self, lock: "ReadWriteLock") -> None:
            self._lock = lock

        def __enter__(self) -> None:
            self._lock.acquire_write()

        def __exit__(self, *exc: object) -> None:
            self._lock.release_write()

    def read_locked(self) -> "ReadWriteLock._ReadGuard":
        return ReadWriteLock._ReadGuard(self)

    def write_locked(self) -> "ReadWriteLock._WriteGuard":
        return ReadWriteLock._WriteGuard(self)


def derive_stripe_count(service: StorageService, workers: int) -> int:
    """Lock stripes for a service: repair-group width x available parallelism.

    The width comes from the scheme's parameters -- for entanglement the
    ``s + p`` helical strand classes (the per-strand conflict groups), for
    stripe codes ``k + m`` (one stripe's extent); the floor of twice the
    worker count keeps collisions rare under uniform names.  Deterministic:
    no clock or RNG involved (this module is on the RPR001 engine path).
    """
    params = getattr(service.scheme, "params", None)
    width = 0
    for attribute in ("s", "p", "k", "m"):
        value = getattr(params, attribute, 0)
        if isinstance(value, int) and value > 0:
            width += value
    return max(1, 2 * workers, width)


class ConcurrentStorageService:
    """Thread-pool request front-end with striped locking and backpressure.

    Wraps an already-open :class:`StorageService` (or opens one through
    :meth:`open`).  All public operations are thread-safe; the ``*_async``
    variants return futures resolved on the worker pool.  Closing the
    front-end drains in-flight requests, then closes the wrapped service.
    """

    def __init__(
        self,
        service: StorageService,
        workers: int = DEFAULT_WORKERS,
        queue_depth: Optional[int] = None,
        stripes: Optional[int] = None,
    ) -> None:
        if workers < 1:
            raise InvalidParametersError("workers must be at least 1")
        if queue_depth is None:
            queue_depth = workers * DEFAULT_QUEUE_FACTOR
        if queue_depth < 1:
            raise InvalidParametersError("queue_depth must be at least 1")
        if stripes is None:
            stripes = derive_stripe_count(service, workers)
        if stripes < 1:
            raise InvalidParametersError("stripes must be at least 1")
        self._service = service
        self._workers = workers
        self._queue_depth = queue_depth
        self._admission = threading.Semaphore(queue_depth)
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-frontend"
        )
        self._stripes: List[ReadWriteLock] = [ReadWriteLock() for _ in range(stripes)]
        self._maintenance = ReadWriteLock()
        self._closed = False

    @classmethod
    def open(
        cls,
        config: Optional[StorageConfig] = None,
        *,
        workers: int = DEFAULT_WORKERS,
        queue_depth: Optional[int] = None,
        stripes: Optional[int] = None,
        **overrides: object,
    ) -> "ConcurrentStorageService":
        """Open the underlying service from a config and wrap it."""
        service = StorageService.open(config, **overrides)
        return cls(
            service, workers=workers, queue_depth=queue_depth, stripes=stripes
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def service(self) -> StorageService:
        """The wrapped single-threaded service."""
        return self._service

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def queue_depth(self) -> int:
        return self._queue_depth

    @property
    def stripe_count(self) -> int:
        return len(self._stripes)

    @property
    def documents(self) -> Dict[str, StoredDocument]:
        return self._service.documents

    def status(self) -> ServiceStatus:
        return self._service.status()

    # ------------------------------------------------------------------
    # Request plumbing
    # ------------------------------------------------------------------
    def _stripe_for(self, name: str) -> ReadWriteLock:
        digest = hashlib.blake2b(name.encode("utf-8"), digest_size=4).digest()
        return self._stripes[int.from_bytes(digest, "big") % len(self._stripes)]

    def _submit(self, request: Callable[[], T]) -> "Future[T]":
        if self._closed:
            raise InvalidParametersError(
                "this ConcurrentStorageService has been closed"
            )
        # Non-blocking admission: a full queue bounces the request *now*
        # instead of queueing unbounded work behind a slow medium.
        if not self._admission.acquire(blocking=False):
            raise ServiceOverloadedError(
                f"admission queue full ({self._queue_depth} requests in "
                "flight); retry once responses drain"
            )
        try:
            future = self._pool.submit(request)
        except BaseException:  # noqa: B036,RPR004 - release the slot, then re-raise
            self._admission.release()
            raise
        future.add_done_callback(lambda _done: self._admission.release())
        return future

    # ------------------------------------------------------------------
    # Document operations
    # ------------------------------------------------------------------
    def put_async(self, name: str, data: bytes) -> "Future[StoredDocument]":
        def request() -> StoredDocument:
            with self._maintenance.read_locked():
                with self._stripe_for(name).write_locked():
                    return self._service.put(name, data)

        return self._submit(request)

    def put(self, name: str, data: bytes) -> StoredDocument:
        return self.put_async(name, data).result()

    def get_async(self, name: str) -> "Future[bytes]":
        def request() -> bytes:
            # No maintenance gate: reads proceed during repair.
            with self._stripe_for(name).read_locked():
                return self._service.get(name)

        return self._submit(request)

    def get(self, name: str) -> bytes:
        return self.get_async(name).result()

    def delete_async(self, name: str) -> "Future[List[object]]":
        def request() -> List[object]:
            with self._maintenance.read_locked():
                with self._stripe_for(name).write_locked():
                    return self._service.delete(name)

        return self._submit(request)

    def delete(self, name: str) -> List[object]:
        return self.delete_async(name).result()

    def put_stream(self, name: str, chunks: Iterable[bytes]) -> StoredDocument:
        """Store a document from a chunk iterable, on the *calling* thread.

        A generator argument cannot usefully be consumed on the pool, so the
        caller's thread drives the ingest while holding the maintenance read
        side and the name's stripe write lock -- the same exclusion as
        :meth:`put`, without occupying a worker for the stream's lifetime.
        """
        if self._closed:
            raise InvalidParametersError(
                "this ConcurrentStorageService has been closed"
            )
        with self._maintenance.read_locked():
            with self._stripe_for(name).write_locked():
                return self._service.put_stream(name, chunks)

    def has_document(self, name: str) -> bool:
        """Catalogue membership; lock-free (the catalogue copy is atomic)."""
        return self._service.has_document(name)

    def get_stream(self, name: str) -> Iterator[bytes]:
        """Stream a document, holding its stripe's read lock until exhausted.

        Runs on the *calling* thread (a generator cannot usefully run on the
        pool); concurrent writers to the same stripe wait until the stream
        is consumed or closed, readers and other stripes proceed.
        """
        stripe = self._stripe_for(name)
        stripe.acquire_read()
        try:
            inner = self._service.get_stream(name)
        except BaseException:  # noqa: B036,RPR004 - release the stripe, then re-raise
            stripe.release_read()
            raise

        def guarded() -> Iterator[bytes]:
            try:
                yield from inner
            finally:
                stripe.release_read()

        return guarded()

    def verify_document(self, name: str, expected: bytes) -> bool:
        return self.get(name) == expected

    # ------------------------------------------------------------------
    # Maintenance (exclusive against mutations, never against reads)
    # ------------------------------------------------------------------
    def transition_to(self, scheme: object) -> Optional["TransitionReport"]:
        """Migrate the live service to another redundancy scheme.

        Holds the maintenance gate's *write* side for the duration, so
        mutations are quiesced (the writer-preferring gate drains them
        first) while plain ``get``/``get_stream`` -- which never touch the
        gate -- keep streaming mid-transition.  Each document is
        additionally migrated under its name's stripe *write* lock, so a
        reader can never land inside one document's copy-commit-delete
        window: it either sees the source blocks (before) or the target
        blocks (after), byte-exact either way.
        """
        if self._closed:
            raise InvalidParametersError(
                "this ConcurrentStorageService has been closed"
            )

        def doc_guard(name: str) -> "ReadWriteLock._WriteGuard":
            return self._stripe_for(name).write_locked()

        with self._maintenance.write_locked():
            return self._service.transition_to(scheme, doc_guard=doc_guard)

    def repair(self) -> ServiceRepairReport:
        """Run a repair pass while mutations are quiesced; reads continue."""
        with self._maintenance.write_locked():
            return self._service.repair()

    def fail_locations(self, location_ids: Iterable[int]) -> None:
        with self._maintenance.write_locked():
            self._service.fail_locations(location_ids)

    def restore_locations(
        self, location_ids: Optional[Iterable[int]] = None
    ) -> None:
        with self._maintenance.write_locked():
            self._service.restore_locations(location_ids)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Drain nothing, but checkpoint metadata and flush block writes."""
        with self._maintenance.write_locked():
            self._service.flush()

    def close(self) -> None:
        """Drain in-flight requests, then close the wrapped service."""
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown(wait=True)
        self._service.close()

    def __enter__(self) -> "ConcurrentStorageService":
        return self

    def __exit__(self, exc_type: object, exc_value: object, traceback: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ConcurrentStorageService(workers={self._workers}, "
            f"queue_depth={self._queue_depth}, stripes={len(self._stripes)})"
        )
