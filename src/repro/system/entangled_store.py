"""A complete entangled storage system: encode, place, read, repair.

``EntangledStorageSystem`` ties the pieces together the way Section IV of the
paper describes: an entanglement encoder produces data and parity blocks, a
placement policy maps them to the locations of a storage cluster, reads fall
back to lattice repair when locations are unavailable, and a repair manager
restores redundancy after disasters.  It is the object the examples and the
integration tests drive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.blocks import BlockId, DataId, EncodedBlock, join_blocks
from repro.core.decoder import Decoder
from repro.core.encoder import DEFAULT_BLOCK_SIZE, Entangler
from repro.core.lattice import HelicalLattice
from repro.core.parameters import AEParameters
from repro.core.xor import Payload, payload_to_bytes
from repro.exceptions import UnknownBlockError
from repro.storage.cluster import StorageCluster
from repro.storage.maintenance import MaintenancePolicy
from repro.storage.placement import PlacementPolicy, RandomPlacement
from repro.storage.repair import ClusterRepairManager, ClusterRepairReport


@dataclass
class StoredDocument:
    """Metadata of one document stored in the system."""

    name: str
    data_ids: List[DataId]
    length: int

    @property
    def block_count(self) -> int:
        return len(self.data_ids)


@dataclass
class SystemStatus:
    """Snapshot of the health of the entangled storage system."""

    data_blocks: int
    parity_blocks: int
    unavailable_blocks: int
    unavailable_data_blocks: int
    locations: int
    unavailable_locations: int
    documents: int = 0
    notes: List[str] = field(default_factory=list)

    def summary(self) -> str:
        return (
            f"{self.data_blocks} data + {self.parity_blocks} parity blocks on "
            f"{self.locations} locations ({self.unavailable_locations} down); "
            f"{self.unavailable_blocks} blocks unreachable "
            f"({self.unavailable_data_blocks} data)"
        )


class EntangledStorageSystem:
    """High-level put/get/repair interface over a cluster and an AE lattice."""

    def __init__(
        self,
        params: AEParameters,
        location_count: int = 100,
        block_size: int = DEFAULT_BLOCK_SIZE,
        placement: Optional[PlacementPolicy] = None,
        cluster: Optional[StorageCluster] = None,
        seed: int = 0,
    ) -> None:
        self._params = params
        self._block_size = block_size
        placement = placement or RandomPlacement(location_count, seed=seed)
        self._cluster = cluster or StorageCluster(location_count, placement)
        self._encoder = Entangler(params, block_size)
        self._documents: Dict[str, StoredDocument] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def params(self) -> AEParameters:
        return self._params

    @property
    def block_size(self) -> int:
        return self._block_size

    @property
    def cluster(self) -> StorageCluster:
        return self._cluster

    @property
    def lattice(self) -> HelicalLattice:
        return self._encoder.lattice

    @property
    def documents(self) -> Dict[str, StoredDocument]:
        return dict(self._documents)

    def status(self) -> SystemStatus:
        unavailable = self._cluster.unavailable_blocks()
        return SystemStatus(
            data_blocks=self.lattice.size,
            parity_blocks=self.lattice.parity_count,
            unavailable_blocks=len(unavailable),
            unavailable_data_blocks=sum(1 for b in unavailable if isinstance(b, DataId)),
            locations=self._cluster.location_count,
            unavailable_locations=len(self._cluster.unavailable_locations()),
            documents=len(self._documents),
        )

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def put(self, name: str, data: bytes) -> StoredDocument:
        """Encode and store a document, returning its handle."""
        encoded_blocks, length = self._encoder.encode_bytes(data)
        data_ids = [encoded.data_id for encoded in encoded_blocks]
        for encoded in encoded_blocks:
            self._store_encoded(encoded)
        document = StoredDocument(name=name, data_ids=data_ids, length=length)
        self._documents[name] = document
        return document

    def append_block(self, payload) -> EncodedBlock:
        """Entangle and store a single block (streaming ingestion)."""
        encoded = self._encoder.entangle(payload)
        self._store_encoded(encoded)
        return encoded

    def _store_encoded(self, encoded: EncodedBlock) -> None:
        for block in encoded.all_blocks():
            self._cluster.put_block(block)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get_block(self, block_id: BlockId) -> Payload:
        """Read one block, repairing it through the lattice when unreachable."""
        decoder = Decoder(
            self.lattice, self._cluster.try_get_block, self._block_size
        )
        return decoder.get(block_id)

    def read(self, name: str) -> bytes:
        """Read a full document back, repairing blocks as needed."""
        if name not in self._documents:
            raise UnknownBlockError(f"unknown document {name!r}")
        document = self._documents[name]
        payloads = [self.get_block(data_id) for data_id in document.data_ids]
        return join_blocks(payloads, document.length)

    def read_block_bytes(self, data_id: DataId, length: Optional[int] = None) -> bytes:
        return payload_to_bytes(self.get_block(data_id), length)

    # ------------------------------------------------------------------
    # Failures and repair
    # ------------------------------------------------------------------
    def fail_locations(self, location_ids) -> None:
        self._cluster.fail_locations(location_ids)

    def restore_locations(self, location_ids=None) -> None:
        self._cluster.restore_locations(location_ids)

    def repair(
        self,
        policy: MaintenancePolicy = MaintenancePolicy.FULL,
        max_rounds: int = 1000,
    ) -> ClusterRepairReport:
        """Run round-based repair of every unreachable block under ``policy``."""
        manager = ClusterRepairManager(
            self.lattice, self._cluster, self._block_size, policy
        )
        return manager.repair(max_rounds=max_rounds)

    def verify_document(self, name: str, expected: bytes) -> bool:
        """Convenience used by examples/tests: read back and compare."""
        return self.read(name) == expected
