"""A complete entangled storage system: encode, place, read, repair.

``EntangledStorageSystem`` ties the pieces together the way Section IV of the
paper describes: an entanglement encoder produces data and parity blocks, a
placement policy maps them to the locations of a storage cluster, reads fall
back to lattice repair when locations are unavailable, and a repair manager
restores redundancy after disasters.  It is the object the examples and the
integration tests drive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

from repro.core.blocks import BlockId, DataId, EncodedBlock, join_blocks
from repro.core.decoder import Decoder
from repro.core.encoder import DEFAULT_BLOCK_SIZE, BatchEntangler
from repro.core.lattice import HelicalLattice
from repro.core.parameters import AEParameters
from repro.core.xor import Payload, payload_to_bytes
from repro.exceptions import UnknownBlockError
from repro.storage.cluster import StorageCluster
from repro.storage.maintenance import MaintenancePolicy
from repro.storage.placement import PlacementPolicy, RandomPlacement
from repro.storage.repair import ClusterRepairManager, ClusterRepairReport

#: Number of blocks encoded per batch by :meth:`EntangledStorageSystem.put_stream`.
DEFAULT_BATCH_BLOCKS = 256


@dataclass
class StoredDocument:
    """Metadata of one document stored in the system."""

    name: str
    data_ids: List[DataId]
    length: int

    @property
    def block_count(self) -> int:
        return len(self.data_ids)


@dataclass
class SystemStatus:
    """Snapshot of the health of the entangled storage system."""

    data_blocks: int
    parity_blocks: int
    unavailable_blocks: int
    unavailable_data_blocks: int
    locations: int
    unavailable_locations: int
    documents: int = 0
    notes: List[str] = field(default_factory=list)

    def summary(self) -> str:
        return (
            f"{self.data_blocks} data + {self.parity_blocks} parity blocks on "
            f"{self.locations} locations ({self.unavailable_locations} down); "
            f"{self.unavailable_blocks} blocks unreachable "
            f"({self.unavailable_data_blocks} data)"
        )


class EntangledStorageSystem:
    """High-level put/get/repair interface over a cluster and an AE lattice."""

    def __init__(
        self,
        params: AEParameters,
        location_count: int = 100,
        block_size: int = DEFAULT_BLOCK_SIZE,
        placement: Optional[PlacementPolicy] = None,
        cluster: Optional[StorageCluster] = None,
        seed: int = 0,
        batch_blocks: int = DEFAULT_BATCH_BLOCKS,
    ) -> None:
        if batch_blocks < 1:
            raise ValueError("batch_blocks must be at least 1")
        self._params = params
        self._block_size = block_size
        self._batch_blocks = batch_blocks
        placement = placement or RandomPlacement(location_count, seed=seed)
        self._cluster = cluster or StorageCluster(location_count, placement)
        self._encoder = BatchEntangler(params, block_size)
        self._documents: Dict[str, StoredDocument] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def params(self) -> AEParameters:
        return self._params

    @property
    def block_size(self) -> int:
        return self._block_size

    @property
    def cluster(self) -> StorageCluster:
        return self._cluster

    @property
    def lattice(self) -> HelicalLattice:
        return self._encoder.lattice

    @property
    def documents(self) -> Dict[str, StoredDocument]:
        return dict(self._documents)

    def status(self) -> SystemStatus:
        unavailable = self._cluster.unavailable_blocks()
        return SystemStatus(
            data_blocks=self.lattice.size,
            parity_blocks=self.lattice.parity_count,
            unavailable_blocks=len(unavailable),
            unavailable_data_blocks=sum(1 for b in unavailable if isinstance(b, DataId)),
            locations=self._cluster.location_count,
            unavailable_locations=len(self._cluster.unavailable_locations()),
            documents=len(self._documents),
        )

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def put(self, name: str, data: bytes) -> StoredDocument:
        """Encode and store a document, returning its handle."""
        encoded_blocks, length = self._encoder.encode_bytes(data)
        data_ids = [encoded.data_id for encoded in encoded_blocks]
        for encoded in encoded_blocks:
            self._store_encoded(encoded)
        document = StoredDocument(name=name, data_ids=data_ids, length=length)
        self._documents[name] = document
        return document

    def put_stream(self, name: str, chunks: Iterable[bytes]) -> StoredDocument:
        """Encode and store a document from an iterable of byte chunks.

        This is the batched zero-copy ingest path: chunks of arbitrary sizes
        are re-blocked into stacks of up to ``batch_blocks`` blocks, each stack
        is entangled in one vectorised :meth:`BatchEntangler.entangle_batch`
        pass and persisted through the cluster's bulk ``put_many`` write path.
        The whole document is never materialised in memory; at most one batch
        (``batch_blocks * block_size`` bytes) is buffered at a time.

        Empty documents and payloads that are not a multiple of the block size
        round-trip byte-exact: the final block is zero-padded for encoding and
        the padding is stripped on read using the recorded byte length.

        If ``chunks`` raises mid-stream the exception propagates and no
        document is recorded, but batches already encoded stay in the lattice:
        the lattice is append-only by design (paper, Sec. III-B: deletions
        happen only at the beginning of the mesh), so entangled blocks cannot
        be unwound.  Callers that need all-or-nothing ingest should stage the
        stream (e.g. to a temporary file) before calling ``put_stream``.
        """
        buffer = bytearray()
        batch_bytes = self._batch_blocks * self._block_size
        data_ids: List[DataId] = []
        length = 0
        for chunk in chunks:
            buffer += chunk
            length += len(chunk)
            while len(buffer) >= batch_bytes:
                self._ingest_batch(buffer[:batch_bytes], data_ids)
                del buffer[:batch_bytes]
        if buffer:
            self._ingest_batch(buffer, data_ids)
        document = StoredDocument(name=name, data_ids=data_ids, length=length)
        self._documents[name] = document
        return document

    def _ingest_batch(self, payload: bytearray, data_ids: List[DataId]) -> None:
        batch = self._encoder.entangle_batch(payload)
        self._cluster.put_many(batch.iter_blocks())
        data_ids.extend(batch.data_ids)

    def append_block(self, payload) -> EncodedBlock:
        """Entangle and store a single block (streaming ingestion)."""
        encoded = self._encoder.entangle(payload)
        self._store_encoded(encoded)
        return encoded

    def _store_encoded(self, encoded: EncodedBlock) -> None:
        for block in encoded.all_blocks():
            self._cluster.put_block(block)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get_block(self, block_id: BlockId) -> Payload:
        """Read one block, repairing it through the lattice when unreachable."""
        decoder = Decoder(
            self.lattice, self._cluster.try_get_block, self._block_size
        )
        return decoder.get(block_id)

    def read(self, name: str) -> bytes:
        """Read a full document back, repairing blocks as needed."""
        if name not in self._documents:
            raise UnknownBlockError(f"unknown document {name!r}")
        document = self._documents[name]
        payloads = [self.get_block(data_id) for data_id in document.data_ids]
        return join_blocks(payloads, document.length)

    def read_block_bytes(self, data_id: DataId, length: Optional[int] = None) -> bytes:
        return payload_to_bytes(self.get_block(data_id), length)

    def get_stream(self, name: str) -> Iterator[bytes]:
        """Stream a document back one block at a time, repairing as needed.

        The counterpart of :meth:`put_stream`: yields chunks of at most
        ``block_size`` bytes without assembling the document in memory, and
        strips the zero padding of the final block using the stored length so
        the concatenated chunks equal the original payload byte-exactly.
        """
        if name not in self._documents:
            raise UnknownBlockError(f"unknown document {name!r}")
        document = self._documents[name]

        def blocks() -> Iterator[bytes]:
            remaining = document.length
            for data_id in document.data_ids:
                take = min(remaining, self._block_size)
                yield payload_to_bytes(self.get_block(data_id), take)
                remaining -= take

        return blocks()

    # ------------------------------------------------------------------
    # Failures and repair
    # ------------------------------------------------------------------
    def fail_locations(self, location_ids) -> None:
        self._cluster.fail_locations(location_ids)

    def restore_locations(self, location_ids=None) -> None:
        self._cluster.restore_locations(location_ids)

    def repair(
        self,
        policy: MaintenancePolicy = MaintenancePolicy.FULL,
        max_rounds: int = 1000,
    ) -> ClusterRepairReport:
        """Run round-based repair of every unreachable block under ``policy``."""
        manager = ClusterRepairManager(
            self.lattice, self._cluster, self._block_size, policy
        )
        return manager.repair(max_rounds=max_rounds)

    def verify_document(self, name: str, expected: bytes) -> bool:
        """Convenience used by examples/tests: read back and compare."""
        return self.read(name) == expected
