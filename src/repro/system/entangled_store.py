"""Back-compat shim: the AE-specific storage system of earlier releases.

``EntangledStorageSystem`` predates the scheme-agnostic
:class:`~repro.system.service.StorageService`; it is now a thin subclass
that pins the redundancy scheme to alpha entanglement and keeps the original
surface (``params``/``lattice`` properties, :class:`SystemStatus`,
policy-driven :meth:`repair` returning a
:class:`~repro.storage.repair.ClusterRepairReport`).  New code should open a
:class:`StorageService` instead::

    # before                                  # after
    EntangledStorageSystem(params, ...)       StorageService.open(
                                                  StorageConfig(scheme="ae-3-2-5", ...))

Everything else (``put``/``put_stream``/``get_stream``/``read``/
``fail_locations``) behaves identically through the service.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.codes.entanglement import EntanglementScheme
from repro.core.blocks import DataId, EncodedBlock
from repro.core.encoder import DEFAULT_BLOCK_SIZE
from repro.core.lattice import HelicalLattice
from repro.core.xor import PayloadLike
from repro.core.parameters import AEParameters
from repro.storage.cluster import StorageCluster
from repro.storage.maintenance import MaintenancePolicy
from repro.storage.placement import PlacementPolicy, RandomPlacement
from repro.storage.repair import ClusterRepairManager, ClusterRepairReport
from repro.system.service import (
    DEFAULT_BATCH_BLOCKS,
    StorageService,
    StoredDocument,
)

__all__ = [
    "DEFAULT_BATCH_BLOCKS",
    "EntangledStorageSystem",
    "StoredDocument",
    "SystemStatus",
]


@dataclass
class SystemStatus:
    """Snapshot of the health of the entangled storage system."""

    data_blocks: int
    parity_blocks: int
    unavailable_blocks: int
    unavailable_data_blocks: int
    locations: int
    unavailable_locations: int
    documents: int = 0
    notes: List[str] = field(default_factory=list)

    def summary(self) -> str:
        return (
            f"{self.data_blocks} data + {self.parity_blocks} parity blocks on "
            f"{self.locations} locations ({self.unavailable_locations} down); "
            f"{self.unavailable_blocks} blocks unreachable "
            f"({self.unavailable_data_blocks} data)"
        )


class EntangledStorageSystem(StorageService):
    """High-level put/get/repair interface over a cluster and an AE lattice."""

    def __init__(
        self,
        params: AEParameters,
        location_count: int = 100,
        block_size: int = DEFAULT_BLOCK_SIZE,
        placement: Optional[PlacementPolicy] = None,
        cluster: Optional[StorageCluster] = None,
        seed: int = 0,
        batch_blocks: int = DEFAULT_BATCH_BLOCKS,
    ) -> None:
        scheme = EntanglementScheme(params, block_size)
        placement = placement or RandomPlacement(location_count, seed=seed)
        cluster = cluster or StorageCluster(location_count, placement)
        super().__init__(scheme, cluster, batch_blocks=batch_blocks)

    # ------------------------------------------------------------------
    # AE-specific introspection
    # ------------------------------------------------------------------
    @property
    def params(self) -> AEParameters:
        return self.scheme.params  # type: ignore[attr-defined]

    @property
    def lattice(self) -> HelicalLattice:
        return self.scheme.lattice  # type: ignore[attr-defined]

    def status(self) -> SystemStatus:
        unavailable = self.cluster.unavailable_blocks()
        return SystemStatus(
            data_blocks=self.lattice.size,
            parity_blocks=self.lattice.parity_count,
            unavailable_blocks=len(unavailable),
            unavailable_data_blocks=sum(
                1 for b in unavailable if isinstance(b, DataId)
            ),
            locations=self.cluster.location_count,
            unavailable_locations=len(self.cluster.unavailable_locations()),
            documents=len(self.documents),
        )

    # ------------------------------------------------------------------
    # AE-specific writes
    # ------------------------------------------------------------------
    def append_block(self, payload: PayloadLike) -> EncodedBlock:
        """Entangle and store a single block (streaming ingestion)."""
        encoded = self.scheme.entangler.entangle(payload)  # type: ignore[attr-defined]
        for block in encoded.all_blocks():
            self.cluster.put_block(block)
        return encoded

    # ------------------------------------------------------------------
    # Policy-driven repair (the paper's maintenance regimes)
    # ------------------------------------------------------------------
    def repair(
        self,
        policy: MaintenancePolicy = MaintenancePolicy.FULL,
        max_rounds: int = 1000,
    ) -> ClusterRepairReport:
        """Run round-based repair of every unreachable block under ``policy``."""
        manager = ClusterRepairManager(
            self.lattice, self.cluster, self.block_size, policy
        )
        return manager.repair(max_rounds=max_rounds)
