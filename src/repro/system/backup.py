"""Use case 1: a geo-replicated cooperative backup network (paper, Sec. IV-A).

A community shares storage and bandwidth: every participant keeps its own data
locally and uploads *parity* blocks to remote nodes.  The system is two
tiered: storage nodes host p-blocks for other users, broker nodes encode and
decode; in the simplest deployment (modelled here) every node plays both
roles.  Each user manages its own entanglement lattice, so multiple lattices
-- possibly with different settings -- coexist in the network.

The module reproduces the failure-mode walkthrough of Fig. 5 and the repair
steps of Table III: when nodes become unavailable, each lattice degrades
differently; a parity stored on a faulty node is regenerated from a complete
dp-tuple fetched from the surviving nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.blocks import Block, BlockId, DataId, ParityId, join_blocks
from repro.core.decoder import Decoder
from repro.core.encoder import Entangler
from repro.core.lattice import HelicalLattice
from repro.core.parameters import AEParameters
from repro.core.xor import Payload, xor_payloads, zero_payload
from repro.exceptions import RepairFailedError, UnknownBlockError
from repro.storage.block_store import BlockStore
from repro.system.keys import BlockKey, derive_key, location_for_key


@dataclass
class BackupDocument:
    """A file backed up by one user: its d-blocks stay local, parities go remote."""

    owner: str
    name: str
    data_ids: List[DataId]
    length: int


@dataclass
class RepairStep:
    """One row of the Table III walkthrough."""

    number: int
    description: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.number}. {self.description}: {self.detail}"


@dataclass
class ParityRepairTrace:
    """The full Table III procedure for regenerating one parity block."""

    parity: ParityId
    steps: List[RepairStep] = field(default_factory=list)
    payload: Optional[Payload] = None

    @property
    def succeeded(self) -> bool:
        return self.payload is not None


@dataclass
class RedundancyDegradation:
    """Per-lattice redundancy state after node failures (paper, Fig. 5)."""

    owner: str
    complete: int = 0
    missing_one_tuple: int = 0
    missing_two_tuples: int = 0
    missing_three_tuples: int = 0
    unavailable_data: int = 0

    def degraded_blocks(self) -> int:
        return (
            self.missing_one_tuple + self.missing_two_tuples + self.missing_three_tuples
        )


class BackupNode:
    """One participant: local user data plus hosted parities of other users."""

    def __init__(self, node_id: int, name: Optional[str] = None) -> None:
        self.node_id = node_id
        self.name = name or f"node-{node_id}"
        self.available = True
        #: Local user data blocks (never uploaded).
        self.local_blocks: Dict[Tuple[str, DataId], Payload] = {}
        #: Remote parities hosted on behalf of other users.
        self.hosted = BlockStore(node_id)

    def fail(self) -> None:
        self.available = False
        self.hosted.fail()

    def recover(self) -> None:
        self.available = True
        self.hosted.restore()

    def lose_local_data(self) -> None:
        """Simulate a local disk crash: the user's own blocks disappear."""
        self.local_blocks.clear()


class CooperativeBackupNetwork:
    """A loosely connected cluster of backup nodes with per-user lattices."""

    def __init__(
        self,
        node_count: int,
        params: AEParameters = AEParameters.triple(5, 5),
        block_size: int = 1024,
    ) -> None:
        self._params = params
        self._block_size = block_size
        self.nodes: List[BackupNode] = [BackupNode(node_id) for node_id in range(node_count)]
        self._encoders: Dict[str, Entangler] = {}
        self._documents: Dict[Tuple[str, str], BackupDocument] = {}
        #: Where each user's parity blocks were uploaded.
        self._parity_locations: Dict[Tuple[str, ParityId], int] = {}

    # ------------------------------------------------------------------
    # Topology helpers
    # ------------------------------------------------------------------
    @property
    def params(self) -> AEParameters:
        return self._params

    def node(self, node_id: int) -> BackupNode:
        return self.nodes[node_id]

    def owner_name(self, node_id: int) -> str:
        return self.nodes[node_id].name

    def fail_nodes(self, node_ids: Iterable[int]) -> None:
        for node_id in node_ids:
            self.nodes[node_id].fail()

    def recover_nodes(self, node_ids: Iterable[int]) -> None:
        for node_id in node_ids:
            self.nodes[node_id].recover()

    def _encoder_for(self, owner: str) -> Entangler:
        if owner not in self._encoders:
            self._encoders[owner] = Entangler(self._params, self._block_size)
        return self._encoders[owner]

    def lattice_of(self, owner: str) -> HelicalLattice:
        return self._encoder_for(owner).lattice

    # ------------------------------------------------------------------
    # Backup (upload) path
    # ------------------------------------------------------------------
    def backup(self, node_id: int, filename: str, data: bytes) -> BackupDocument:
        """Encode a file on ``node_id`` and upload its parities to remote nodes."""
        owner = self.owner_name(node_id)
        encoder = self._encoder_for(owner)
        owner_node = self.nodes[node_id]
        encoded_blocks, length = encoder.encode_bytes(data)
        data_ids: List[DataId] = []
        for encoded in encoded_blocks:
            data_ids.append(encoded.data_id)
            owner_node.local_blocks[(owner, encoded.data_id)] = encoded.data.payload
            for parity in encoded.parities:
                self._upload_parity(owner, node_id, parity)
        document = BackupDocument(owner=owner, name=filename, data_ids=data_ids, length=length)
        self._documents[(owner, filename)] = document
        return document

    def _upload_parity(self, owner: str, owner_node_id: int, parity: Block) -> int:
        key = derive_key(owner, parity.block_id)
        target = location_for_key(key, len(self.nodes))
        if target == owner_node_id and len(self.nodes) > 1:
            target = (target + 1) % len(self.nodes)
        # Hosted blocks are keyed by (owner, block id): several users' lattices
        # share block identifiers, so the owner must be part of the key.
        self.nodes[target].hosted.put((owner, parity.block_id), parity.payload)
        self._parity_locations[(owner, parity.block_id)] = target
        return target

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def parity_location(self, owner: str, parity: ParityId) -> int:
        key = (owner, parity)
        if key not in self._parity_locations:
            raise UnknownBlockError(f"{parity!r} of {owner} was never uploaded")
        return self._parity_locations[key]

    def parity_key(self, owner: str, parity: ParityId) -> BlockKey:
        return derive_key(owner, parity)

    def _fetch(self, owner: str, owner_node_id: int, block_id: BlockId) -> Optional[Payload]:
        """Fetch a block of ``owner``'s lattice from wherever it lives."""
        if isinstance(block_id, DataId):
            owner_node = self.nodes[owner_node_id]
            if not owner_node.available:
                return None
            return owner_node.local_blocks.get((owner, block_id))
        location = self._parity_locations.get((owner, block_id))
        if location is None:
            return None
        return self.nodes[location].hosted.try_get((owner, block_id))

    # ------------------------------------------------------------------
    # Restore / repair paths
    # ------------------------------------------------------------------
    def restore_file(self, node_id: int, filename: str) -> bytes:
        """Rebuild a user's file from remote parities (local d-blocks may be gone)."""
        owner = self.owner_name(node_id)
        document = self._documents.get((owner, filename))
        if document is None:
            raise UnknownBlockError(f"{owner} has no backup named {filename!r}")
        lattice = self.lattice_of(owner)
        decoder = Decoder(
            lattice,
            lambda block_id: self._fetch(owner, node_id, block_id),
            self._block_size,
        )
        payloads = [decoder.get(data_id) for data_id in document.data_ids]
        # Re-populate the user's local store so later repairs can use the data.
        owner_node = self.nodes[node_id]
        if owner_node.available:
            for data_id, payload in zip(document.data_ids, payloads):
                owner_node.local_blocks[(owner, data_id)] = payload
        return join_blocks(payloads, document.length)

    def repair_parity(self, node_id: int, parity: ParityId) -> ParityRepairTrace:
        """Regenerate one missing parity following the Table III procedure."""
        owner = self.owner_name(node_id)
        lattice = self.lattice_of(owner)
        trace = ParityRepairTrace(parity=parity)
        options = lattice.parity_repair_options(parity)
        dp_tuples = [
            (option.data, option.parity)
            for option in options
        ]
        trace.steps.append(
            RepairStep(
                1,
                "Obtain dp-tuple id",
                ", ".join(
                    "{" + f"{self.parity_key(owner, parity).short()}: "
                    f"({data.label()}, {helper.label() if helper else 'zero'})" + "}"
                    for data, helper in dp_tuples
                ),
            )
        )
        chosen: Optional[Tuple[DataId, Optional[ParityId]]] = None
        for data, helper in dp_tuples:
            data_payload = self._fetch(owner, node_id, data)
            helper_payload = (
                zero_payload(self._block_size)
                if helper is None
                else self._fetch(owner, node_id, helper)
            )
            if data_payload is not None and helper_payload is not None:
                chosen = (data, helper)
                break
        if chosen is None:
            trace.steps.append(
                RepairStep(2, "Choose p-block id", "no complete dp-tuple available")
            )
            return trace
        data, helper = chosen
        helper_label = helper.label() if helper is not None else "virtual zero parity"
        trace.steps.append(RepairStep(2, "Choose p-block id", helper_label))
        if helper is not None:
            helper_location = self.parity_location(owner, helper)
            trace.steps.append(
                RepairStep(3, "Compute location key", f"n{helper_location}")
            )
            helper_payload = self.nodes[helper_location].hosted.try_get((owner, helper))
            trace.steps.append(RepairStep(4, "Get block", helper.label()))
        else:
            helper_payload = zero_payload(self._block_size)
            trace.steps.append(RepairStep(3, "Compute location key", "local"))
            trace.steps.append(RepairStep(4, "Get block", "virtual zero parity"))
        data_payload = self._fetch(owner, node_id, data)
        if data_payload is None or helper_payload is None:
            return trace
        trace.payload = xor_payloads(data_payload, helper_payload)
        trace.steps.append(RepairStep(5, "Repair block", parity.label()))
        # Store the regenerated parity on an available node.
        target = self._reupload_parity(owner, node_id, parity, trace.payload)
        trace.steps.append(
            RepairStep(6, "Store repaired block", f"n{target}")
        )
        return trace

    def _reupload_parity(
        self, owner: str, owner_node_id: int, parity: ParityId, payload: Payload
    ) -> int:
        key = derive_key(owner, parity)
        target = location_for_key(key, len(self.nodes))
        attempts = 0
        while (
            not self.nodes[target].available or target == owner_node_id
        ) and attempts < len(self.nodes):
            target = (target + 1) % len(self.nodes)
            attempts += 1
        self.nodes[target].hosted.put((owner, parity), payload)
        self._parity_locations[(owner, parity)] = target
        return target

    def repair_lattice(self, node_id: int) -> List[ParityRepairTrace]:
        """Regenerate every parity of a user's lattice hosted on failed nodes."""
        owner = self.owner_name(node_id)
        traces: List[ParityRepairTrace] = []
        lattice = self.lattice_of(owner)
        for parity in lattice.parity_ids():
            location = self._parity_locations.get((owner, parity))
            if location is None:
                continue
            if self.nodes[location].available and self.nodes[location].hosted.contains(
                (owner, parity)
            ):
                continue
            traces.append(self.repair_parity(node_id, parity))
        return traces

    # ------------------------------------------------------------------
    # Redundancy accounting (Fig. 5)
    # ------------------------------------------------------------------
    def redundancy_report(self, node_id: int) -> RedundancyDegradation:
        """Count how many pp-tuples of each local d-block are incomplete."""
        owner = self.owner_name(node_id)
        lattice = self.lattice_of(owner)
        report = RedundancyDegradation(owner=owner)
        owner_node = self.nodes[node_id]
        for data_id in lattice.data_ids():
            if (owner, data_id) not in owner_node.local_blocks or not owner_node.available:
                report.unavailable_data += 1
            broken_tuples = 0
            for option in lattice.data_repair_options(data_id.index):
                for parity in option.required_blocks():
                    if self._fetch(owner, node_id, parity) is None:
                        broken_tuples += 1
                        break
            if broken_tuples == 0:
                report.complete += 1
            elif broken_tuples == 1:
                report.missing_one_tuple += 1
            elif broken_tuples == 2:
                report.missing_two_tuples += 1
            else:
                report.missing_three_tuples += 1
        return report
