"""Sharded document namespace: one federation over many storage services.

The paper's decentralised use case (Sec. IV-A) locates blocks by
deterministic keys every participant can recompute without coordination;
:mod:`repro.system.keys` seeds that key scheme.  This module scales the
*live* system the same way: a :class:`ShardedStorageService` routes whole
documents across ``M`` independent :class:`~repro.system.service.StorageService`
shards -- each with its own backend root, metadata WAL and
:class:`~repro.system.frontend.ConcurrentStorageService` thread pool -- via a
vnode-weighted consistent-hash ring (:class:`ShardRing`).  The federation

* **scatter-gathers reads**: :meth:`ShardedStorageService.get_many` fans
  lookups out shard-parallel and gathers payloads back in request order, and
  :meth:`ShardedStorageService.scatter_stream` fans *streaming* reads in
  through one bounded queue;
* **rebalances on membership changes**: :meth:`add_shard` /
  :meth:`remove_shard` move only the ring-delta documents (streamed
  shard-to-shard through ``put_stream``/``get_stream``), and every move is
  two durable single-shard mutations -- the destination's WAL commits the
  copy before the source's WAL commits the delete -- so a crash at any point
  leaves either the old home, the new home, or both, never neither.
  Reopening the federation resumes the interrupted rebalance
  (:meth:`rebalance` re-homes every document the ring no longer maps to its
  current shard);
* **isolates failures**: ``fail_locations``/``repair`` target one shard, and
  a federation-wide :meth:`repair` collects per-shard reports without letting
  one shard's unrecoverable disaster abort the others;
* **aggregates health**: :meth:`status` sums per-shard
  :class:`~repro.system.service.ServiceStatus` into one
  :class:`FederationStatus`.

Durable federations keep a small ``federation.json`` manifest (shard ids,
ring vnodes, scheme binding) next to one ``shard-NN/`` sub-root per shard;
see ``docs/sharding.md``.
"""

from __future__ import annotations

import bisect
import hashlib
import os
import queue
import threading
from concurrent.futures import Future
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import repro.schemes as schemes_registry
from repro.exceptions import InvalidParametersError, PlacementError, ReproError, UnknownBlockError
from repro.schemes.base import RedundancyScheme, SchemeCapabilities
from repro.system.transitions import TransitionReport
from repro.storage.backends import write_json
from repro.storage.placement import PlacementPolicy
from repro.system.frontend import DEFAULT_WORKERS, ConcurrentStorageService
from repro.system.service import (
    ServiceRepairReport,
    ServiceStatus,
    StorageConfig,
    StorageService,
    StoredDocument,
)

__all__ = [
    "DEFAULT_VNODES",
    "FEDERATION_FORMAT",
    "FEDERATION_NAME",
    "FederationRepairReport",
    "FederationStatus",
    "RebalanceReport",
    "ShardRing",
    "ShardedStorageService",
]

#: Virtual nodes per shard on the ring.  More vnodes -> tighter key balance
#: at a small lookup-table cost; 64 keeps every shard's share within a few
#: percent of ideal for realistic document counts.
DEFAULT_VNODES = 64

#: Name of the federation manifest inside a durable ``data_dir``.
FEDERATION_NAME = "federation.json"

#: Federation manifest format version.
FEDERATION_FORMAT = 1


class ShardRing:
    """A vnode-weighted consistent-hash ring over integer shard ids.

    Every shard contributes ``vnodes`` points on a 64-bit ring (SHA-256 of
    ``shard-<id>/vnode-<n>``); a key is owned by the shard whose point
    follows the key's own hash point.  Adding or removing one shard
    therefore moves only the keys that fall between the changed points --
    about ``1/(M+1)`` of them on a join of an ``M``-shard ring -- and never
    reassigns a key between two surviving shards.

    The ring is immutable: :meth:`with_shard` / :meth:`without_shard` return
    new rings, so concurrent readers can keep routing against a snapshot
    while a membership change builds its successor.

    The digest -> index mapping of the decentralised key scheme
    (:func:`repro.system.keys.location_for_key`) is the degenerate
    single-point form of the same idea and lives here too
    (:meth:`digest_index`), so the system has exactly one key-hashing
    convention.
    """

    __slots__ = ("_shard_ids", "_vnodes", "_points", "_owners")

    def __init__(self, shard_ids: Sequence[int], vnodes: int = DEFAULT_VNODES) -> None:
        ids = sorted(set(int(shard_id) for shard_id in shard_ids))
        if not ids:
            raise PlacementError("a shard ring needs at least one shard")
        if len(ids) != len(list(shard_ids)):
            raise PlacementError("shard ids must be unique")
        if any(shard_id < 0 for shard_id in ids):
            raise PlacementError("shard ids must be non-negative")
        if vnodes < 1:
            raise PlacementError("vnodes must be at least 1")
        self._shard_ids: Tuple[int, ...] = tuple(ids)
        self._vnodes = int(vnodes)
        ring = sorted(
            (self._vnode_point(shard_id, vnode), shard_id)
            for shard_id in ids
            for vnode in range(vnodes)
        )
        self._points: List[int] = [point for point, _ in ring]
        self._owners: List[int] = [shard_id for _, shard_id in ring]

    # ------------------------------------------------------------------
    # Hashing (the project-wide key-hash convention)
    # ------------------------------------------------------------------
    @staticmethod
    def key_point(key: str) -> int:
        """The 64-bit ring point of a document key (SHA-256 prefix)."""
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return int(digest[:16], 16)

    @staticmethod
    def _vnode_point(shard_id: int, vnode: int) -> int:
        digest = hashlib.sha256(
            f"shard-{shard_id}/vnode-{vnode}".encode("utf-8")
        ).hexdigest()
        return int(digest[:16], 16)

    @staticmethod
    def digest_index(digest: str, count: int) -> int:
        """Deterministic hex-digest -> index mapping (modulo form).

        The single-point convention of :mod:`repro.system.keys`:
        ``location_for_key`` is a thin shim over this method, so block keys
        and document routing share one hashing scheme.
        """
        if count < 1:
            raise PlacementError("location_count must be positive")
        return int(digest[:12], 16) % count

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shard_ids(self) -> Tuple[int, ...]:
        return self._shard_ids

    @property
    def shard_count(self) -> int:
        return len(self._shard_ids)

    @property
    def vnodes(self) -> int:
        return self._vnodes

    def __contains__(self, shard_id: int) -> bool:
        return shard_id in self._shard_ids

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ShardRing(shards={list(self._shard_ids)}, vnodes={self._vnodes})"

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shard_for(self, key: str) -> int:
        """The shard owning ``key``: the first ring point at or after it."""
        position = bisect.bisect_left(self._points, self.key_point(key))
        if position == len(self._points):
            position = 0  # wrap around the ring
        return self._owners[position]

    def assignment(self, keys: Iterable[str]) -> Dict[str, int]:
        """Bulk :meth:`shard_for` (key -> shard id)."""
        return {key: self.shard_for(key) for key in keys}

    # ------------------------------------------------------------------
    # Membership (immutable: returns new rings)
    # ------------------------------------------------------------------
    def with_shard(self, shard_id: int) -> "ShardRing":
        if shard_id in self._shard_ids:
            raise PlacementError(f"shard {shard_id} is already on the ring")
        return ShardRing((*self._shard_ids, shard_id), vnodes=self._vnodes)

    def without_shard(self, shard_id: int) -> "ShardRing":
        if shard_id not in self._shard_ids:
            raise PlacementError(f"shard {shard_id} is not on the ring")
        if len(self._shard_ids) == 1:
            raise PlacementError("cannot remove the last shard from the ring")
        remaining = tuple(sid for sid in self._shard_ids if sid != shard_id)
        return ShardRing(remaining, vnodes=self._vnodes)


@dataclass
class FederationStatus:
    """Aggregated health of every shard plus the per-shard breakdown."""

    scheme: str
    shards: int
    blocks: int
    unavailable_blocks: int
    locations: int
    unavailable_locations: int
    documents: int
    bytes_stored: int
    per_shard: Dict[int, ServiceStatus] = field(default_factory=dict)

    def summary(self) -> str:
        return (
            f"[{self.scheme} x{self.shards} shards] {self.blocks} blocks on "
            f"{self.locations} locations ({self.unavailable_locations} down); "
            f"{self.unavailable_blocks} blocks unreachable; "
            f"{self.documents} documents, {self.bytes_stored} bytes"
        )


@dataclass
class FederationRepairReport:
    """Per-shard repair outcomes; one shard's failure never hides the rest.

    ``errors`` maps shard ids whose repair pass itself *raised* (not merely
    reported unrecovered blocks) to the error text; their entries are absent
    from ``per_shard``.
    """

    per_shard: Dict[int, ServiceRepairReport] = field(default_factory=dict)
    errors: Dict[int, str] = field(default_factory=dict)

    @property
    def repaired_count(self) -> int:
        return sum(report.repaired_count for report in self.per_shard.values())

    @property
    def blocks_read(self) -> int:
        return sum(report.blocks_read for report in self.per_shard.values())

    @property
    def rounds(self) -> int:
        return max(
            (report.rounds for report in self.per_shard.values()), default=0
        )

    @property
    def data_loss(self) -> int:
        return sum(report.data_loss for report in self.per_shard.values())

    @property
    def unrecovered_count(self) -> int:
        return sum(len(report.unrecovered) for report in self.per_shard.values())

    def summary(self) -> str:
        text = (
            f"{len(self.per_shard)} shards: repaired {self.repaired_count} "
            f"blocks in <= {self.rounds} rounds ({self.blocks_read} reads); "
            f"data loss {self.data_loss}, {self.unrecovered_count} unrecovered"
        )
        if self.errors:
            text += f"; failed shards: {sorted(self.errors)}"
        return text


@dataclass
class RebalanceReport:
    """Outcome of one rebalance pass (join, leave or crash resume)."""

    reason: str
    shard: Optional[int]
    total_documents: int
    bytes_moved: int = 0
    #: name -> (source shard, destination shard) for every moved document.
    moves: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    @property
    def moved_documents(self) -> int:
        return len(self.moves)

    @property
    def moved_fraction(self) -> float:
        if self.total_documents == 0:
            return 0.0
        return self.moved_documents / self.total_documents

    def summary(self) -> str:
        label = f" (shard {self.shard})" if self.shard is not None else ""
        return (
            f"rebalance[{self.reason}{label}]: moved {self.moved_documents}/"
            f"{self.total_documents} documents "
            f"({self.moved_fraction:.1%}, {self.bytes_moved} bytes)"
        )


class ShardedStorageService:
    """Routes documents across ``M`` independent storage-service shards.

    Every shard is a full :class:`~repro.system.service.StorageService`
    behind its own :class:`~repro.system.frontend.ConcurrentStorageService`
    thread pool, with its own cluster, backend root and metadata WAL --
    shards share *nothing*, which is what makes the federation scale writes
    and isolate disasters.  Documents route by name over a
    :class:`ShardRing`; reads fall back to a federation-wide catalogue scan
    when a document is mid-move (or a crash left it on its pre-move shard),
    so they stay byte-exact before, during and after a rebalance.

    Open one from a config with ``shards=M``::

        from repro.system.sharding import ShardedStorageService

        federation = ShardedStorageService.open(
            StorageConfig(scheme="ae-3-2-5", shards=4)
        )
        federation.put("report", payload)
        report = federation.add_shard()      # moves ~1/5 of the documents
        assert federation.get("report") == payload
    """

    def __init__(
        self,
        shards: Dict[int, ConcurrentStorageService],
        ring: ShardRing,
        *,
        shard_config: Optional[StorageConfig] = None,
        data_dir: Optional[str] = None,
        workers: int = DEFAULT_WORKERS,
        queue_depth: Optional[int] = None,
        leaving: Iterable[int] = (),
    ) -> None:
        if not shards:
            raise InvalidParametersError("a federation needs at least one shard")
        if set(ring.shard_ids) - set(shards):
            raise InvalidParametersError(
                "every ring shard needs a service: missing "
                f"{sorted(set(ring.shard_ids) - set(shards))}"
            )
        self._shards: Dict[int, ConcurrentStorageService] = dict(shards)
        self._ring = ring
        self._shard_config = shard_config
        self._data_dir = data_dir
        self._workers = workers
        self._queue_depth = queue_depth
        self._leaving: set[int] = set(leaving)
        # Scheme id of an in-flight federation-wide transition; persisted in
        # the manifest so a crash resumes the remaining shards' switches.
        self._transitioning_to: Optional[str] = None
        self._lock = threading.RLock()
        self._closed = False

    # ------------------------------------------------------------------
    # Opening / federation manifest
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        config: Optional[StorageConfig] = None,
        *,
        workers: int = DEFAULT_WORKERS,
        queue_depth: Optional[int] = None,
        vnodes: int = DEFAULT_VNODES,
        **overrides: object,
    ) -> "ShardedStorageService":
        """Open (or durably reopen) a federation from a config.

        ``config.shards`` picks the shard count for a fresh federation; a
        ``data_dir`` that already holds a ``federation.json`` *reopens* the
        stored one -- shard ids, the ring's vnode count and the scheme
        binding come from the manifest (an explicit conflicting ``shards``
        value is rejected), every shard reopens from its own sub-root, and
        any rebalance a crash interrupted is resumed before the call
        returns.
        """
        config = replace(config or StorageConfig(), **overrides)
        if config.cluster is not None or isinstance(config.placement, PlacementPolicy):
            raise InvalidParametersError(
                "a sharded service builds one cluster per shard; pass a "
                "placement registry name and a topology spec instead of "
                "pre-built instances"
            )
        if isinstance(config.scheme, RedundancyScheme):
            raise InvalidParametersError(
                "a sharded service needs a scheme registry id (each shard "
                "gets its own scheme instance), not a scheme object"
            )
        scheme_id = str(config.scheme)
        shard_ids: List[int]
        leaving: List[int] = []
        manifest = cls._load_federation(config.data_dir)
        transitioning: Optional[str] = None
        if manifest is not None:
            stored_scheme = manifest.get("scheme")
            raw_transitioning = manifest.get("transitioning_to")
            if raw_transitioning is not None:
                transitioning = str(raw_transitioning)
            if stored_scheme != scheme_id and scheme_id != transitioning:
                raise InvalidParametersError(
                    f"data_dir {config.data_dir!r} holds a {stored_scheme!r} "
                    f"federation, not {scheme_id!r}"
                )
            # Mid-transition, shards are opened under the manifest scheme
            # (with a per-shard fallback probe below); the switch to the
            # target finishes before open() returns.
            scheme_id = str(stored_scheme)
            stored_backend = manifest.get("backend", config.backend)
            if stored_backend != config.backend:
                raise InvalidParametersError(
                    f"data_dir {config.data_dir!r} was written with the "
                    f"{stored_backend!r} backend, not {config.backend!r}"
                )
            shard_ids = [int(shard_id) for shard_id in manifest["shard_ids"]]
            leaving = [int(shard_id) for shard_id in manifest.get("leaving", [])]
            vnodes = int(manifest.get("vnodes", vnodes))
            if config.shards is not None and config.shards != len(shard_ids) - len(leaving):
                raise InvalidParametersError(
                    f"data_dir {config.data_dir!r} holds "
                    f"{len(shard_ids) - len(leaving)} shards, not {config.shards}"
                )
        else:
            shard_count = 1 if config.shards is None else int(config.shards)
            if shard_count < 1:
                raise InvalidParametersError("shards must be at least 1")
            shard_ids = list(range(shard_count))
        shard_config = replace(config, shards=None, data_dir=None, scheme=scheme_id)
        shards: Dict[int, ConcurrentStorageService] = {}
        opened_all = False
        try:
            for shard_id in shard_ids:
                shard_storage = cls._shard_storage_config(
                    shard_config, config.data_dir, shard_id
                )
                try:
                    shards[shard_id] = ConcurrentStorageService.open(
                        shard_storage, workers=workers, queue_depth=queue_depth
                    )
                except InvalidParametersError:
                    if transitioning is None:
                        raise
                    # A shard whose switch already completed holds a
                    # target-scheme manifest (and no transition plan), so
                    # the source-scheme open is rejected: probe the target.
                    shards[shard_id] = ConcurrentStorageService.open(
                        replace(shard_storage, scheme=transitioning),
                        workers=workers,
                        queue_depth=queue_depth,
                    )
            opened_all = True
        finally:
            if not opened_all:  # close the half-built federation, then re-raise
                for opened in shards.values():
                    opened.close()
        ring = ShardRing(
            [shard_id for shard_id in shard_ids if shard_id not in leaving],
            vnodes=vnodes,
        )
        federation = cls(
            shards,
            ring,
            shard_config=shard_config,
            data_dir=config.data_dir,
            workers=workers,
            queue_depth=queue_depth,
            leaving=leaving,
        )
        federation._transitioning_to = transitioning
        if config.data_dir is not None:
            federation._write_federation()
            # Resume whatever a crash interrupted: finish the scheme
            # switch on the shards that still owe it, re-home misplaced
            # documents, then finish any half-completed shard removal.
            if transitioning is not None:
                federation._resume_scheme_transition()
            if federation._misplaced() or leaving:
                federation.rebalance(reason="resume")
                for shard_id in list(leaving):
                    federation._complete_removal(shard_id)
        return federation

    @staticmethod
    def _shard_storage_config(
        shard_config: StorageConfig, data_dir: Optional[str], shard_id: int
    ) -> StorageConfig:
        """The per-shard config: the template plus the shard's own sub-root."""
        return replace(
            shard_config,
            data_dir=(
                os.path.join(data_dir, f"shard-{shard_id:02d}")
                if data_dir is not None
                else None
            ),
        )

    @staticmethod
    def _load_federation(data_dir: Optional[str]) -> Optional[Dict[str, object]]:
        if data_dir is None:
            return None
        path = os.path.join(data_dir, FEDERATION_NAME)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                import json

                manifest = json.load(handle)
        except FileNotFoundError:
            return None
        except ValueError as exc:
            raise InvalidParametersError(
                f"corrupt federation manifest {path!r}: {exc}; the per-shard "
                "data is still on disk -- restore the manifest or rebuild it "
                "before reopening"
            ) from exc
        if int(manifest.get("format", 0)) != FEDERATION_FORMAT:
            raise InvalidParametersError(
                f"unsupported federation manifest format in {path!r}: "
                f"{manifest.get('format')!r}"
            )
        return manifest

    def _write_federation(self) -> None:
        """Atomically persist the membership next to the shard sub-roots.

        Written *before* data moves on a join and kept listing a leaving
        shard until its drain completes, so a crash at any point reopens a
        federation that can still reach every document.
        """
        if self._data_dir is None:
            return
        os.makedirs(self._data_dir, exist_ok=True)
        shard_config = self._shard_config or StorageConfig()
        write_json(
            os.path.join(self._data_dir, FEDERATION_NAME),
            {
                "format": FEDERATION_FORMAT,
                "scheme": str(shard_config.scheme),
                "backend": shard_config.backend,
                "vnodes": self._ring.vnodes,
                "shard_ids": sorted(self._shards),
                "leaving": sorted(self._leaving),
                **(
                    {"transitioning_to": self._transitioning_to}
                    if self._transitioning_to is not None
                    else {}
                ),
            },
            fsync=shard_config.fsync,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def ring(self) -> ShardRing:
        return self._ring

    @property
    def shard_ids(self) -> Tuple[int, ...]:
        """Active (ring) shard ids."""
        return self._ring.shard_ids

    @property
    def shard_count(self) -> int:
        return self._ring.shard_count

    @property
    def data_dir(self) -> Optional[str]:
        return self._data_dir

    @property
    def scheme_id(self) -> str:
        return self._any_shard().service.scheme.scheme_id

    @property
    def scheme(self) -> RedundancyScheme:
        """One shard's scheme instance -- introspection only (every shard
        has its own independent instance)."""
        return self._any_shard().service.scheme

    @property
    def block_size(self) -> int:
        return self._any_shard().service.block_size

    @property
    def capabilities(self) -> SchemeCapabilities:
        return self._any_shard().service.capabilities

    def shard(self, shard_id: int) -> ConcurrentStorageService:
        """The front-end of one shard (tests, probes, targeted maintenance)."""
        return self._shards[shard_id]

    def _any_shard(self) -> ConcurrentStorageService:
        return self._shards[min(self._shards)]

    def shard_for(self, name: str) -> int:
        """The ring owner of a document name (where a write would go)."""
        return self._ring.shard_for(name)

    @property
    def documents(self) -> Dict[str, StoredDocument]:
        """The merged catalogue (ring owner's copy wins for mid-move names)."""
        merged: Dict[str, StoredDocument] = {}
        ring = self._ring
        for shard_id, shard in self._shards.items():
            for name, document in shard.documents.items():
                if name not in merged or ring.shard_for(name) == shard_id:
                    merged[name] = document
        return merged

    def status(self) -> FederationStatus:
        per_shard = {
            shard_id: shard.status() for shard_id, shard in self._shards.items()
        }
        return FederationStatus(
            scheme=self.scheme_id,
            shards=len(per_shard),
            blocks=sum(status.blocks for status in per_shard.values()),
            unavailable_blocks=sum(
                status.unavailable_blocks for status in per_shard.values()
            ),
            locations=sum(status.locations for status in per_shard.values()),
            unavailable_locations=sum(
                status.unavailable_locations for status in per_shard.values()
            ),
            documents=len(self.documents),
            bytes_stored=sum(status.bytes_stored for status in per_shard.values()),
            per_shard=per_shard,
        )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _locate(self, name: str) -> int:
        """The shard actually holding ``name``: ring owner first, then a
        catalogue scan -- a document mid-move (or stranded by a crash) is
        still served from wherever its committed copy lives."""
        owner = self._ring.shard_for(name)
        if self._shards[owner].has_document(name):
            return owner
        for shard_id, shard in self._shards.items():
            if shard_id != owner and shard.has_document(name):
                return shard_id
        return owner  # let the owner raise the canonical UnknownBlockError

    def _drop_stale(self, name: str, owner: int) -> None:
        """Delete surviving pre-move copies after a write established a new
        authoritative version on the ring owner."""
        for shard_id, shard in self._shards.items():
            if shard_id != owner and shard.has_document(name):
                shard.delete(name)

    # ------------------------------------------------------------------
    # Document operations
    # ------------------------------------------------------------------
    def put(self, name: str, data: bytes) -> StoredDocument:
        self._ensure_open()
        owner = self._ring.shard_for(name)
        document = self._shards[owner].put(name, data)
        self._drop_stale(name, owner)
        return document

    def put_async(self, name: str, data: bytes) -> "Future[StoredDocument]":
        """Submit a put to the owner shard's pool (no stale-copy sweep --
        use :meth:`put` while a rebalance may be in flight)."""
        self._ensure_open()
        return self._shards[self._ring.shard_for(name)].put_async(name, data)

    def put_stream(self, name: str, chunks: Iterable[bytes]) -> StoredDocument:
        self._ensure_open()
        owner = self._ring.shard_for(name)
        document = self._shards[owner].put_stream(name, chunks)
        self._drop_stale(name, owner)
        return document

    def get(self, name: str) -> bytes:
        self._ensure_open()
        return self._shards[self._locate(name)].get(name)

    def get_async(self, name: str) -> "Future[bytes]":
        self._ensure_open()
        return self._shards[self._locate(name)].get_async(name)

    def get_stream(self, name: str) -> Iterator[bytes]:
        self._ensure_open()
        return self._shards[self._locate(name)].get_stream(name)

    def get_many(self, names: Sequence[str]) -> List[bytes]:
        """Scatter-gather bulk read: fan out shard-parallel, gather in order.

        Names are grouped per owning shard; one worker thread per shard
        reads its group sequentially (each shard's own thread pool and lock
        striping provide the intra-shard concurrency), and the payloads come
        back in request order.  The federation-level win is the fan-out:
        ``M`` shards serve ``M`` disjoint groups concurrently.
        """
        self._ensure_open()
        wanted = list(names)
        grouped: Dict[int, List[int]] = {}
        for position, name in enumerate(wanted):
            grouped.setdefault(self._locate(name), []).append(position)
        results: List[Optional[bytes]] = [None] * len(wanted)
        errors: List[BaseException] = []

        def reader(shard_id: int, positions: List[int]) -> None:
            shard = self._shards[shard_id]
            try:
                for position in positions:
                    results[position] = shard.get(wanted[position])
            except BaseException as exc:  # noqa: B036,RPR004 - gathered and re-raised below
                errors.append(exc)

        threads = [
            threading.Thread(
                target=reader, args=(shard_id, positions), name=f"repro-gather-{shard_id}"
            )
            for shard_id, positions in grouped.items()
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return results  # type: ignore[return-value]

    def scatter_stream(
        self, names: Sequence[str], buffer_chunks: int = 64
    ) -> Iterator[Tuple[str, bytes]]:
        """Fan-in streaming read: yields ``(name, chunk)`` pairs as shards
        produce them.

        One worker per owning shard streams its documents' blocks
        (``get_stream``) into a bounded queue; the caller consumes the
        merged stream.  Chunks of one document arrive in order; documents on
        different shards interleave.  At most ``buffer_chunks`` chunks are
        buffered federation-wide, so a slow consumer backpressures every
        shard instead of buffering whole documents.
        """
        self._ensure_open()
        wanted = list(names)
        grouped: Dict[int, List[str]] = {}
        for name in wanted:
            grouped.setdefault(self._locate(name), []).append(name)
        fan_in: "queue.Queue[object]" = queue.Queue(maxsize=max(1, buffer_chunks))
        _DONE = object()

        def streamer(shard_id: int, group: List[str]) -> None:
            shard = self._shards[shard_id]
            try:
                for name in group:
                    for chunk in shard.get_stream(name):
                        fan_in.put((name, chunk))
            except BaseException as exc:  # noqa: B036,RPR004 - surfaced to the consumer
                fan_in.put(exc)
            finally:
                fan_in.put(_DONE)

        threads = [
            threading.Thread(
                target=streamer, args=(shard_id, group), name=f"repro-scatter-{shard_id}"
            )
            for shard_id, group in grouped.items()
        ]

        def merged() -> Iterator[Tuple[str, bytes]]:
            for thread in threads:
                thread.start()
            pending = len(threads)
            failure: Optional[BaseException] = None
            try:
                while pending:
                    item = fan_in.get()
                    if item is _DONE:
                        pending -= 1
                    elif isinstance(item, BaseException):
                        failure = failure or item
                    elif failure is None:
                        yield item  # type: ignore[misc]
            finally:
                # A consumer that stops early must not leave producers
                # blocked on a full queue.
                while pending:
                    item = fan_in.get()
                    if item is _DONE:
                        pending -= 1
                for thread in threads:
                    thread.join()
            if failure is not None:
                raise failure

        return merged()

    def delete(self, name: str) -> List[object]:
        """Delete a document everywhere it lives (owner plus stale copies)."""
        self._ensure_open()
        holders = [
            shard_id
            for shard_id, shard in self._shards.items()
            if shard.has_document(name)
        ]
        if not holders:
            raise UnknownBlockError(f"unknown document {name!r}")
        removed: List[object] = []
        for shard_id in holders:
            removed.extend(self._shards[shard_id].delete(name))
        return removed

    def has_document(self, name: str) -> bool:
        return any(shard.has_document(name) for shard in self._shards.values())

    def verify_document(self, name: str, expected: bytes) -> bool:
        return self.get(name) == expected

    # ------------------------------------------------------------------
    # Failures and repair (per shard: one disaster never blocks the rest)
    # ------------------------------------------------------------------
    def fail_locations(self, location_ids: Iterable[int], shard: int) -> None:
        """Fail locations of *one* shard; the other shards keep serving."""
        self._shards[shard].fail_locations(location_ids)

    def restore_locations(
        self,
        location_ids: Optional[Iterable[int]] = None,
        shard: Optional[int] = None,
    ) -> None:
        targets = [shard] if shard is not None else list(self._shards)
        ids = list(location_ids) if location_ids is not None else None
        for shard_id in targets:
            self._shards[shard_id].restore_locations(ids)

    def repair(self, shard: Optional[int] = None) -> FederationRepairReport:
        """Repair one shard, or every shard independently.

        A shard whose repair pass raises (an unrecoverable disaster, a
        placement dead-end) is recorded in ``errors`` and the remaining
        shards still run -- failure independence is the point of the
        federation.
        """
        self._ensure_open()
        targets = [shard] if shard is not None else sorted(self._shards)
        report = FederationRepairReport()
        for shard_id in targets:
            try:
                report.per_shard[shard_id] = self._shards[shard_id].repair()
            except ReproError as exc:
                report.errors[shard_id] = str(exc)
        return report

    # ------------------------------------------------------------------
    # Scheme transitions (federation-wide, shard by shard)
    # ------------------------------------------------------------------
    def transition_to(self, scheme_id: str) -> Dict[int, Optional[TransitionReport]]:
        """Migrate every shard to another redundancy scheme, one at a time.

        The federation manifest records ``transitioning_to`` *before* the
        first shard moves, so a crash at any point -- between shards or
        inside one shard's own durable transition -- reopens into an
        automatic resume: finished shards are probed open under the target,
        unfinished ones complete their switch.  Because shards transition
        independently (each behind its own maintenance gate), reads keep
        flowing federation-wide throughout; at most one shard's mutations
        are quiesced at a time.
        """
        self._ensure_open()
        with self._lock:
            target = str(scheme_id).strip().lower()
            current = str((self._shard_config or StorageConfig()).scheme)
            if target == current:
                return {}
            if self._transitioning_to is not None:
                raise InvalidParametersError(
                    f"a federation transition to {self._transitioning_to!r} "
                    "is already in flight"
                )
            # Resolve once up front: an unknown or malformed id must fail
            # before any durable intent is written.
            schemes_registry.get(target, block_size=self.block_size)
            self._transitioning_to = target
            self._write_federation()
            reports: Dict[int, Optional[TransitionReport]] = {}
            for shard_id in sorted(self._shards):
                reports[shard_id] = self._shards[shard_id].transition_to(target)
            self._settle_transition(target)
            return reports

    def _resume_scheme_transition(self) -> None:
        """Finish a crash-interrupted federation transition on open."""
        target = self._transitioning_to
        assert target is not None
        with self._lock:
            for shard_id in sorted(self._shards):
                shard = self._shards[shard_id]
                if shard.service.scheme.scheme_id != target:
                    shard.transition_to(target)
            self._settle_transition(target)

    def _settle_transition(self, target: str) -> None:
        """Re-bind the federation to the target scheme (lock held)."""
        self._shard_config = replace(
            self._shard_config or StorageConfig(), scheme=target
        )
        self._transitioning_to = None
        self._write_federation()

    # ------------------------------------------------------------------
    # Membership and rebalancing
    # ------------------------------------------------------------------
    def _misplaced(self) -> List[Tuple[str, int, int]]:
        """``(name, holder, owner)`` for documents the ring maps elsewhere."""
        ring = self._ring
        moves: List[Tuple[str, int, int]] = []
        for shard_id, shard in self._shards.items():
            for name in shard.documents:
                owner = ring.shard_for(name)
                if owner != shard_id:
                    moves.append((name, shard_id, owner))
        return moves

    def _move_document(self, name: str, source: int, target: int) -> int:
        """Stream one document shard-to-shard; returns the bytes moved.

        Two durable single-shard mutations in a fixed order: the target's
        WAL commits the full copy *before* the source's WAL commits the
        delete.  A crash in between leaves both copies; :meth:`_locate`
        prefers the ring owner (the target), and the next rebalance deletes
        the stale source copy -- replay-idempotent, like the WAL itself.
        """
        source_shard = self._shards[source]
        target_shard = self._shards[target]
        moved = 0
        if not target_shard.has_document(name):
            if not source_shard.has_document(name):
                return 0  # deleted concurrently
            document = target_shard.put_stream(name, source_shard.get_stream(name))
            moved = document.length
        if source_shard.has_document(name):
            source_shard.delete(name)
        return moved

    def rebalance(self, reason: str = "resume", shard: Optional[int] = None) -> RebalanceReport:
        """Re-home every document the current ring maps to another shard.

        Normally invoked through :meth:`add_shard` / :meth:`remove_shard`;
        calling it directly finishes a rebalance a crash interrupted (a
        durable reopen does this automatically).  Only misplaced documents
        are touched -- by the ring's minimal-movement property that is the
        ring delta, about ``1/(M+1)`` of the namespace on a join.
        """
        self._ensure_open()
        with self._lock:
            moves = self._misplaced()
            total = len(self.documents)
            report = RebalanceReport(reason=reason, shard=shard, total_documents=total)
            for name, holder, owner in moves:
                report.bytes_moved += self._move_document(name, holder, owner)
                report.moves[name] = (holder, owner)
            return report

    def add_shard(self) -> RebalanceReport:
        """Join a fresh shard and move exactly the ring-delta documents to it.

        The membership change is durable *before* any data moves (a crash
        mid-move resumes on reopen), and reads stay byte-exact throughout:
        documents not yet moved are still served from their old shard via
        the catalogue-scan fallback.
        """
        self._ensure_open()
        with self._lock:
            shard_id = max(self._shards) + 1
            shard_config = self._shard_config or StorageConfig()
            self._shards[shard_id] = ConcurrentStorageService.open(
                self._shard_storage_config(shard_config, self._data_dir, shard_id),
                workers=self._workers,
                queue_depth=self._queue_depth,
            )
            self._ring = self._ring.with_shard(shard_id)
            self._write_federation()
            return self.rebalance(reason="join", shard=shard_id)

    def remove_shard(self, shard_id: int) -> RebalanceReport:
        """Drain a shard onto the survivors, then drop it from the federation.

        The leaving shard stays in the federation manifest (flagged
        ``leaving``) until its last document has moved, so a crash mid-drain
        reopens with the shard still reachable and resumes.  Exactly the
        departing shard's documents move; every other document keeps its
        placement (the ring's minimal-movement property).
        """
        self._ensure_open()
        with self._lock:
            if shard_id not in self._shards:
                raise InvalidParametersError(f"no shard {shard_id} in this federation")
            if len(self._ring.shard_ids) == 1:
                raise InvalidParametersError("cannot remove the last shard")
            self._ring = self._ring.without_shard(shard_id)
            self._leaving.add(shard_id)
            self._write_federation()
            report = self.rebalance(reason="leave", shard=shard_id)
            self._complete_removal(shard_id)
            return report

    def _complete_removal(self, shard_id: int) -> None:
        """Drop a fully-drained leaving shard from the federation."""
        with self._lock:
            shard = self._shards.get(shard_id)
            if shard is None:
                self._leaving.discard(shard_id)
                return
            if shard.documents:
                raise InvalidParametersError(
                    f"shard {shard_id} still holds documents; rebalance first"
                )
            del self._shards[shard_id]
            self._leaving.discard(shard_id)
            self._write_federation()
            shard.close()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _ensure_open(self) -> None:
        if self._closed:
            raise InvalidParametersError(
                "this ShardedStorageService has been closed; reopen it with "
                "ShardedStorageService.open on the same data_dir"
            )

    def flush(self) -> None:
        for shard in self._shards.values():
            shard.flush()

    def close(self) -> None:
        """Drain and close every shard.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for shard in self._shards.values():
            shard.close()

    def __enter__(self) -> "ShardedStorageService":
        return self

    def __exit__(self, exc_type: object, exc_value: object, traceback: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedStorageService(shards={list(self._ring.shard_ids)}, "
            f"scheme={self.scheme_id!r})"
        )
