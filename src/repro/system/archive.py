"""Archival file store: versioned documents over an entangled storage system.

The paper positions AE codes as codes "to archive data in unreliable
environments": content is written once, never rewritten in place, and must
stay readable and verifiable for the long term.  ``ArchiveStore`` packages the
lower layers into that workflow:

* **put** splits a file into blocks, entangles them and records a manifest
  entry (length, lattice positions, SHA-256 digest) -- the append-only,
  never-ending-stripe model of Section IV-B2;
* **versioning** -- storing a name again creates a new version; old versions
  remain readable because the lattice never frees blocks (the paper's only
  assumption: "data are stored permanently, deletions are only possible at
  the beginning of the mesh");
* **get / verify** read a version back (repairing blocks through the lattice
  when locations are down) and check it against the recorded digest;
* **scrub / repair** run the integrity scrubber of
  :mod:`repro.storage.scrub` and the cluster repair manager, giving the
  archive the maintenance loop a real deployment would schedule.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.core.blocks import DataId
from repro.core.encoder import DEFAULT_BLOCK_SIZE
from repro.core.parameters import AEParameters
from repro.exceptions import IntegrityError, UnknownBlockError
from repro.storage.cluster import StorageCluster
from repro.storage.maintenance import MaintenancePolicy
from repro.storage.placement import PlacementPolicy
from repro.storage.repair import ClusterRepairReport
from repro.storage.scrub import ChecksumManifest, Scrubber, ScrubReport
from repro.system.entangled_store import EntangledStorageSystem

__all__ = ["ArchiveEntry", "ArchiveStore"]


@dataclass(frozen=True)
class ArchiveEntry:
    """Metadata of one archived version of a named document."""

    name: str
    version: int
    length: int
    digest: str
    data_ids: tuple

    @property
    def block_count(self) -> int:
        return len(self.data_ids)

    @property
    def internal_name(self) -> str:
        return f"{self.name}@v{self.version}"


class ArchiveStore:
    """Versioned, verifiable archive on top of :class:`EntangledStorageSystem`."""

    def __init__(
        self,
        params: AEParameters,
        location_count: int = 100,
        block_size: int = DEFAULT_BLOCK_SIZE,
        placement: Optional[PlacementPolicy] = None,
        cluster: Optional[StorageCluster] = None,
        seed: int = 0,
    ) -> None:
        self._system = EntangledStorageSystem(
            params,
            location_count=location_count,
            block_size=block_size,
            placement=placement,
            cluster=cluster,
            seed=seed,
        )
        self._manifest = ChecksumManifest()
        self._entries: Dict[str, List[ArchiveEntry]] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def params(self) -> AEParameters:
        return self._system.params

    @property
    def system(self) -> EntangledStorageSystem:
        """The underlying entangled storage system (cluster, lattice, decoder)."""
        return self._system

    @property
    def manifest(self) -> ChecksumManifest:
        """Block fingerprints recorded at write time."""
        return self._manifest

    def names(self) -> List[str]:
        """Archived document names, in first-write order."""
        return list(self._entries)

    def versions(self, name: str) -> List[ArchiveEntry]:
        """All versions of ``name`` (oldest first)."""
        if name not in self._entries:
            raise UnknownBlockError(f"unknown archive entry {name!r}")
        return list(self._entries[name])

    def latest(self, name: str) -> ArchiveEntry:
        """The most recent version of ``name``."""
        return self.versions(name)[-1]

    def entry(self, name: str, version: Optional[int] = None) -> ArchiveEntry:
        """A specific version (default: latest)."""
        versions = self.versions(name)
        if version is None:
            return versions[-1]
        for candidate in versions:
            if candidate.version == version:
                return candidate
        raise UnknownBlockError(f"{name!r} has no version {version}")

    def total_versions(self) -> int:
        return sum(len(versions) for versions in self._entries.values())

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def put(self, name: str, data: bytes) -> ArchiveEntry:
        """Archive (a new version of) ``name``; returns its manifest entry."""
        version = len(self._entries.get(name, [])) + 1
        entry_name = f"{name}@v{version}"
        document = self._system.put(entry_name, data)
        self._record_fingerprints(document.data_ids)
        entry = ArchiveEntry(
            name=name,
            version=version,
            length=document.length,
            digest=hashlib.sha256(data).hexdigest(),
            data_ids=tuple(document.data_ids),
        )
        self._entries.setdefault(name, []).append(entry)
        return entry

    def _record_fingerprints(self, data_ids: List[DataId]) -> None:
        """Record manifest fingerprints for the new data blocks and their parities."""
        cluster = self._system.cluster
        lattice = self._system.lattice
        for data_id in data_ids:
            payload = cluster.try_get_block(data_id)
            if payload is not None:
                self._manifest.record_payload(data_id, payload)
            for parity in lattice.output_parities(data_id.index):
                parity_payload = cluster.try_get_block(parity)
                if parity_payload is not None:
                    self._manifest.record_payload(parity, parity_payload)

    # ------------------------------------------------------------------
    # Reads and verification
    # ------------------------------------------------------------------
    def get(self, name: str, version: Optional[int] = None) -> bytes:
        """Read a version back, repairing blocks through the lattice as needed."""
        entry = self.entry(name, version)
        return self._system.read(entry.internal_name)

    def verify(self, name: str, version: Optional[int] = None) -> bool:
        """Read a version and compare it against its recorded digest."""
        entry = self.entry(name, version)
        data = self.get(name, entry.version)
        return hashlib.sha256(data).hexdigest() == entry.digest

    def verify_all(self) -> Dict[str, bool]:
        """Digest verification of the latest version of every archived name."""
        return {name: self.verify(name) for name in self.names()}

    def get_verified(self, name: str, version: Optional[int] = None) -> bytes:
        """Like :meth:`get` but raises :class:`IntegrityError` on digest mismatch."""
        entry = self.entry(name, version)
        data = self.get(name, entry.version)
        if hashlib.sha256(data).hexdigest() != entry.digest:
            raise IntegrityError(
                f"digest mismatch for {name!r} version {entry.version}"
            )
        return data

    # ------------------------------------------------------------------
    # Failures, maintenance and integrity
    # ------------------------------------------------------------------
    def fail_locations(self, location_ids: Iterable[int]) -> None:
        self._system.fail_locations(location_ids)

    def restore_locations(self, location_ids: Optional[Iterable[int]] = None) -> None:
        self._system.restore_locations(location_ids)

    def repair(
        self, policy: MaintenancePolicy = MaintenancePolicy.FULL, max_rounds: int = 1000
    ) -> ClusterRepairReport:
        """Restore redundancy after failures (the Fig. 11/12 maintenance loop)."""
        return self._system.repair(policy=policy, max_rounds=max_rounds)

    def scrubber(self) -> Scrubber:
        """An integrity scrubber bound to this archive's lattice and manifest."""
        return Scrubber(
            self._system.lattice,
            self._system.cluster,
            self._system.block_size,
            manifest=self._manifest,
        )

    def scrub(self) -> ScrubReport:
        """Run a full integrity scrub (checksums + entanglement equations)."""
        return self.scrubber().scrub()

    def scrub_and_repair(self) -> ScrubReport:
        """Scrub, repair every attributed suspect, then report the initial findings."""
        scrubber = self.scrubber()
        report = scrubber.scrub()
        scrubber.repair_suspects(report)
        return report

    def status_summary(self) -> str:
        """One-line health summary (documents, blocks, unreachable counts)."""
        status = self._system.status()
        return f"{self.total_versions()} archived versions; {status.summary()}"
