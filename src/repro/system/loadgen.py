"""Closed-loop load generator for the storage service front-ends.

Drives N in-process clients through a seeded mixed put/get/delete workload
against anything that quacks like a service (``put``/``get``/``delete`` --
a plain :class:`~repro.system.service.StorageService` or the concurrent
:class:`~repro.system.frontend.ConcurrentStorageService`), measuring ops/sec
and per-operation latency percentiles.

The loop is *closed*: each client issues one request, waits for the
response, optionally "thinks" (``think_seconds``), then issues the next --
the standard closed-loop client model.  With a think time, throughput
scales with the number of clients until the service saturates, which is
exactly the front-end scalability the service benchmark gates
(``benchmarks/bench_service_load.py``); with ``think_seconds=0`` the loop
measures raw service throughput instead.

Workloads are replayable: every client derives its RNG from ``seed`` and
its client index, so two runs with the same parameters issue the same
requests in the same per-client order.  (This module intentionally lives
off the RPR001 engine path: wall-clock *measurement* is its job; the
*workload* stays seeded.)
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.exceptions import ServiceOverloadedError, UnknownBlockError

#: Default operation mix: (put, get, delete) fractions; get takes the rest.
DEFAULT_MIX = (0.4, 0.5, 0.1)


@dataclass
class LoadReport:
    """Aggregate outcome of one closed-loop load run."""

    clients: int
    ops: int
    puts: int
    gets: int
    deletes: int
    misses: int
    overloads: int
    duration_seconds: float
    ops_per_sec: float
    p50_seconds: float
    p99_seconds: float
    mean_seconds: float
    #: Sorted per-op latencies (seconds); kept for callers that want other
    #: percentiles, dropped from ``summary()``.
    latencies: List[float] = field(default_factory=list, repr=False)

    def summary(self) -> str:
        return (
            f"{self.clients} clients: {self.ops} ops in "
            f"{self.duration_seconds:.2f}s = {self.ops_per_sec:.0f} ops/s; "
            f"p50 {self.p50_seconds * 1e3:.2f}ms, "
            f"p99 {self.p99_seconds * 1e3:.2f}ms; "
            f"{self.misses} misses, {self.overloads} overloads"
        )


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = round(fraction * (len(sorted_values) - 1))
    return sorted_values[min(len(sorted_values) - 1, max(0, index))]


class _ClientStats:
    __slots__ = ("ops", "puts", "gets", "deletes", "misses", "overloads", "latencies")

    def __init__(self) -> None:
        self.ops = 0
        self.puts = 0
        self.gets = 0
        self.deletes = 0
        self.misses = 0
        self.overloads = 0
        self.latencies: List[float] = []


def _client_loop(
    service: object,
    index: int,
    stats: _ClientStats,
    *,
    seed: int,
    documents: int,
    payload_bytes: int,
    mix: Tuple[float, float, float],
    think_seconds: float,
    ops_limit: Optional[int],
    deadline: Optional[float],
) -> None:
    rng = random.Random(seed * 7919 + index * 104729 + 1)
    put_fraction, _get_fraction, delete_fraction = mix
    while True:
        if ops_limit is not None and stats.ops >= ops_limit:
            return
        if deadline is not None and time.perf_counter() >= deadline:
            return
        name = f"doc-{rng.randrange(documents):04d}"
        roll = rng.random()
        started = time.perf_counter()
        try:
            if roll < put_fraction:
                service.put(name, rng.randbytes(payload_bytes))  # type: ignore[attr-defined]
                stats.puts += 1
            elif roll < put_fraction + delete_fraction:
                service.delete(name)  # type: ignore[attr-defined]
                stats.deletes += 1
            else:
                service.get(name)  # type: ignore[attr-defined]
                stats.gets += 1
        except UnknownBlockError:
            # Reading/deleting a name no client has put yet is part of the
            # workload, not a failure.
            stats.misses += 1
        except ServiceOverloadedError:
            # Backpressure: the request never started; retry after a pause.
            stats.overloads += 1
            time.sleep(max(think_seconds, 0.001))
            continue
        stats.latencies.append(time.perf_counter() - started)
        stats.ops += 1
        if think_seconds > 0.0:
            time.sleep(think_seconds)


def run_load(
    service: object,
    *,
    clients: int = 8,
    ops_per_client: Optional[int] = None,
    duration_seconds: Optional[float] = None,
    payload_bytes: int = 4096,
    documents: int = 64,
    think_seconds: float = 0.0,
    seed: int = 0,
    mix: Tuple[float, float, float] = DEFAULT_MIX,
    prepopulate: bool = True,
) -> LoadReport:
    """Run a closed-loop mixed workload and return the aggregate report.

    Exactly one of ``ops_per_client`` (deterministic, used by the CI gates)
    or ``duration_seconds`` (wall-clock bounded, used by the CLI) must be
    given.  ``mix`` is the (put, get, delete) fraction triple; ``documents``
    bounds the shared name pool (clients overlap on names, exercising the
    striped locks).  With ``prepopulate`` every name is put once before the
    measured window, so gets mostly hit.
    """
    if clients < 1:
        raise ValueError("clients must be at least 1")
    if (ops_per_client is None) == (duration_seconds is None):
        raise ValueError("pass exactly one of ops_per_client or duration_seconds")
    if not 0.999 <= sum(mix) <= 1.001 or any(f < 0 for f in mix):
        raise ValueError("mix fractions must be non-negative and sum to 1")
    if prepopulate:
        rng = random.Random(seed * 7919)
        for number in range(documents):
            service.put(f"doc-{number:04d}", rng.randbytes(payload_bytes))  # type: ignore[attr-defined]
    stats = [_ClientStats() for _ in range(clients)]
    deadline: Optional[float] = None
    started = time.perf_counter()
    if duration_seconds is not None:
        deadline = started + duration_seconds
    threads = [
        threading.Thread(
            target=_client_loop,
            args=(service, index, stats[index]),
            kwargs={
                "seed": seed,
                "documents": documents,
                "payload_bytes": payload_bytes,
                "mix": mix,
                "think_seconds": think_seconds,
                "ops_limit": ops_per_client,
                "deadline": deadline,
            },
            name=f"repro-load-{index}",
        )
        for index in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    latencies = sorted(
        latency for client in stats for latency in client.latencies
    )
    ops = sum(client.ops for client in stats)
    return LoadReport(
        clients=clients,
        ops=ops,
        puts=sum(client.puts for client in stats),
        gets=sum(client.gets for client in stats),
        deletes=sum(client.deletes for client in stats),
        misses=sum(client.misses for client in stats),
        overloads=sum(client.overloads for client in stats),
        duration_seconds=elapsed,
        ops_per_sec=(ops / elapsed) if elapsed > 0 else 0.0,
        p50_seconds=_percentile(latencies, 0.50),
        p99_seconds=_percentile(latencies, 0.99),
        mean_seconds=(sum(latencies) / len(latencies)) if latencies else 0.0,
        latencies=latencies,
    )
