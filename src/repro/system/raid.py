"""Use case 2: disk arrays -- entangled mirrors and RAID-AE (paper, Sec. IV-B).

Two families of layouts are provided:

* **Entangled mirror** (earlier work recapped in Sec. IV-B1): simple
  entanglements (AE(1)) over an array with equal numbers of data and parity
  drives.  *Full partition* maps every lattice node to a data drive and every
  edge to a parity drive; *block-level striping* spreads blocks across all
  drives.  Chains can be *open* or *closed* -- a closed chain removes the
  weakly protected extremities by entangling the tail back into the head.

* **RAID-AE** (Sec. IV-B2): a disk array whose redundancy is an
  AE(alpha, s, p) lattice instead of fixed-width stripes.  It writes on a
  "never-ending stripe", supports adding disks without re-encoding, repairs
  any single failure by reading two blocks, and serves degraded reads through
  the many alternative lattice paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.blocks import Block, BlockId, DataId, ParityId
from repro.core.decoder import Decoder
from repro.core.encoder import Entangler
from repro.core.lattice import HelicalLattice
from repro.core.parameters import AEParameters
from repro.core.xor import Payload, PayloadLike, as_payload, xor_payloads, zero_payload
from repro.exceptions import InvalidParametersError, RepairFailedError, UnknownBlockError
from repro.storage.cluster import StorageCluster
from repro.storage.maintenance import MaintenancePolicy
from repro.storage.placement import DictionaryPlacement
from repro.storage.repair import ClusterRepairManager, ClusterRepairReport


# ----------------------------------------------------------------------
# Simple entanglement chains (building block of the entangled mirror)
# ----------------------------------------------------------------------
class SimpleEntanglementChain:
    """An AE(1) chain ``d1, p1, d2, p2, ...`` with optional closure.

    In an open chain the parity ``p_i = d_i XOR p_{i-1}`` (with ``p_0`` the
    zero block); the extremities have less redundancy.  A closed chain adds a
    wrap-around parity that entangles the last data block with the head of the
    chain, removing the weak extremity (paper, Sec. IV-B1).
    """

    def __init__(self, closed: bool = False) -> None:
        self._closed = closed
        self._data: List[Payload] = []
        self._parities: List[Payload] = []
        self._closure: Optional[Payload] = None

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def length(self) -> int:
        return len(self._data)

    def append(self, payload: PayloadLike) -> int:
        """Entangle one more data block; returns its 0-based position."""
        data = as_payload(payload)
        previous = self._parities[-1] if self._parities else zero_payload(data.size)
        if previous.size != data.size:
            raise InvalidParametersError("all chain blocks must share one size")
        self._data.append(data)
        self._parities.append(xor_payloads(data, previous))
        if self._closed:
            # Closing parity: tail parity re-entangled with the first data block.
            self._closure = xor_payloads(self._parities[-1], self._data[0])
        return len(self._data) - 1

    def blocks(self) -> Dict[str, Payload]:
        """All stored blocks, labelled ``d<i>``, ``p<i>`` and optionally ``closure``."""
        labelled: Dict[str, Payload] = {}
        for position, payload in enumerate(self._data):
            labelled[f"d{position}"] = payload
        for position, payload in enumerate(self._parities):
            labelled[f"p{position}"] = payload
        if self._closed and self._closure is not None:
            labelled["closure"] = self._closure
        return labelled

    def recover_data(self, position: int, lost: Set[str]) -> Payload:
        """Rebuild ``d<position>`` given the labels of the lost blocks.

        Recovery uses ``d_i = p_i XOR p_{i-1}``; when one of the two parities
        is lost the decoder walks the chain re-deriving parities from
        surviving data blocks, and a closed chain can additionally come back
        around through the closure parity.
        """
        if not 0 <= position < len(self._data):
            raise UnknownBlockError(f"position {position} outside the chain")
        if f"d{position}" not in lost:
            return self._data[position]
        left = self._derive_parity(position - 1, lost)
        right = self._derive_parity(position, lost)
        if left is not None and right is not None:
            return xor_payloads(left, right)
        raise RepairFailedError(f"d{position}", "chain too damaged")

    def _derive_parity(self, position: int, lost: Set[str]) -> Optional[Payload]:
        """Value of ``p<position>`` (``p-1`` is the zero block), if derivable."""
        size = self._data[0].size if self._data else 0
        if position < 0:
            return zero_payload(size)
        if position >= len(self._parities):
            return None
        if f"p{position}" not in lost:
            return self._parities[position]
        # p_i = d_i XOR p_{i-1}: walk left while blocks survive.
        if f"d{position}" not in lost:
            previous = self._derive_parity(position - 1, lost)
            if previous is not None:
                return xor_payloads(self._data[position], previous)
        # p_i = d_{i+1} XOR p_{i+1}: walk right while blocks survive.
        if position + 1 < len(self._data) and f"d{position + 1}" not in lost:
            following = self._derive_parity_right(position + 1, lost)
            if following is not None:
                return xor_payloads(self._data[position + 1], following)
        # Closed chains can recover the tail parity through the closure block.
        if (
            self._closed
            and self._closure is not None
            and position == len(self._parities) - 1
            and "closure" not in lost
            and "d0" not in lost
        ):
            return xor_payloads(self._closure, self._data[0])
        return None

    def _derive_parity_right(self, position: int, lost: Set[str]) -> Optional[Payload]:
        """Like :meth:`_derive_parity` but only walking towards the tail."""
        if position >= len(self._parities):
            return None
        if f"p{position}" not in lost:
            return self._parities[position]
        if position + 1 < len(self._data) and f"d{position + 1}" not in lost:
            following = self._derive_parity_right(position + 1, lost)
            if following is not None:
                return xor_payloads(self._data[position + 1], following)
        if (
            self._closed
            and self._closure is not None
            and position == len(self._parities) - 1
            and "closure" not in lost
            and "d0" not in lost
        ):
            return xor_payloads(self._closure, self._data[0])
        return None

    def survives(self, lost: Set[str]) -> bool:
        """True when every data block can be recovered after losing ``lost``."""
        for position in range(len(self._data)):
            if f"d{position}" not in lost:
                continue
            try:
                self.recover_data(position, lost)
            except RepairFailedError:
                return False
        return True


# ----------------------------------------------------------------------
# Entangled mirror arrays
# ----------------------------------------------------------------------
@dataclass
class MirrorDrive:
    """One drive of an entangled mirror array."""

    drive_id: int
    role: str  # "data" or "parity"
    content: Dict[int, Payload] = field(default_factory=dict)
    failed: bool = False

    def write(self, slot: int, payload: Payload) -> None:
        if self.failed:
            raise RepairFailedError(f"drive {self.drive_id}", "drive failed")
        self.content[slot] = payload

    def read(self, slot: int) -> Optional[Payload]:
        if self.failed:
            return None
        return self.content.get(slot)


class EntangledMirrorArray:
    """Simple-entanglement disk array with the same overhead as mirroring.

    ``layout`` selects *full partition* (blocks written sequentially on the
    same drive type; drive ``i`` holds chain positions congruent to ``i``) or
    *block striping* (consecutive chain positions rotate over all drives).
    """

    FULL_PARTITION = "full-partition"
    BLOCK_STRIPING = "block-striping"

    def __init__(self, drive_pairs: int, layout: str = FULL_PARTITION, closed: bool = False) -> None:
        if drive_pairs < 1:
            raise InvalidParametersError("the array needs at least one drive pair")
        if layout not in (self.FULL_PARTITION, self.BLOCK_STRIPING):
            raise InvalidParametersError(f"unknown layout {layout!r}")
        self._layout = layout
        self._chain = SimpleEntanglementChain(closed=closed)
        self.data_drives = [MirrorDrive(i, "data") for i in range(drive_pairs)]
        self.parity_drives = [MirrorDrive(i, "parity") for i in range(drive_pairs)]
        self._positions: List[Tuple[int, int]] = []  # (data drive, slot) per chain position

    @property
    def layout(self) -> str:
        return self._layout

    @property
    def chain(self) -> SimpleEntanglementChain:
        return self._chain

    @property
    def drive_count(self) -> int:
        return len(self.data_drives) + len(self.parity_drives)

    @property
    def storage_overhead(self) -> float:
        """Same space overhead as mirroring: 100%."""
        return 1.0

    def write(self, payload: PayloadLike) -> int:
        """Append one block to the array; returns its chain position."""
        position = self._chain.append(payload)
        blocks = self._chain.blocks()
        if self._layout == self.FULL_PARTITION:
            drive_index = position % len(self.data_drives)
            slot = position // len(self.data_drives)
        else:
            drive_index = position % len(self.data_drives)
            slot = position // len(self.data_drives)
        self.data_drives[drive_index].write(slot, blocks[f"d{position}"])
        self.parity_drives[drive_index].write(slot, blocks[f"p{position}"])
        self._positions.append((drive_index, slot))
        return position

    def fail_drives(self, data_drives: Sequence[int] = (), parity_drives: Sequence[int] = ()) -> None:
        for index in data_drives:
            self.data_drives[index].failed = True
        for index in parity_drives:
            self.parity_drives[index].failed = True

    def lost_labels(self) -> Set[str]:
        """Chain-block labels made unavailable by the failed drives."""
        lost: Set[str] = set()
        for position, (drive_index, _slot) in enumerate(self._positions):
            if self.data_drives[drive_index].failed:
                lost.add(f"d{position}")
            if self.parity_drives[drive_index].failed:
                lost.add(f"p{position}")
        return lost

    def data_survives(self) -> bool:
        """Whether every written block is still recoverable."""
        return self._chain.survives(self.lost_labels())

    def read(self, position: int) -> Payload:
        """Read a block, recovering it through the chain if its drive failed."""
        drive_index, slot = self._positions[position]
        payload = self.data_drives[drive_index].read(slot)
        if payload is not None:
            return payload
        return self._chain.recover_data(position, self.lost_labels())


# ----------------------------------------------------------------------
# RAID-AE
# ----------------------------------------------------------------------
class RAIDAEArray:
    """A disk array protected by an AE(alpha, s, p) lattice (RAID-AE).

    Disks are the storage locations of an internal cluster; blocks are placed
    round-robin so consecutive lattice elements land on different disks
    (declustered never-ending stripe).  Disks can be added at any time without
    re-encoding -- new writes simply start using the larger array.
    """

    def __init__(
        self,
        params: AEParameters,
        disk_count: int,
        block_size: int = 4096,
    ) -> None:
        if disk_count < params.alpha + 1:
            raise InvalidParametersError(
                "RAID-AE needs at least alpha + 1 disks to separate a block from its parities"
            )
        self._params = params
        self._block_size = block_size
        self._placement = DictionaryPlacement(disk_count, {})
        self._cluster = StorageCluster(disk_count, self._placement)
        self._encoder = Entangler(params, block_size)
        self._next_disk = 0

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def params(self) -> AEParameters:
        return self._params

    @property
    def disk_count(self) -> int:
        return self._cluster.location_count

    @property
    def cluster(self) -> StorageCluster:
        return self._cluster

    @property
    def lattice(self) -> HelicalLattice:
        return self._encoder.lattice

    @property
    def write_penalty(self) -> int:
        """Physical writes per logical write: ``alpha + 1`` (paper, Sec. IV-B2)."""
        return self._params.alpha + 1

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def write(self, payload: PayloadLike) -> DataId:
        """Write one block (and its parities) across the array.

        Blocks rotate round-robin over the disks; disks that are currently
        failed are skipped so the array keeps accepting writes in degraded
        mode (a :class:`RepairFailedError` is raised only when no disk is up).
        """
        encoded = self._encoder.entangle(payload)
        for block in encoded.all_blocks():
            disk = self._next_available_disk()
            self._placement.record(block.block_id, disk)
            self._cluster.put_block(block, disk)
        return encoded.data_id

    def _next_available_disk(self) -> int:
        for _ in range(self.disk_count):
            disk = self._next_disk
            self._next_disk = (self._next_disk + 1) % self.disk_count
            if self._cluster.location(disk).available:
                return disk
        raise RepairFailedError("raid-ae", "no available disk to accept writes")

    def read(self, data_id: DataId) -> Payload:
        """Read a block; degraded reads go through the lattice repair paths."""
        decoder = Decoder(self.lattice, self._cluster.try_get_block, self._block_size)
        return decoder.get(data_id)

    # ------------------------------------------------------------------
    # Scaling and failures
    # ------------------------------------------------------------------
    def add_disk(self) -> int:
        """Grow the array by one disk without touching existing blocks."""
        new_count = self.disk_count + 1
        new_placement = DictionaryPlacement(new_count, {})
        new_cluster = StorageCluster(new_count, new_placement)
        for location in self._cluster.locations():
            for block_id in list(location.block_ids()):
                payload = location.try_get(block_id)
                if payload is None:
                    continue
                new_placement.record(block_id, location.location_id)
                new_cluster.put_block(Block(block_id, payload), location.location_id)
            if not location.available:
                new_cluster.fail_locations([location.location_id])
        self._placement = new_placement
        self._cluster = new_cluster
        return new_count - 1

    def fail_disk(self, disk_id: int) -> None:
        self._cluster.fail_locations([disk_id])

    def rebuild(self, policy: MaintenancePolicy = MaintenancePolicy.FULL) -> ClusterRepairReport:
        """Rebuild the blocks of failed disks onto the surviving disks."""
        manager = ClusterRepairManager(
            self.lattice, self._cluster, self._block_size, policy
        )
        return manager.repair()

    def rebuild_cost_estimate(self, failed_blocks: int) -> Dict[str, int]:
        """Reads/writes needed to rebuild ``failed_blocks`` single failures."""
        return {
            "blocks_read": 2 * failed_blocks,
            "blocks_written": failed_blocks,
        }
