"""Live redundancy-scheme transitions for a running storage service.

The paper's headline flexibility (Sec. I and III-B) is that redundancy can
*evolve in place*: alpha can be raised without touching stored data,
parities can be punctured for intermediate code rates, and an archive can
outgrow one code family into another.  This module makes that operational
for the live system: a :class:`TransitionEngine` migrates an open
:class:`~repro.system.service.StorageService` between any two registered
schemes while reads keep flowing, and a durable :class:`TransitionPlan`
(``transition.json`` next to the service manifest) makes every step
crash-resumable.

Three transition kinds, picked by :func:`classify`:

``alpha-raise``
    AE -> AE with the same ``(s, p)`` geometry and a higher ``alpha``.
    The engine re-walks the stored data blocks once with
    :class:`~repro.core.dynamic.AlphaUpgrader`, computing only the new
    strand-class parities -- **zero data blocks are rewritten** -- then
    swaps in a scheme instance over the widened lattice and records the
    change in the service's :class:`~repro.core.dynamic.EpochHistory`.

``repuncture``
    AE -> AE with identical parameters but a different puncturing rate
    (including plain <-> punctured).  Parities the target stores but the
    source dropped are regenerated through the decoder and written
    *before* the scheme flips; parities the target punctures are deleted
    only *after* the flip is durable -- the copy-commit-before-delete
    ordering of the shard rebalancer, applied to parities.

``reencode``
    Everything else (replication -> AE, AE -> Reed-Solomon, RS -> LRC,
    ...).  Documents stream one at a time through a read-under-the-old /
    encode-under-the-new pass; each document's new blocks are committed to
    the metadata WAL (a ``transition_doc`` record) before its old blocks
    are deleted, and reads of not-yet-migrated documents fall back to the
    retained source scheme, so every document is byte-exact at every
    instant.  AE -> AE geometry changes are rejected: both settings share
    the ``d-<n>`` block namespace, so a live re-encode cannot keep both
    generations readable.

This module is on the repro-lint RPR001 engine path: no wall-clock, no
entropy -- a resumed transition replays to the same result.
"""

from __future__ import annotations

import json
import os
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, ContextManager, Dict, List, Optional, Set

import repro.schemes as schemes
from repro.codes.entanglement import EntanglementScheme, PuncturedEntanglementScheme
from repro.core.blocks import DataId, ParityId
from repro.core.dynamic import AlphaUpgrader, plan_alpha_upgrade
from repro.core.xor import Payload
from repro.exceptions import InvalidParametersError
from repro.schemes.base import RedundancyScheme
from repro.schemes.stripe import StripeScheme
from repro.storage.backends import write_json

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (service imports us)
    from repro.system.service import StorageService

__all__ = [
    "KIND_ALPHA_RAISE",
    "KIND_REENCODE",
    "KIND_REPUNCTURE",
    "STAGE_CLEANUP",
    "STAGE_MIGRATE",
    "TRANSITION_FORMAT",
    "TRANSITION_NAME",
    "TransitionEngine",
    "TransitionPlan",
    "TransitionReport",
    "classify",
]

#: Name of the durable transition manifest inside a service ``data_dir``.
TRANSITION_NAME = "transition.json"

#: Transition manifest format version.
TRANSITION_FORMAT = 1

KIND_ALPHA_RAISE = "alpha-raise"
KIND_REPUNCTURE = "repuncture"
KIND_REENCODE = "reencode"

#: Stage while documents (or parities) are still being rewritten.
STAGE_MIGRATE = "migrate"
#: Stage once every document is on the target and only old-scheme block
#: reclamation remains.
STAGE_CLEANUP = "cleanup"

#: Blocks buffered per bulk cluster write during a parity walk.
FLUSH_BLOCKS = 256

#: Guards one document against concurrent readers while it migrates (the
#: front-end passes its stripe write lock; a bare service needs none).
DocumentGuard = Callable[[str], ContextManager[object]]


def classify(source: RedundancyScheme, target: RedundancyScheme) -> str:
    """The transition kind between two schemes, or raise if unsupported.

    AE -> AE pairs must either share all parameters (a ``repuncture``) or
    differ *only* by a higher target alpha with neither side punctured (an
    ``alpha-raise``); anything else -- geometry changes, alpha lowering,
    raising a punctured lattice -- is rejected with the supported path
    spelled out.  Every cross-family pair is a ``reencode``.
    """
    source_ae = isinstance(source, EntanglementScheme)
    target_ae = isinstance(target, EntanglementScheme)
    if not (source_ae and target_ae):
        return KIND_REENCODE
    if source.params == target.params:
        return KIND_REPUNCTURE
    source_plain = not isinstance(source, PuncturedEntanglementScheme)
    target_plain = not isinstance(target, PuncturedEntanglementScheme)
    same_geometry = (
        not source.params.is_single
        and not target.params.is_single
        and source.params.s == target.params.s
        and source.params.p == target.params.p
    )
    if same_geometry and source_plain and target_plain:
        new_classes = set(target.params.strand_classes) - set(
            source.params.strand_classes
        )
        if target.params.alpha > source.params.alpha and not new_classes:
            # The lattice has three strand classes (H, RH, LH); past
            # alpha=3 a "raise" adds no class and therefore no protection.
            raise InvalidParametersError(
                f"raising {source.scheme_id} to {target.scheme_id} adds no "
                "strand class (the helical lattice tops out at alpha=3); "
                "nothing would be gained"
            )
        if target.params.alpha > source.params.alpha:
            return KIND_ALPHA_RAISE
        raise InvalidParametersError(
            f"cannot lower alpha live ({source.scheme_id} -> "
            f"{target.scheme_id}); puncture instead "
            f"({source.scheme_id}-p<keep%> trades parities for rate without "
            "rewiring the lattice)"
        )
    if same_geometry and target.params.alpha > source.params.alpha:
        raise InvalidParametersError(
            f"cannot raise alpha on a punctured lattice ({source.scheme_id} "
            f"-> {target.scheme_id}); transition to the unpunctured setting "
            "first, then raise alpha"
        )
    raise InvalidParametersError(
        f"cannot re-wire AE geometry live ({source.scheme_id} -> "
        f"{target.scheme_id}): both settings share the d-<n> block "
        "namespace, so a live re-encode cannot keep the old generation "
        "readable; supported AE transitions are alpha raises and puncturing "
        "changes"
    )


@dataclass
class TransitionPlan:
    """The durable state machine of one scheme transition.

    Persisted atomically as ``transition.json``; together with the metadata
    WAL it makes the transition resumable from any crash point.  ``pending``
    is the set of documents still encoded under the source scheme (reads of
    those fall back to the source); the WAL's ``transition_doc`` records
    shrink it between checkpoints.  ``source_state`` is the source scheme's
    state frozen at the start, so a reopen can rebuild the fallback
    read path.
    """

    source: str
    target: str
    kind: str
    stage: str = STAGE_MIGRATE
    pending: Set[str] = field(default_factory=set)
    stripe_base: int = 0
    upgrade_position: int = 0
    source_state: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "format": TRANSITION_FORMAT,
            "source": self.source,
            "target": self.target,
            "kind": self.kind,
            "stage": self.stage,
            "pending": sorted(self.pending),
            "stripe_base": self.stripe_base,
            "upgrade_position": self.upgrade_position,
            "source_state": self.source_state,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "TransitionPlan":
        if int(raw.get("format", 0)) != TRANSITION_FORMAT:
            raise InvalidParametersError(
                f"unsupported transition manifest format: {raw.get('format')!r}"
            )
        return cls(
            source=str(raw["source"]),
            target=str(raw["target"]),
            kind=str(raw["kind"]),
            stage=str(raw.get("stage", STAGE_MIGRATE)),
            pending=set(str(name) for name in raw.get("pending", [])),  # type: ignore[union-attr]
            stripe_base=int(raw.get("stripe_base", 0)),  # type: ignore[arg-type]
            upgrade_position=int(raw.get("upgrade_position", 0)),  # type: ignore[arg-type]
            source_state=dict(raw.get("source_state", {})),  # type: ignore[arg-type]
        )

    def save(self, data_dir: str, fsync: bool = False) -> None:
        """Atomically persist the plan next to the service manifest."""
        write_json(
            os.path.join(data_dir, TRANSITION_NAME), self.to_dict(), fsync=fsync
        )

    @staticmethod
    def load(data_dir: str) -> Optional["TransitionPlan"]:
        path = os.path.join(data_dir, TRANSITION_NAME)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
        except FileNotFoundError:
            return None
        except json.JSONDecodeError as exc:
            raise InvalidParametersError(
                f"corrupt transition manifest {path!r}: {exc}; the service "
                "manifest and block data are intact -- restore or delete the "
                "transition manifest before reopening"
            ) from exc
        return TransitionPlan.from_dict(raw)

    @staticmethod
    def remove(data_dir: str) -> None:
        try:
            os.remove(os.path.join(data_dir, TRANSITION_NAME))
        except FileNotFoundError:
            pass


@dataclass
class TransitionReport:
    """Outcome of one completed transition (or resumed remainder)."""

    source: str
    target: str
    kind: str
    documents_migrated: int = 0
    blocks_written: int = 0
    blocks_deleted: int = 0
    parities_written: int = 0
    data_blocks_rewritten: int = 0
    resumed: bool = False

    def summary(self) -> str:
        text = (
            f"[{self.kind}] {self.source} -> {self.target}: "
            f"{self.documents_migrated} documents migrated, "
            f"{self.blocks_written} blocks written "
            f"({self.data_blocks_rewritten} data), "
            f"{self.blocks_deleted} deleted"
        )
        if self.resumed:
            text += " (resumed)"
        return text


class TransitionEngine:
    """Drives one scheme transition over a live storage service.

    The engine orchestrates; the durable per-document commit protocol lives
    in :meth:`StorageService._migrate_document` so it shares the service's
    lock and WAL discipline.  ``doc_guard`` (when the front-end supplies
    one) excludes readers of exactly the document being migrated for the
    instant of its copy-commit-delete window; all other reads proceed
    untouched.
    """

    def __init__(
        self,
        service: "StorageService",
        target: RedundancyScheme,
        doc_guard: Optional[DocumentGuard] = None,
    ) -> None:
        self._service = service
        self._target = target
        self._doc_guard: DocumentGuard = doc_guard or (lambda _name: nullcontext())

    def run(self) -> Optional[TransitionReport]:
        """Execute (or resume) the transition to completion.

        Returns ``None`` when the service is already on the target scheme
        and nothing was in flight.
        """
        service = self._service
        plan = service._transition
        resumed = plan is not None
        if plan is None:
            plan = self._start()
            if plan is None:
                return None
        report = TransitionReport(
            source=plan.source, target=plan.target, kind=plan.kind, resumed=resumed
        )
        if plan.kind == KIND_ALPHA_RAISE:
            self._run_alpha_raise(plan, report)
        elif plan.kind == KIND_REPUNCTURE:
            self._run_repuncture(plan, report)
        elif plan.kind == KIND_REENCODE:
            self._run_reencode(plan, report)
        else:
            raise InvalidParametersError(
                f"unknown transition kind {plan.kind!r} in "
                f"{service.data_dir!r}; the transition manifest was written "
                "by an incompatible version"
            )
        service._finish_transition()
        return report

    # ------------------------------------------------------------------
    # Start: freeze the plan, make the intent durable
    # ------------------------------------------------------------------
    def _start(self) -> Optional[TransitionPlan]:
        service = self._service
        target = self._target
        with service._state_lock:
            source = service._scheme
            if source.scheme_id == target.scheme_id:
                return None
            if source.block_size != target.block_size:
                raise InvalidParametersError(
                    f"cannot transition across block sizes "
                    f"({source.block_size} -> {target.block_size}); blocks "
                    "would need re-chunking, which changes every document's "
                    "block ids"
                )
            kind = classify(source, target)
            plan = TransitionPlan(
                source=source.scheme_id,
                target=target.scheme_id,
                kind=kind,
                source_state=dict(source.state()),
            )
            if kind == KIND_REENCODE:
                plan.pending = set(service._documents)
                if isinstance(source, StripeScheme) and isinstance(
                    target, StripeScheme
                ):
                    # Both families use StripeBlockId: the target starts
                    # numbering past the source so the namespaces stay
                    # disjoint until the old stripes are reclaimed.
                    plan.stripe_base = source.stripes_written
                    target.restore_state(
                        {"next_stripe": plan.stripe_base},
                        service._cluster.try_get_block,
                    )
                # Flip now: new writes land on the target, reads of pending
                # documents fall back to the retained source instance.
                service._begin_transition(plan, target)
            else:
                # AE-internal kinds keep the source serving until their
                # parity walk completes; the flip is inside the run.
                service._transition = plan
                service._fallback = None
        service._save_transition_plan()
        # The start checkpoint makes the intent durable: manifest + fresh
        # WAL epoch on one side of the crash window, the plan on the other.
        service._checkpoint()
        return plan

    # ------------------------------------------------------------------
    # alpha-raise: new strand-class parities only, zero data rewritten
    # ------------------------------------------------------------------
    def _run_alpha_raise(self, plan: TransitionPlan, report: TransitionReport) -> None:
        service = self._service
        if service._scheme.scheme_id == plan.target:
            return  # resumed past the flip checkpoint; only cleanup remained
        with service._state_lock:
            source = service._scheme
            assert isinstance(source, EntanglementScheme)
            upgrade = plan_alpha_upgrade(
                source.params,
                self._target.params.alpha,  # type: ignore[attr-defined]
                source.entangler.blocks_encoded,
            )
            upgrader = AlphaUpgrader(upgrade, source.block_size)
            fetch = self._data_fetch(source)
            batch: List[object] = []
            for block in upgrader.run(fetch):
                batch.append((block.block_id, block.payload))
                if len(batch) >= FLUSH_BLOCKS:
                    service._cluster.put_many(batch)  # type: ignore[arg-type]
                    report.parities_written += len(batch)
                    plan.upgrade_position = int(batch[-1][0].index)  # type: ignore[attr-defined,index]
                    batch.clear()
            if batch:
                service._cluster.put_many(batch)  # type: ignore[arg-type]
                report.parities_written += len(batch)
            plan.upgrade_position = upgrade.lattice_size
            report.blocks_written += report.parities_written
            # Swap in a scheme over the widened lattice.  restore_state
            # re-fetches the strand heads -- including the classes the walk
            # just wrote -- so the next encode chains correctly.
            raised = EntanglementScheme(
                upgrade.new_params,
                block_size=source.block_size,
                scheme_id=plan.target,
            )
            raised.restore_state(source.state(), service._cluster.try_get_block)
            service._scheme = raised
            service._record_epoch(upgrade.new_params)
        plan.stage = STAGE_CLEANUP
        service._checkpoint()

    def _data_fetch(
        self, source: EntanglementScheme
    ) -> Callable[[DataId], Optional[Payload]]:
        """Data-block fetch for the upgrade walk, with degraded fallback."""
        service = self._service

        def fetch(data_id: DataId) -> Optional[Payload]:
            payload = service._cluster.try_get_block(data_id)
            if payload is None:
                # An unavailable data block is rebuilt through the source's
                # existing parities before its new parities are derived.
                payload = source.read_block(data_id, service._cluster.try_get_block)
            return payload

        return fetch

    # ------------------------------------------------------------------
    # repuncture: regenerate-then-flip-then-delete
    # ------------------------------------------------------------------
    def _run_repuncture(self, plan: TransitionPlan, report: TransitionReport) -> None:
        service = self._service
        if service._scheme.scheme_id != plan.target:
            # Additions pass: parities the target keeps but the source never
            # stored are regenerated through the decoder and written first.
            with service._state_lock:
                source = service._scheme
                assert isinstance(source, EntanglementScheme)
                target_code = getattr(self._target, "punctured_code", None)
                batch = []
                for parity in self._source_only_parities(source, target_code):
                    if service._cluster.knows(parity):
                        continue  # idempotent resume: already regenerated
                    payload = source.read_block(parity, service._cluster.try_get_block)
                    batch.append((parity, payload))
                    if len(batch) >= FLUSH_BLOCKS:
                        service._cluster.put_many(batch)
                        report.parities_written += len(batch)
                        batch.clear()
                if batch:
                    service._cluster.put_many(batch)
                    report.parities_written += len(batch)
                report.blocks_written += report.parities_written
                # Flip: the target re-reads the strand heads (regenerating
                # any the new rate punctures).
                self._target.restore_state(
                    source.state(), service._cluster.try_get_block
                )
                service._scheme = self._target
            plan.stage = STAGE_CLEANUP
            # The flip must be durable before any parity disappears.
            service._checkpoint()
        # Deletion pass: parities the (now current) target punctures.  The
        # deterministic policy is monotone in the keep fraction, so the
        # target's punctured set covers everything any source rate stored.
        with service._state_lock:
            current = service._scheme
            if isinstance(current, PuncturedEntanglementScheme):
                doomed = [
                    parity
                    for parity in current.punctured_parities()
                    if service._cluster.knows(parity)
                ]
                report.blocks_deleted += service._cluster.delete_blocks(doomed)

    @staticmethod
    def _source_only_parities(
        source: EntanglementScheme, target_code: Optional[object]
    ) -> List[ParityId]:
        """Parities punctured by the source but stored by the target."""
        source_code = getattr(source, "punctured_code", None)
        if source_code is None:
            return []  # a plain source stored everything
        wanted: List[ParityId] = []
        for index in range(1, source.entangler.blocks_encoded + 1):
            for strand_class in source.params.strand_classes:
                parity = ParityId(index, strand_class)
                if not source_code.is_punctured(parity):
                    continue
                if target_code is not None and target_code.is_punctured(parity):  # type: ignore[attr-defined]
                    continue
                wanted.append(parity)
        return wanted

    # ------------------------------------------------------------------
    # reencode: stream documents through the new scheme
    # ------------------------------------------------------------------
    def _run_reencode(self, plan: TransitionPlan, report: TransitionReport) -> None:
        service = self._service
        for name in sorted(plan.pending):
            with self._doc_guard(name):
                moved = service._migrate_document(name)
            if moved is not None:
                written, deleted, data_blocks = moved
                report.documents_migrated += 1
                report.blocks_written += written
                report.blocks_deleted += deleted
                report.data_blocks_rewritten += data_blocks
        plan.stage = STAGE_CLEANUP
        # A non-erasable source (entanglement) reclaims nothing per
        # document; once every document lives on the target, the whole
        # retired lattice -- data and parities -- is deleted in one sweep.
        source_scheme = schemes.get(plan.source, block_size=service.block_size)
        if not source_scheme.capabilities().erasable:
            with service._state_lock:
                doomed = [
                    block_id
                    for block_id in service._cluster.block_ids()
                    if isinstance(block_id, (DataId, ParityId))
                ]
                report.blocks_deleted += service._cluster.delete_blocks(doomed)
