"""The scheme-agnostic storage front-end.

:class:`StorageService` is the public face of the repository: one
put/get/delete/fail/repair API over a :class:`~repro.storage.cluster.StorageCluster`
and *any* redundancy scheme implementing the
:class:`~repro.schemes.base.RedundancyScheme` protocol -- alpha entanglement
or any of the paper's stripe-code baselines.  Services are opened from a
:class:`StorageConfig`::

    from repro import StorageConfig, StorageService

    service = StorageService.open(StorageConfig(scheme="rs-10-4"))
    service.put("report", payload)
    service.fail_locations(range(3))
    report = service.repair()
    assert service.get("report") == payload

The legacy :class:`~repro.system.entangled_store.EntangledStorageSystem` is a
thin AE-specific shim over this class.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Optional, Union

import repro.schemes as schemes
from repro.core.blocks import join_blocks
from repro.core.encoder import DEFAULT_BLOCK_SIZE
from repro.core.xor import Payload, payload_to_bytes
from repro.exceptions import InvalidParametersError, UnknownBlockError
from repro.schemes.base import RedundancyScheme, SchemeCapabilities
from repro.storage import placement as placement_registry
from repro.storage.backends import decode_block_id, encode_block_id, write_json
from repro.storage.cluster import StorageCluster
from repro.storage.placement import PlacementPolicy
from repro.storage.topology import Topology
from repro.storage.wal import WAL_NAME, MetadataWAL, WalGroup

#: Number of blocks encoded per batch by :meth:`StorageService.put_stream`.
DEFAULT_BATCH_BLOCKS = 256

#: Locations in a cluster when neither the config nor a manifest names one.
DEFAULT_LOCATION_COUNT = 100

#: Name of the service manifest inside a durable ``data_dir``.
MANIFEST_NAME = "manifest.json"

#: Manifest format version (bumped on incompatible layout changes).
MANIFEST_FORMAT = 1

#: WAL size (bytes) past which a mutation triggers a checkpoint that
#: collapses the log back into ``manifest.json``.
DEFAULT_WAL_CHECKPOINT_BYTES = 1 << 20


def _encode_id_runs(data_ids: List[object]) -> List[object]:
    """Run-length encode a document's block ids for the manifest.

    Data ids are consecutive within a document (``d-5, d-6, ...`` for AE;
    ``s[3,0], s[3,1], ...`` within a stripe), so the catalogue stores
    ``["d-5", 120]`` (120 ids starting at ``d-5``) instead of 120 strings --
    the manifest stays O(documents + stripes), not O(blocks).
    """
    from repro.schemes.stripe import StripeBlockId
    from repro.core.blocks import DataId

    def successor(prev: object, current: object) -> bool:
        if isinstance(prev, DataId) and isinstance(current, DataId):
            return current.index == prev.index + 1
        if isinstance(prev, StripeBlockId) and isinstance(current, StripeBlockId):
            return (
                current.stripe == prev.stripe
                and current.position == prev.position + 1
            )
        return False

    entries: List[object] = []
    run_start: Optional[object] = None
    run_length = 0
    previous: Optional[object] = None
    for block_id in data_ids:
        if previous is not None and successor(previous, block_id):
            run_length += 1
        else:
            if run_start is not None:
                key = encode_block_id(run_start)
                entries.append(key if run_length == 1 else [key, run_length])
            run_start, run_length = block_id, 1
        previous = block_id
    if run_start is not None:
        key = encode_block_id(run_start)
        entries.append(key if run_length == 1 else [key, run_length])
    return entries


def _decode_id_runs(entries: List[object]) -> List[object]:
    """Inverse of :func:`_encode_id_runs`."""
    from repro.schemes.stripe import StripeBlockId
    from repro.core.blocks import DataId

    data_ids: List[object] = []
    for entry in entries:
        if isinstance(entry, str):
            data_ids.append(decode_block_id(entry))
            continue
        key, count = entry
        start = decode_block_id(key)
        if isinstance(start, DataId):
            data_ids.extend(DataId(start.index + i) for i in range(int(count)))
        elif isinstance(start, StripeBlockId):
            data_ids.extend(
                StripeBlockId(start.stripe, start.position + i)
                for i in range(int(count))
            )
        else:
            raise InvalidParametersError(
                f"manifest id run may not start at {key!r}"
            )
    return data_ids


@dataclass
class StoredDocument:
    """Metadata of one document stored in the system."""

    name: str
    data_ids: List[object]
    length: int

    @property
    def block_count(self) -> int:
        return len(self.data_ids)


@dataclass(frozen=True)
class StorageConfig:
    """Configuration of a :class:`StorageService`.

    ``scheme`` is either a registry identifier (``"ae-3-2-5"``, ``"rs-10-4"``,
    ``"lrc-azure"``, ...) or an already-built scheme instance.

    ``topology`` describes the cluster's spatial layout: a
    :class:`~repro.storage.topology.Topology`, a compact spec string
    (``"sites=3,racks=2,nodes=4"``), a topology JSON file path or a bare
    location count.  ``placement`` is either a policy name from the
    :mod:`repro.storage.placement` registry (``"spread-domains"``,
    ``"weighted"``, ...) -- resolved over the topology with the scheme's
    parameters, and persisted in the manifest so a durable reopen restores
    it automatically -- or an already-built :class:`PlacementPolicy`
    instance (which a reopen must supply again).  The flat
    ``location_count=N`` form remains a shim for a single-site topology.

    ``backend`` names a storage backend from :mod:`repro.storage.backends`
    (``"memory"``, ``"disk"``, ``"segment"``); the persistent backends need
    ``data_dir``, the root directory that holds one sub-root per location
    plus the service manifest.  Opening a config whose ``data_dir`` already
    contains a manifest *reopens* the stored service: placements, documents,
    the topology and the scheme's write position are restored (see
    ``docs/persistence.md`` and ``docs/topology.md``).

    ``shards`` requests a *sharded* namespace: pass the config to
    :meth:`repro.system.sharding.ShardedStorageService.open` and the
    federation routes documents across that many independent services (each
    with its own cluster, WAL and thread pool).  A plain
    :class:`StorageService` accepts only ``shards=None`` / ``shards=1`` --
    it *is* one shard.

    ``wal`` selects how a durable service persists metadata mutations:
    ``True`` (the default) appends group-committed records to ``wal.log``
    and checkpoints into ``manifest.json`` once the log passes
    ``wal_checkpoint_bytes``; ``False`` restores the PR 4 behaviour of
    rewriting the whole manifest after every mutation (kept as the
    baseline the WAL is benchmarked against).  Both modes survive a crash
    at any point; see ``docs/persistence.md``.
    """

    scheme: Union[str, RedundancyScheme] = schemes.DEFAULT_SCHEME
    #: ``None`` means "default" (:data:`DEFAULT_LOCATION_COUNT`) -- or, on a
    #: durable reopen, "whatever the manifest says".  An explicit value that
    #: contradicts the manifest is rejected.
    location_count: Optional[int] = None
    block_size: int = DEFAULT_BLOCK_SIZE
    placement: Optional[Union[str, PlacementPolicy]] = None
    cluster: Optional[StorageCluster] = None
    seed: int = 0
    batch_blocks: int = DEFAULT_BATCH_BLOCKS
    backend: str = "memory"
    data_dir: Optional[str] = None
    fsync: bool = False
    cache_blocks: Optional[int] = None
    topology: Optional[Union[str, int, Topology]] = None
    wal: bool = True
    wal_checkpoint_bytes: int = DEFAULT_WAL_CHECKPOINT_BYTES
    #: Shard count for :class:`~repro.system.sharding.ShardedStorageService`;
    #: ``None`` (or 1) means an unsharded service.
    shards: Optional[int] = None

    def resolve_scheme(self) -> RedundancyScheme:
        if isinstance(self.scheme, RedundancyScheme):
            return self.scheme
        return schemes.get(self.scheme, block_size=self.block_size)

    def resolve_topology(self) -> Optional[Topology]:
        """The explicit topology of this config, ``None`` when unspecified."""
        if self.topology is not None:
            return Topology.resolve(self.topology)
        if self.cluster is not None:
            return self.cluster.topology
        if isinstance(self.placement, PlacementPolicy):
            return self.placement.topology
        return None


@dataclass
class ServiceStatus:
    """Snapshot of the health of a storage service."""

    scheme: str
    blocks: int
    unavailable_blocks: int
    unavailable_data_blocks: int
    locations: int
    unavailable_locations: int
    documents: int
    bytes_stored: int
    cache_hits: int = 0
    cache_misses: int = 0

    def summary(self) -> str:
        return (
            f"[{self.scheme}] {self.blocks} blocks on {self.locations} locations "
            f"({self.unavailable_locations} down); {self.unavailable_blocks} blocks "
            f"unreachable ({self.unavailable_data_blocks} data); "
            f"{self.documents} documents, {self.bytes_stored} bytes"
        )


@dataclass
class ServiceRepairReport:
    """Outcome of a scheme-agnostic repair run."""

    scheme: str
    repaired: List[object] = field(default_factory=list)
    unrecovered: List[object] = field(default_factory=list)
    blocks_read: int = 0
    rounds: int = 0
    data_loss: int = 0

    @property
    def repaired_count(self) -> int:
        return len(self.repaired)

    def summary(self) -> str:
        return (
            f"[{self.scheme}] repaired {self.repaired_count} blocks in "
            f"{self.rounds} rounds ({self.blocks_read} reads); "
            f"data loss {self.data_loss}, {len(self.unrecovered)} blocks unrecovered"
        )


class StorageService:
    """High-level put/get/delete/repair interface over any redundancy scheme."""

    def __init__(
        self,
        scheme: RedundancyScheme,
        cluster: StorageCluster,
        batch_blocks: int = DEFAULT_BATCH_BLOCKS,
        data_dir: Optional[str] = None,
        fsync: bool = False,
        seed: int = 0,
        custom_placement: bool = False,
        placement_spec: Optional[str] = None,
        wal: bool = True,
        wal_checkpoint_bytes: int = DEFAULT_WAL_CHECKPOINT_BYTES,
    ) -> None:
        if batch_blocks < 1:
            raise ValueError("batch_blocks must be at least 1")
        if data_dir is not None and not all(
            store.backend.persistent for store in cluster.locations()
        ):
            raise InvalidParametersError(
                "data_dir requires a persistent backend ('disk' or 'segment'); "
                "a volatile backend would leave a manifest no reopen can honour"
            )
        self._scheme = scheme
        self._cluster = cluster
        self._batch_blocks = batch_blocks
        self._documents: Dict[str, StoredDocument] = {}
        self._data_dir = data_dir
        self._fsync = fsync
        self._seed = seed
        self._custom_placement = custom_placement
        self._placement_spec = placement_spec
        self._closed = False
        # Scheme/catalogue mutations are serialised by one lock: entanglement
        # is a single helical lattice with a monotonic write position, so
        # encodes cannot proceed in parallel anyway -- concurrency lives in
        # the block writes and the group-committed WAL, both outside it.
        self._state_lock = threading.RLock()
        self._checkpoint_lock = threading.Lock()
        self._mutation_seq = 0
        self._wal: Optional[MetadataWAL] = None
        self._wal_enabled = wal
        self._wal_checkpoint_bytes = int(wal_checkpoint_bytes)

    @classmethod
    def open(
        cls, config: Optional[StorageConfig] = None, **overrides: object
    ) -> "StorageService":
        """Open a service from a config (plus keyword overrides).

        With a persistent ``backend`` and a ``data_dir`` that already holds a
        manifest, this *reopens* the stored service: the cluster directory is
        rebuilt from the backends, the document catalogue and the scheme's
        write position are restored from the manifest, and the returned
        service serves byte-exact reads (and repair, and further writes) of
        the pre-existing data.
        """
        config = replace(config or StorageConfig(), **overrides)
        if config.shards not in (None, 1):
            raise InvalidParametersError(
                f"shards={config.shards} needs the sharded front-end; open "
                "the config with ShardedStorageService.open "
                "(repro.system.sharding) instead"
            )
        scheme = config.resolve_scheme()
        manifest = cls._load_manifest(config.data_dir)
        if manifest is not None:
            stored_scheme = manifest.get("scheme")
            if stored_scheme != scheme.scheme_id:
                raise InvalidParametersError(
                    f"data_dir {config.data_dir!r} holds a {stored_scheme!r} "
                    f"service, not {scheme.scheme_id!r}"
                )
            # Compare against the resolved scheme's block size: a config may
            # carry a scheme *instance* whose block size differs from the
            # config field (which the instance path never reads).
            if int(manifest.get("block_size", scheme.block_size)) != scheme.block_size:
                raise InvalidParametersError(
                    f"data_dir {config.data_dir!r} was written with block size "
                    f"{manifest.get('block_size')}, not {scheme.block_size}"
                )
            opening_backend = (
                config.cluster.backend_spec
                if config.cluster is not None
                else config.backend
            )
            stored_backend = manifest.get("backend", opening_backend)
            if stored_backend != opening_backend:
                raise InvalidParametersError(
                    f"data_dir {config.data_dir!r} was written with the "
                    f"{stored_backend!r} backend, not {opening_backend!r}"
                )
        seed = config.seed
        custom_placement = (
            isinstance(config.placement, PlacementPolicy)
            or config.cluster is not None
        )
        placement_spec = (
            config.placement if isinstance(config.placement, str) else None
        )
        topology = config.resolve_topology()
        if manifest is not None:
            seed = int(manifest.get("seed", seed))
            # Placement only steers *new* writes (reads follow the block
            # directory), but silently switching policies on reopen would
            # scatter a curated layout -- demand the original policy back.
            # Registry-named policies are stored in the manifest and restored
            # automatically; policy *instances* must be supplied again.
            if bool(manifest.get("custom_placement", False)) and not custom_placement:
                raise InvalidParametersError(
                    f"data_dir {config.data_dir!r} was written with a custom "
                    "placement policy; reopen it with the same placement "
                    "(StorageConfig(placement=...))"
                )
            if placement_spec is None and not custom_placement:
                stored_spec = manifest.get("placement_spec")
                placement_spec = str(stored_spec) if stored_spec else None
            stored_topology = manifest.get("topology")
            if stored_topology is not None:
                stored_topology = Topology.from_dict(stored_topology)
                if topology is not None and topology != stored_topology:
                    raise InvalidParametersError(
                        f"data_dir {config.data_dir!r} was written with a "
                        f"different topology ({stored_topology.describe()}); "
                        "reopen it with the stored topology or none at all"
                    )
                if config.cluster is None:
                    topology = stored_topology
        cluster = config.cluster
        if cluster is None:
            location_count = config.location_count
            if topology is not None:
                if (
                    location_count is not None
                    and location_count != topology.node_count
                ):
                    raise InvalidParametersError(
                        f"location_count={location_count} contradicts the "
                        f"topology ({topology.node_count} nodes)"
                    )
                location_count = topology.node_count
            if manifest is not None:
                stored_locations = int(
                    manifest.get("location_count", DEFAULT_LOCATION_COUNT)
                )
                if location_count is not None and location_count != stored_locations:
                    raise InvalidParametersError(
                        f"data_dir {config.data_dir!r} was written with "
                        f"{stored_locations} locations, not {location_count}"
                    )
                location_count = stored_locations
            if location_count is None:
                location_count = DEFAULT_LOCATION_COUNT
            if isinstance(config.placement, PlacementPolicy):
                placement = config.placement
            elif placement_spec is not None:
                placement = placement_registry.get(
                    placement_spec,
                    topology if topology is not None else location_count,
                    params=getattr(scheme, "params", None),
                    seed=seed,
                )
            else:
                placement = scheme.default_placement(
                    topology if topology is not None else location_count, seed=seed
                )
            cluster = StorageCluster(
                placement=placement,
                backend=config.backend,
                root=config.data_dir,
                cache_blocks=config.cache_blocks,
                topology=topology if topology is not None else location_count,
                fsync=config.fsync,
            )
        service = cls(
            scheme,
            cluster,
            batch_blocks=config.batch_blocks,
            data_dir=config.data_dir,
            fsync=config.fsync,
            seed=seed,
            custom_placement=custom_placement,
            placement_spec=placement_spec,
            wal=config.wal,
            wal_checkpoint_bytes=config.wal_checkpoint_bytes,
        )
        wal_groups: List[WalGroup] = []
        if config.data_dir is not None:
            os.makedirs(config.data_dir, exist_ok=True)
            service._wal = MetadataWAL(
                os.path.join(config.data_dir, WAL_NAME), fsync=config.fsync
            )
            wal_groups = service._wal.recovered_groups()
        scheme_state: Optional[Dict[str, object]] = None
        if manifest is not None:
            for name, entry in manifest.get("documents", {}).items():
                service._documents[name] = StoredDocument(
                    name=name,
                    data_ids=_decode_id_runs(entry["data_ids"]),
                    length=int(entry["length"]),
                )
            scheme_state = manifest.get("scheme_state", {})
        if wal_groups:
            # Reopen = last checkpoint + committed WAL tail (a crash may have
            # happened any time after the last checkpoint; the log holds the
            # mutations the manifest has not absorbed yet).
            scheme_state = service._replay_wal(wal_groups, scheme_state)
        if scheme_state is not None:
            scheme.restore_state(scheme_state, cluster.try_get_block)
        if config.data_dir is not None:
            # Collapse the replayed tail into a fresh checkpoint so the next
            # crash window starts from an empty log.
            service._checkpoint()
        return service

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    @property
    def data_dir(self) -> Optional[str]:
        """Root directory of a durable service, ``None`` when volatile."""
        return self._data_dir

    @staticmethod
    def _load_manifest(data_dir: Optional[str]) -> Optional[Dict[str, object]]:
        if data_dir is None:
            return None
        path = os.path.join(data_dir, MANIFEST_NAME)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except FileNotFoundError:
            return None
        except json.JSONDecodeError as exc:
            # Refusing loudly beats reopening with an empty catalogue and
            # scattering new writes over the old blocks.
            raise InvalidParametersError(
                f"corrupt service manifest {path!r}: {exc}; the block data is "
                "still on disk -- restore the manifest from a backup or "
                "rebuild it before reopening"
            ) from exc
        if int(manifest.get("format", 0)) != MANIFEST_FORMAT:
            raise InvalidParametersError(
                f"unsupported manifest format in {path!r}: {manifest.get('format')!r}"
            )
        return manifest

    def _sync_manifest(self) -> None:
        """Atomically persist the service catalogue next to the block data.

        Called after every mutating operation on a durable service, so a
        process crash between writes loses at most the in-flight document,
        never the catalogue of completed ones.  With ``fsync`` enabled the
        manifest is forced to stable storage, extending the guarantee to
        power loss.
        """
        if self._data_dir is None:
            return
        os.makedirs(self._data_dir, exist_ok=True)
        manifest = {
            "format": MANIFEST_FORMAT,
            "scheme": self._scheme.scheme_id,
            "block_size": self._scheme.block_size,
            "location_count": self._cluster.location_count,
            "backend": self._cluster.backend_spec,
            "seed": self._seed,
            "custom_placement": self._custom_placement,
            "scheme_state": self._scheme.state(),
            "documents": {
                name: {
                    "data_ids": _encode_id_runs(document.data_ids),
                    "length": document.length,
                }
                for name, document in self._documents.items()
            },
        }
        if not self._cluster.topology.is_flat():
            manifest["topology"] = self._cluster.topology.to_dict()
        if self._placement_spec is not None:
            manifest["placement_spec"] = self._placement_spec
        write_json(
            os.path.join(self._data_dir, MANIFEST_NAME), manifest, fsync=self._fsync
        )

    def _replay_wal(
        self,
        groups: List[WalGroup],
        scheme_state: Optional[Dict[str, object]],
    ) -> Optional[Dict[str, object]]:
        """Apply the committed WAL tail on top of the manifest checkpoint.

        Replay is idempotent (``put_doc`` overwrites, ``delete_doc`` pops if
        present, the newest ``scheme_state`` wins), which is what makes the
        crash window between "manifest written" and "WAL reset" safe: the
        tail is simply applied again over the checkpoint that already
        contains it.  Returns the scheme state to restore.
        """
        state = scheme_state
        state_seq = -1
        for group in groups:
            for op in group.ops:
                kind = op.get("op")
                if kind == "put_doc":
                    name = str(op["name"])
                    self._documents[name] = StoredDocument(
                        name=name,
                        data_ids=_decode_id_runs(list(op["data_ids"])),  # type: ignore[arg-type]
                        length=int(op["length"]),  # type: ignore[arg-type]
                    )
                elif kind == "delete_doc":
                    self._documents.pop(str(op["name"]), None)
                elif kind == "scheme_state":
                    seq = int(op.get("seq", 0))  # type: ignore[arg-type]
                    if seq >= state_seq:
                        state = op.get("state", {})  # type: ignore[assignment]
                        state_seq = seq
                elif kind == "placement":
                    self._check_wal_binding(op)
                else:
                    raise InvalidParametersError(
                        f"unknown WAL record type {kind!r} in "
                        f"{self._data_dir!r}; the log was written by an "
                        "incompatible version or corrupted"
                    )
        return state

    def _check_wal_binding(self, op: Dict[str, object]) -> None:
        """Reject a WAL tail that was written by a different service."""
        if "scheme" not in op:
            return  # informational placement record (e.g. repair relocations)
        stored_scheme = op.get("scheme")
        stored_block_size = int(op.get("block_size", self._scheme.block_size))  # type: ignore[arg-type]
        stored_backend = op.get("backend", self._cluster.backend_spec)
        if (
            stored_scheme != self._scheme.scheme_id
            or stored_block_size != self._scheme.block_size
            or stored_backend != self._cluster.backend_spec
        ):
            raise InvalidParametersError(
                f"WAL in {self._data_dir!r} was written by a "
                f"{stored_scheme!r} service (block size {stored_block_size}, "
                f"backend {stored_backend!r}); it does not belong to this "
                f"{self._scheme.scheme_id!r} service"
            )

    def _binding_record(self) -> Dict[str, object]:
        """The header record opening every fresh WAL epoch."""
        return {
            "op": "placement",
            "scheme": self._scheme.scheme_id,
            "block_size": self._scheme.block_size,
            "backend": self._cluster.backend_spec,
            "location_count": self._cluster.location_count,
            "seed": self._seed,
            "custom_placement": self._custom_placement,
        }

    def _next_mutation(self) -> int:
        """Monotonic mutation sequence (call with the state lock held)."""
        self._mutation_seq += 1
        return self._mutation_seq

    def _document_ops(self, document: StoredDocument) -> List[Dict[str, object]]:
        """WAL records of one put (call with the state lock held).

        The scheme state is snapshotted in the same critical section as the
        encode, so replaying the newest surviving snapshot always covers
        every catalogued document's blocks.
        """
        seq = self._next_mutation()
        return [
            {
                "op": "put_doc",
                "name": document.name,
                "data_ids": _encode_id_runs(document.data_ids),
                "length": document.length,
            },
            {"op": "scheme_state", "state": self._scheme.state(), "seq": seq},
        ]

    def _commit_meta(self, ops: List[Dict[str, object]]) -> None:
        """Durably record one mutation's metadata.

        WAL mode appends one group-committed batch of records (concurrent
        mutators share a single fsync); legacy mode (``wal=False``) rewrites
        the whole manifest, PR 4 style.  Volatile services skip both.
        """
        if self._data_dir is None:
            return
        wal = self._wal
        if not self._wal_enabled or wal is None:
            with self._state_lock:
                self._sync_manifest()
            return
        if wal.size_bytes == 0:
            # Open the fresh epoch with the binding header; a duplicate from
            # a racing mutator is harmless (replay just validates it twice).
            ops = [self._binding_record()] + ops
        wal.commit(ops)
        if wal.size_bytes >= self._wal_checkpoint_bytes:
            self._checkpoint()

    def _checkpoint(self) -> None:
        """Collapse the WAL into ``manifest.json`` and reset the log.

        Runs under the state lock: every mutation that updated the catalogue
        before the snapshot is inside the manifest, and none can slip in
        between the snapshot and the reset.  A mutator that has already left
        the critical section but not yet committed its records re-appends
        them *after* the reset -- replay is idempotent, so re-applying them
        over a checkpoint that already contains them is safe.
        """
        if self._data_dir is None:
            return
        with self._checkpoint_lock:
            with self._state_lock:
                self._sync_manifest()
                if self._wal is not None:
                    self._wal.reset()

    def _ensure_open(self) -> None:
        if self._closed:
            raise InvalidParametersError(
                "this StorageService has been closed; reopen it with "
                "StorageService.open on the same data_dir"
            )

    def flush(self) -> None:
        """Push buffered writes to the medium and checkpoint the metadata.

        After ``flush`` the manifest alone describes the full catalogue
        (the WAL is empty), so external tooling may read it directly.
        """
        self._cluster.flush()
        self._checkpoint()

    def close(self) -> None:
        """Checkpoint the metadata and close every location's backend.

        After ``close`` the service must not be used; reopen it with
        ``StorageService.open(StorageConfig(scheme=..., backend=...,
        data_dir=...))`` on the same root.  Idempotent.
        """
        if self._closed:
            return
        self._checkpoint()
        if self._wal is not None:
            self._wal.close()
        self._cluster.close()
        self._closed = True

    def __enter__(self) -> "StorageService":
        return self

    def __exit__(self, exc_type: object, exc_value: object, traceback: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def scheme(self) -> RedundancyScheme:
        return self._scheme

    @property
    def capabilities(self) -> SchemeCapabilities:
        return self._scheme.capabilities()

    @property
    def cluster(self) -> StorageCluster:
        return self._cluster

    @property
    def topology(self) -> Topology:
        """The cluster's site -> rack -> node layout."""
        return self._cluster.topology

    @property
    def block_size(self) -> int:
        return self._scheme.block_size

    @property
    def batch_blocks(self) -> int:
        return self._batch_blocks

    @property
    def documents(self) -> Dict[str, StoredDocument]:
        with self._state_lock:
            return dict(self._documents)

    def status(self) -> ServiceStatus:
        stats = self._cluster.stats()
        unavailable = self._cluster.unavailable_blocks()
        return ServiceStatus(
            scheme=self._scheme.scheme_id,
            blocks=stats.blocks,
            unavailable_blocks=len(unavailable),
            unavailable_data_blocks=sum(
                1 for block_id in unavailable if self._scheme.is_data_block(block_id)
            ),
            locations=stats.locations,
            unavailable_locations=stats.locations - stats.available_locations,
            documents=len(self._documents),
            bytes_stored=stats.bytes_stored,
            cache_hits=stats.cache_hits,
            cache_misses=stats.cache_misses,
        )

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def put(self, name: str, data: bytes) -> StoredDocument:
        """Encode and store a document, returning its handle.

        Re-using a name replaces the document: for erasable schemes the
        blocks of the previous version are deleted once the new version is
        fully stored.
        """
        self._ensure_open()
        with self._state_lock:
            # Encode *and* block write share the critical section: the
            # lattice has one monotonic write position, and any scheme-state
            # snapshot (WAL record or checkpoint) taken under this lock must
            # only ever cover encodes whose blocks are already on the medium
            # -- restore refetches the strand heads from storage.
            part = self._scheme.encode(data)
            self._cluster.put_many(part.blocks)
            document = StoredDocument(
                name=name, data_ids=part.data_ids, length=len(data)
            )
            previous = self._documents.get(name)
            self._documents[name] = document
            ops = self._document_ops(document)
        # The metadata commit runs outside the lock: that is where
        # concurrent mutators pile up and the WAL batches their fsyncs
        # into one group commit.
        self._commit_meta(ops)
        # Catalogue the new version before deleting the old one: a crash in
        # between leaks the old version's blocks as orphans, but never loses
        # a committed document.
        self._reclaim(previous)
        return document

    def _reclaim(self, previous: Optional[StoredDocument]) -> None:
        """Delete the blocks of a document version that was just replaced."""
        if previous is None or not self._scheme.capabilities().erasable:
            return
        self._cluster.delete_blocks(self._scheme.document_blocks(previous.data_ids))

    def put_stream(self, name: str, chunks: Iterable[bytes]) -> StoredDocument:
        """Encode and store a document from an iterable of byte chunks.

        Chunks of arbitrary sizes are re-blocked into batches of up to
        ``batch_blocks`` blocks; each batch is encoded in one scheme pass and
        persisted through the cluster's bulk write path, so at most one batch
        is buffered in memory.  Empty documents and payloads that are not a
        multiple of the block size round-trip byte-exact (the final block is
        zero-padded for encoding; padding is stripped on read).

        If ``chunks`` raises mid-stream the exception propagates and no
        document is recorded, but batches already encoded stay in the scheme
        state (for entanglement the lattice is append-only by design).
        """
        self._ensure_open()
        buffer = bytearray()
        batch_bytes = self._batch_blocks * self.block_size
        data_ids: List[object] = []
        length = 0
        for chunk in chunks:
            buffer += chunk
            length += len(chunk)
            while len(buffer) >= batch_bytes:
                self._ingest_batch(buffer[:batch_bytes], data_ids)
                del buffer[:batch_bytes]
        if buffer:
            self._ingest_batch(buffer, data_ids)
        with self._state_lock:
            document = StoredDocument(name=name, data_ids=data_ids, length=length)
            previous = self._documents.get(name)
            self._documents[name] = document
            ops = self._document_ops(document)
        self._commit_meta(ops)
        self._reclaim(previous)
        return document

    def _ingest_batch(self, payload: bytearray, data_ids: List[object]) -> None:
        with self._state_lock:
            part = self._scheme.encode(payload)
            self._cluster.put_many(part.blocks)
        data_ids.extend(part.data_ids)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get_block(self, block_id: object) -> Payload:
        """Read one block, repairing it through the scheme when unreachable."""
        self._ensure_open()
        with self._state_lock:
            return self._scheme.read_block(block_id, self._cluster.try_get_block)

    def _read_payloads(self, data_ids: List[object]) -> List[Payload]:
        """Bulk-read payloads, repairing unreachable blocks in one batch.

        Healthy blocks arrive through the cluster's grouped
        :meth:`~repro.storage.cluster.StorageCluster.try_get_many`; the
        unreachable ones are rebuilt together in a single scheme repair pass
        over a :meth:`~repro.storage.cluster.StorageCluster.block_source`
        (a *degraded read*: nothing is written back -- restoring redundancy
        is :meth:`repair`'s job).  Blocks the batched pass cannot reach fall
        back to the recursive per-block read, which can chain through
        repairs of the redundancy blocks themselves.
        """
        self._ensure_open()
        payloads = self._cluster.try_get_many(data_ids)
        missing = [
            data_id
            for data_id, payload in zip(data_ids, payloads)
            if payload is None
        ]
        if missing:
            # Degraded reads walk the scheme's lattice/stripe structures, so
            # they serialise against concurrent encodes; healthy reads (the
            # branch above) never touch the scheme and stay lock-free.
            with self._state_lock:
                outcome = self._scheme.repair(
                    set(missing), self._cluster.block_source()
                )
                for position, payload in enumerate(payloads):
                    if payload is None:
                        payloads[position] = outcome.recovered.get(data_ids[position])
                return [
                    payload
                    if payload is not None
                    else self._scheme.read_block(data_id, self._cluster.try_get_block)
                    for data_id, payload in zip(data_ids, payloads)
                ]
        return payloads

    def get(self, name: str) -> bytes:
        """Read a full document back, repairing blocks as needed."""
        document = self._document(name)
        return join_blocks(self._read_payloads(document.data_ids), document.length)

    #: Back-compat alias of :meth:`get`.
    read = get

    def read_block_bytes(self, data_id: object, length: Optional[int] = None) -> bytes:
        return payload_to_bytes(self.get_block(data_id), length)

    def get_stream(self, name: str) -> Iterator[bytes]:
        """Stream a document back, repairing as needed.

        Blocks are read in batches of up to ``batch_blocks`` through the bulk
        degraded-read path and yielded one at a time, so at most one batch of
        payloads is buffered in memory.
        """
        document = self._document(name)

        def blocks() -> Iterator[bytes]:
            remaining = document.length
            data_ids = document.data_ids
            for start in range(0, len(data_ids), self._batch_blocks):
                batch = data_ids[start : start + self._batch_blocks]
                for payload in self._read_payloads(batch):
                    take = min(remaining, self.block_size)
                    yield payload_to_bytes(payload, take)
                    remaining -= take

        return blocks()

    def verify_document(self, name: str, expected: bytes) -> bool:
        """Convenience used by examples/tests: read back and compare."""
        return self.get(name) == expected

    def _document(self, name: str) -> StoredDocument:
        if name not in self._documents:
            raise UnknownBlockError(f"unknown document {name!r}")
        return self._documents[name]

    def has_document(self, name: str) -> bool:
        """Whether ``name`` is in the catalogue (no blocks are touched)."""
        with self._state_lock:
            return name in self._documents

    # ------------------------------------------------------------------
    # Deletes
    # ------------------------------------------------------------------
    def delete(self, name: str) -> List[object]:
        """Delete a document, returning the block ids physically removed.

        For erasable schemes (all stripe codes) every block backing the
        document -- data, redundancy and stripe padding -- is removed from
        its location and from the cluster's placement index.  For
        entanglement the lattice is append-only, so only the document
        metadata is dropped and the returned list is empty; the blocks keep
        protecting their lattice neighbourhood.
        """
        self._ensure_open()
        with self._state_lock:
            document = self._document(name)
            del self._documents[name]
            seq = self._next_mutation()
            ops: List[Dict[str, object]] = [
                {"op": "delete_doc", "name": name, "seq": seq}
            ]
        # Uncatalogue first, reclaim second (the mirror of put's ordering):
        # a crash mid-delete leaves orphan blocks, never a catalogued
        # document whose payloads are already gone.
        self._commit_meta(ops)
        if not self._scheme.capabilities().erasable:
            return []
        removed: List[object] = []
        with self._state_lock:
            for block_id in self._scheme.document_blocks(document.data_ids):
                if self._cluster.knows(block_id):
                    self._cluster.delete_block(block_id)
                    removed.append(block_id)
        return removed

    # ------------------------------------------------------------------
    # Failures and repair
    # ------------------------------------------------------------------
    def fail_locations(self, location_ids: Iterable[int]) -> None:
        self._cluster.fail_locations(location_ids)

    def restore_locations(self, location_ids: Optional[Iterable[int]] = None) -> None:
        self._cluster.restore_locations(location_ids)

    def repair(self) -> ServiceRepairReport:
        """Rebuild every unreachable block through the scheme's repair path.

        Recovered payloads are written back to healthy locations (the
        placement index is updated), so a subsequent location restore cannot
        resurrect stale replicas as the only copy.
        """
        self._ensure_open()
        with self._state_lock:
            missing = self._cluster.unavailable_blocks()
            outcome = self._scheme.repair(missing, self._cluster.block_source())
            avoid = tuple(self._cluster.unavailable_locations())
            self._cluster.relocate_many(outcome.recovered.items(), avoid=avoid)
        if outcome.recovered:
            # An informational WAL record: repair moved blocks, giving the
            # log a durability point (the directory itself is rebuilt from
            # backend scans on reopen, so replay ignores the content).
            self._commit_meta(
                [{"op": "placement", "relocated": len(outcome.recovered)}]
            )
        return ServiceRepairReport(
            scheme=self._scheme.scheme_id,
            repaired=sorted(
                outcome.recovered, key=lambda b: (getattr(b, "index", 0), repr(b))
            ),
            unrecovered=list(outcome.unrecovered),
            blocks_read=outcome.blocks_read,
            rounds=outcome.rounds,
            data_loss=sum(
                1
                for block_id in outcome.unrecovered
                if self._scheme.is_data_block(block_id)
            ),
        )
